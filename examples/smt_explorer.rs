//! Exploring the SMT substrate: write a program in the tiny ISA, run it,
//! disassemble it, co-schedule kernels and *measure* α — the quantity the
//! paper takes from Intel's datasheet.
//!
//! ```text
//! cargo run --release --example smt_explorer
//! ```

use vds::smtsim::alpha;
use vds::smtsim::asm::assemble;
use vds::smtsim::core::{Core, CoreConfig, RunOutcome, ThreadId};
use vds::smtsim::disasm;
use vds::smtsim::kernels;

fn main() {
    // 1. a hand-written program: integer square root by bisection
    let src = r#"
        ; isqrt(1764) by bisection -> r3
            li   r1, 1764
            addi r2, r0, 0       ; lo
            li   r3, 1765        ; hi
        loop:
            sub  r4, r3, r2
            slti r5, r4, 2       ; hi - lo < 2 ?
            bne  r5, r0, done
            add  r6, r2, r3
            srli r6, r6, 1       ; mid
            mul  r7, r6, r6
            blt  r1, r7, high    ; n < mid*mid
            add  r2, r6, r0      ; lo = mid
            j    loop
        high:
            add  r3, r6, r0      ; hi = mid
            j    loop
        done:
            st   r2, 0(r0)
            halt
    "#;
    let prog = assemble(src).expect("assembles");
    println!("== disassembly ==\n{}", disasm::disassemble(&prog));

    let mut core = Core::new(CoreConfig::single_threaded());
    let t = core.add_thread(&prog, 16);
    assert_eq!(core.run_until_all_blocked(1_000_000), RunOutcome::AllHalted);
    let c = core.thread(t).counters;
    println!(
        "isqrt(1764) = {}   [{} instructions, {} cycles, IPC {:.2}, branch acc {:.2}]",
        core.thread(ThreadId(0)).dmem[0],
        c.retired,
        c.cycles,
        c.ipc(),
        c.branch_accuracy()
    );

    // 2. measure α for every kernel pair — the paper's assumed 0.65
    println!("\n== measured α (co-run stretch) across kernel pairs ==");
    let cfg = CoreConfig::default();
    let ks = kernels::suite(3);
    print!("{:>8} |", "");
    for k in &ks {
        print!(" {:>7}", k.name);
    }
    println!();
    for a in &ks {
        print!("{:>8} |", a.name);
        for b in &ks {
            let m = alpha::measure(&cfg, a, b).expect("suite kernels complete");
            print!(" {:>7.3}", m.alpha);
        }
        println!();
    }
    println!("\nα = t_pair / (t_a + t_b): 0.5 = perfect overlap, 1.0 = no benefit.");
    println!("The paper's Pentium-4 figure (0.65) sits right inside this range.");
}
