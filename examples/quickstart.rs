//! Quickstart: the paper's model and the executable VDS in thirty lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vds::analytic::{predictive, rollforward, timing, Params};
use vds::core::abstract_vds::{run, AbstractConfig};
use vds::core::{FaultModel, Scheme};

fn main() {
    // The paper's operating point: α = 0.65 (Pentium 4), β = 0.1, s = 20.
    let params = Params::paper_default();

    println!("== closed forms (vds-analytic) ==");
    println!(
        "normal-processing speedup  G_round      = {:.3}  (≈ 1/α = {:.3})",
        timing::g_round_exact(&params),
        timing::g_round_approx(&params)
    );
    println!(
        "deterministic roll-forward Ḡ_det        = {:.3}  (profitable for α < {:.3})",
        rollforward::gbar_det_exact(&params),
        rollforward::det_alpha_threshold()
    );
    println!(
        "predictive, random picks   Ḡ_corr(p=.5) = {:.3}",
        predictive::gbar_corr_exact(&params, 0.5)
    );
    println!(
        "limit                      G_max        = {:.3}  (the paper's 1.38)",
        predictive::g_max(0.65, 0.1, 0.5)
    );

    println!("\n== the executable VDS (vds-core, abstract backend) ==");
    let n = 10_000;
    let q = 0.01; // per-round fault probability
    for scheme in [
        Scheme::Conventional,
        Scheme::SmtDeterministic,
        Scheme::SmtProbabilistic,
        Scheme::SmtPredictive,
    ] {
        let cfg = AbstractConfig::new(params, scheme);
        let r = run(&cfg, FaultModel::PerRound { q }, n, 42);
        println!(
            "{:<14} {} rounds in {:>9.1} time  (throughput {:.4}, {} recoveries, {} rollbacks)",
            scheme.name(),
            r.committed_rounds,
            r.total_time,
            r.throughput(),
            r.recoveries_ok,
            r.rollbacks
        );
    }
    println!("\nSMT schemes finish the same work in less time — Eq. (4) and Eq. (13) at work.");
}
