//! Quickstart: the paper's model and the executable VDS in thirty lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vds::analytic::{predictive, rollforward, timing, Params};
use vds::core::abstract_vds::{run, AbstractConfig};
use vds::core::micro_vds::{run_micro_recorded, MicroConfig, MicroFault};
use vds::core::{FaultModel, Scheme, Victim};
use vds::fault::model::{FaultKind, FaultSite};

fn main() {
    // The paper's operating point: α = 0.65 (Pentium 4), β = 0.1, s = 20.
    let params = Params::paper_default();

    println!("== closed forms (vds-analytic) ==");
    println!(
        "normal-processing speedup  G_round      = {:.3}  (≈ 1/α = {:.3})",
        timing::g_round_exact(&params),
        timing::g_round_approx(&params)
    );
    println!(
        "deterministic roll-forward Ḡ_det        = {:.3}  (profitable for α < {:.3})",
        rollforward::gbar_det_exact(&params),
        rollforward::det_alpha_threshold()
    );
    println!(
        "predictive, random picks   Ḡ_corr(p=.5) = {:.3}",
        predictive::gbar_corr_exact(&params, 0.5)
    );
    println!(
        "limit                      G_max        = {:.3}  (the paper's 1.38)",
        predictive::g_max(0.65, 0.1, 0.5)
    );

    println!("\n== the executable VDS (vds-core, abstract backend) ==");
    let n = 10_000;
    let q = 0.01; // per-round fault probability
    for scheme in [
        Scheme::Conventional,
        Scheme::SmtDeterministic,
        Scheme::SmtProbabilistic,
        Scheme::SmtPredictive,
    ] {
        let cfg = AbstractConfig::new(params, scheme);
        let r = run(&cfg, FaultModel::PerRound { q }, n, 42);
        println!(
            "{:<14} {} rounds in {:>9.1} time  (throughput {:.4}, {} recoveries, {} rollbacks)",
            scheme.name(),
            r.committed_rounds,
            r.total_time,
            r.throughput(),
            r.recoveries_ok,
            r.rollbacks
        );
    }
    println!("\nSMT schemes finish the same work in less time — Eq. (4) and Eq. (13) at work.");

    println!("\n== where the time goes (vds-obs profiler spans) ==");
    // A recorded micro-VDS run on the cycle-level SMT core: metrics land
    // in a CSV, the phase spans in a Chrome trace-event JSON.
    let cfg = MicroConfig::new(Scheme::SmtDeterministic, 10);
    let fault = MicroFault {
        at_round: 4,
        victim: Victim::V2,
        kind: FaultKind::Transient(FaultSite::Memory { addr: 4, bit: 9 }),
    };
    let (report, rec) = run_micro_recorded(&cfg, Some(fault), 15);
    println!(
        "smt-det micro run: {} rounds committed, {} detection(s), {} recovery(ies)",
        report.committed_rounds, report.detections, report.recoveries_ok
    );
    let dir = std::env::temp_dir();
    let csv_path = dir.join("quickstart_metrics.csv");
    let trace_path = dir.join("quickstart_metrics.csv.trace.json");
    std::fs::write(&csv_path, rec.registry().to_csv()).expect("write metrics CSV");
    std::fs::write(&trace_path, rec.spans().to_chrome_json()).expect("write Chrome trace");
    println!("metrics CSV     : {}", csv_path.display());
    println!("Chrome trace    : {}", trace_path.display());
    println!(
        "open the trace  : visit https://ui.perfetto.dev and load {}",
        trace_path.display()
    );
}
