//! The paper's motivating scenario: a soft-mission-critical computer on a
//! space mission. "In outer space transient faults are much more frequent
//! due to radiation, and repair is impossible" — a VDS must detect *and
//! tolerate* faults on its own.
//!
//! This example runs a long science-processing campaign under a bursty
//! radiation environment (clustered transients, occasional crashes) on
//! all recovery schemes, with a fault-history predictor driving the
//! predictive scheme's picks, and reports mission-level metrics:
//! throughput, recovery overhead, rollbacks and the predictive scheme's
//! silent-corruption exposure.
//!
//! ```text
//! cargo run --release --example space_mission
//! ```

use vds::analytic::Params;
use vds::core::abstract_vds::{run, run_with_predictor, AbstractConfig};
use vds::core::{FaultModel, Scheme};
use vds::predictor::predictors::{LastOutcome, SaturatingCounter};

fn main() {
    let params = Params::paper_default();
    let mission_rounds = 200_000;
    // Clustered environment: bursts of correlated upsets with occasional
    // crash faults (modelled by the engine's per-round + crash mix).
    let env = FaultModel::PerRoundWithCrashes {
        q: 0.015,
        crash_fraction: 0.3,
    };

    println!(
        "mission: {mission_rounds} science rounds, bursty radiation (q=1.5%/round, 30% crashes)"
    );
    println!(
        "{:<16} {:>10} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "scheme", "time", "thruput", "recov", "rollback", "rf-hits", "silent"
    );

    for scheme in [
        Scheme::Conventional,
        Scheme::SmtDeterministic,
        Scheme::SmtProbabilistic,
        Scheme::SmtPredictive,
        Scheme::SmtBoosted3,
        Scheme::SmtBoosted5,
    ] {
        let cfg = AbstractConfig::new(params, scheme);
        let r = run(&cfg, env, mission_rounds, 2077);
        println!(
            "{:<16} {:>10.0} {:>9.4} {:>9} {:>9} {:>9} {:>7}",
            scheme.name(),
            r.total_time,
            r.throughput(),
            r.recoveries_ok,
            r.rollbacks,
            r.rollforward_hits,
            r.silent_corruptions
        );
    }

    println!("\npredictive scheme with fault-history predictors (instead of random picks):");
    for (name, mut pred) in [
        (
            "last-outcome",
            Box::new(LastOutcome::default()) as Box<dyn vds::predictor::FaultPredictor>,
        ),
        ("2-bit counter", Box::new(SaturatingCounter::default())),
    ] {
        let cfg = AbstractConfig::new(params, Scheme::SmtPredictive);
        let r = run_with_predictor(&cfg, env, mission_rounds, 2077, Some(pred.as_mut()));
        let picks = r.rollforward_hits + r.rollforward_misses;
        println!(
            "  {:<14} throughput {:.4}, pick accuracy {:.1}% over {} incidents",
            name,
            r.throughput(),
            100.0 * r.rollforward_hits as f64 / picks.max(1) as f64,
            picks
        );
    }

    println!("\nnote the trade: the predictive scheme recovers fastest but is the only one");
    println!("with a non-zero silent-corruption count — §4's 'refrain from detection' cost.");
}
