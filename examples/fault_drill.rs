//! A fault drill on the *micro* platform: three diversified program
//! versions on the cycle-level SMT machine, one injected fault, full
//! detection-vote-roll-forward recovery — then an audit of the final
//! output against the pure-Rust oracle.
//!
//! ```text
//! cargo run --release --example fault_drill
//! ```

use vds::core::micro_vds::{run_micro_with_state, MicroConfig, MicroFault};
use vds::core::{workload, Scheme, Victim};
use vds::fault::model::{FaultKind, FaultSite};

fn drill(name: &str, scheme: Scheme, kind: FaultKind) {
    let mut cfg = MicroConfig::new(scheme, 10);
    cfg.p_correct = 0.5;
    let fault = MicroFault {
        at_round: 6,
        victim: Victim::V2,
        kind,
    };
    let target = 30;
    let (r, img) = run_micro_with_state(&cfg, Some(fault), target);
    let (_, want) = workload::oracle(r.committed_rounds as u32);
    let got = &img
        [workload::ADDR_STATE as usize..(workload::ADDR_STATE + workload::STATE_WORDS) as usize];
    let verdict = if got == &want[..] {
        "OUTPUT CORRECT"
    } else {
        "OUTPUT WRONG"
    };
    println!(
        "{name:<36} [{}] {} cycles, {} detections, {} recoveries, {} rollbacks, rf {}/{}/{} (hit/miss/discard) → {verdict}",
        scheme.name(),
        r.total_time,
        r.detections,
        r.recoveries_ok,
        r.rollbacks,
        r.rollforward_hits,
        r.rollforward_misses,
        r.rollforward_discards,
    );
}

fn main() {
    println!("fault drill: fault injected into V2 during round 6 of a 30-round run (s=10)\n");

    let mem_flip = FaultKind::Transient(FaultSite::Memory { addr: 4, bit: 13 });
    let text_flip = FaultKind::Transient(FaultSite::Text { index: 9, bit: 28 });

    drill(
        "state bit flip, conventional",
        Scheme::Conventional,
        mem_flip,
    );
    drill(
        "state bit flip, deterministic RF",
        Scheme::SmtDeterministic,
        mem_flip,
    );
    drill(
        "state bit flip, probabilistic RF",
        Scheme::SmtProbabilistic,
        mem_flip,
    );
    drill(
        "state bit flip, predictive RF",
        Scheme::SmtPredictive,
        mem_flip,
    );
    println!();
    drill("program-memory flip", Scheme::SmtProbabilistic, text_flip);
    drill(
        "version crash",
        Scheme::SmtPredictive,
        FaultKind::CrashVersion,
    );

    println!("\nevery drill must end OUTPUT CORRECT: detection, vote and recovery are");
    println!("executed by real diversified programs on the cycle-level SMT machine.");
}
