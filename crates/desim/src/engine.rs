//! The discrete-event simulation engine.
//!
//! [`Sim<W>`] is an event calendar over a user-supplied world type `W`.
//! Events are boxed `FnOnce(&mut Sim<W>, &mut W)` closures; firing an event
//! may mutate the world and schedule further events. Ties in firing time are
//! broken by insertion order (FIFO), which together with explicit RNG
//! seeding makes every simulation run deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event handler: receives the engine (to schedule follow-up events and
/// query the clock) and the mutable world state.
pub type Action<W> = Box<dyn FnOnce(&mut Sim<W>, &mut W)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}

impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Statistics about an engine run, returned by [`Sim::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of events fired.
    pub events_fired: u64,
}

/// A discrete-event simulator over world state `W`.
///
/// The world is passed into [`Sim::run`] rather than owned by the engine so
/// that event closures can borrow the engine and the world independently.
pub struct Sim<W> {
    clock: SimTime,
    queue: BinaryHeap<Scheduled<W>>,
    seq: u64,
    fired: u64,
    max_pending: usize,
    stopped: bool,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A fresh engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Sim {
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            fired: 0,
            max_pending: 0,
            stopped: false,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events waiting in the calendar.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `action` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock or not finite.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut Sim<W>, &mut W) + 'static,
    {
        assert!(
            at >= self.clock,
            "cannot schedule into the past: now={:?}, at={:?}",
            self.clock,
            at
        );
        assert!(at.is_finite(), "cannot schedule at infinity");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
        self.max_pending = self.max_pending.max(self.queue.len());
    }

    /// Schedule `action` to fire `delay` after the current clock.
    pub fn schedule_in<F>(&mut self, delay: SimTime, action: F)
    where
        F: FnOnce(&mut Sim<W>, &mut W) + 'static,
    {
        let at = self.clock + delay;
        self.schedule_at(at, action);
    }

    /// Request that the run loop stop after the current event returns.
    /// Pending events stay in the calendar; a subsequent `run` resumes.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Run until the calendar is empty or [`Sim::stop`] is called.
    pub fn run(&mut self, world: &mut W) -> RunStats {
        self.run_until(world, SimTime::INFINITY)
    }

    /// Run until the calendar is empty, [`Sim::stop`] is called, or the next
    /// event would fire strictly after `deadline`. The clock is advanced to
    /// `deadline` if the run is cut off by it (and `deadline` is finite).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> RunStats {
        self.stopped = false;
        let start_fired = self.fired;
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                if deadline.is_finite() {
                    self.clock = self.clock.max(deadline);
                }
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            debug_assert!(ev.at >= self.clock, "event calendar went backwards");
            self.clock = ev.at;
            self.fired += 1;
            (ev.action)(self, world);
            if self.stopped {
                break;
            }
        }
        RunStats {
            events_fired: self.fired - start_fired,
        }
    }

    /// [`Sim::run`] with event-loop profiling: the whole drain is wrapped
    /// in a `desim`/`run` span and every event dispatch in a
    /// `desim`/`dispatch` span — begin at the event's firing time, end at
    /// the clock position when its action returns (the simulated time the
    /// handler advanced past, e.g. by draining nested work).
    pub fn run_spanned<R: vds_obs::Record>(&mut self, world: &mut W, rec: &mut R) -> RunStats {
        use vds_obs::{obs_end_span, obs_span};
        self.stopped = false;
        let start_fired = self.fired;
        let run_g = obs_span!(rec, "desim", "run", self.clock.as_secs());
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.at >= self.clock, "event calendar went backwards");
            self.clock = ev.at;
            self.fired += 1;
            let g = obs_span!(rec, "desim", "dispatch", self.clock.as_secs());
            (ev.action)(self, world);
            obs_end_span!(rec, g, self.clock.as_secs(), "at" => ev.at.as_secs());
            if self.stopped {
                break;
            }
        }
        let fired = self.fired - start_fired;
        obs_end_span!(rec, run_g, self.clock.as_secs(), "events" => fired);
        RunStats {
            events_fired: fired,
        }
    }

    /// [`Sim::run`] with a progress heartbeat: `heartbeat(events_fired,
    /// clock_secs)` is called after every `every` events (and once more
    /// when the drain ends), so long-running simulations can publish
    /// live progress (e.g. into a [`vds_obs::TelemetryHub`]) without the
    /// callback being able to perturb the event calendar — it only sees
    /// copies of the two numbers.
    pub fn run_with_heartbeat(
        &mut self,
        world: &mut W,
        every: u64,
        heartbeat: &mut dyn FnMut(u64, f64),
    ) -> RunStats {
        let every = every.max(1);
        self.stopped = false;
        let start_fired = self.fired;
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.at >= self.clock, "event calendar went backwards");
            self.clock = ev.at;
            self.fired += 1;
            (ev.action)(self, world);
            if (self.fired - start_fired).is_multiple_of(every) {
                heartbeat(self.fired - start_fired, self.clock.as_secs());
            }
            if self.stopped {
                break;
            }
        }
        let fired = self.fired - start_fired;
        heartbeat(fired, self.clock.as_secs());
        RunStats {
            events_fired: fired,
        }
    }

    /// [`Sim::run`] with flight-recorder journalling: after every `every`
    /// fired events (and once more when the drain ends, if the count is not
    /// already on the cadence) the world is hashed via `digest` and one
    /// round entry is appended to `rec`'s journal. The engine has no duplex
    /// pair, so both digest columns carry the same world digest and every
    /// verdict is `match`; the value of the journal here is the
    /// deterministic digest trace — two drains of the same calendar can be
    /// compared digest-for-digest with `vds audit diff`. The heartbeat
    /// cannot perturb the calendar: `digest` only sees `&W`.
    ///
    /// No-op journalling (plain [`Sim::run`] behaviour) when `rec`'s
    /// journal is not enabled.
    pub fn run_journaled<R: vds_obs::Record>(
        &mut self,
        world: &mut W,
        rec: &mut R,
        every: u64,
        digest: &mut dyn FnMut(&W) -> vds_obs::Digest128,
    ) -> RunStats {
        use vds_obs::journal::{Action, RoundEntry, Verdict};
        let every = every.max(1);
        self.stopped = false;
        let start_fired = self.fired;
        let mut rounds = 0u64;
        let mut push = |sim: &Sim<W>, world: &W, rec: &mut R, rounds: &mut u64| {
            *rounds += 1;
            let d = digest(world);
            rec.journal_push(RoundEntry {
                seq: 0,
                lane: 0,
                round: *rounds,
                committed: sim.fired - start_fired,
                sim_time: sim.clock.as_secs(),
                d1: d,
                d2: d,
                verdict: Verdict::Match,
                sched: "event-calendar".to_string(),
                action: Action::Commit,
                rollforward: 0,
                fault: None,
                fault_id: None,
                fault_outcome: None,
            });
        };
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.at >= self.clock, "event calendar went backwards");
            self.clock = ev.at;
            self.fired += 1;
            (ev.action)(self, world);
            if (self.fired - start_fired).is_multiple_of(every) && rec.journal_enabled() {
                push(self, world, rec, &mut rounds);
            }
            if self.stopped {
                break;
            }
        }
        let fired = self.fired - start_fired;
        if rec.journal_enabled() && !fired.is_multiple_of(every) {
            push(self, world, rec, &mut rounds);
        }
        RunStats {
            events_fired: fired,
        }
    }

    /// Pop and fire exactly one event, if any. Returns `true` if an event
    /// fired.
    pub fn step(&mut self, world: &mut W) -> bool {
        if let Some(ev) = self.queue.pop() {
            self.clock = ev.at;
            self.fired += 1;
            (ev.action)(self, world);
            true
        } else {
            false
        }
    }

    /// Total number of events fired over the engine's lifetime.
    #[inline]
    pub fn total_fired(&self) -> u64 {
        self.fired
    }

    /// High-water mark of the event calendar's length.
    #[inline]
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// Export engine health into a metrics registry: events fired,
    /// calendar depth (current and high-water), clock position, and
    /// throughput in events per simulated second.
    pub fn export_metrics<R: vds_obs::Record>(&self, rec: &mut R) {
        rec.count("desim.events_fired", self.fired);
        rec.gauge("desim.queue.pending", self.queue.len() as f64);
        rec.gauge_max("desim.queue.max_pending", self.max_pending as f64);
        let secs = self.clock.as_secs();
        rec.gauge("desim.clock_secs", secs);
        if secs > 0.0 {
            rec.gauge("desim.events_per_sim_sec", self.fired as f64 / secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule_at(at(3.0), |_, v| v.push(3));
        sim.schedule_at(at(1.0), |_, v| v.push(1));
        sim.schedule_at(at(2.0), |_, v| v.push(2));
        let mut v = Vec::new();
        let stats = sim.run(&mut v);
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(stats.events_fired, 3);
        assert_eq!(sim.now(), at(3.0));
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        for i in 0..16 {
            sim.schedule_at(at(1.0), move |_, v: &mut Vec<u32>| v.push(i));
        }
        let mut v = Vec::new();
        sim.run(&mut v);
        assert_eq!(v, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_followups() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_at(at(1.0), |sim, n| {
            *n += 1;
            sim.schedule_in(at(0.5), |sim, n| {
                *n += 10;
                sim.schedule_in(at(0.5), |_, n| *n += 100);
            });
        });
        let mut n = 0;
        sim.run(&mut n);
        assert_eq!(n, 111);
        assert_eq!(sim.now(), at(2.0));
    }

    #[test]
    fn heartbeat_fires_on_cadence_and_at_the_end() {
        let mut sim: Sim<u32> = Sim::new();
        for i in 0..10 {
            sim.schedule_at(at(i as f64), |_, n| *n += 1);
        }
        let mut beats: Vec<(u64, f64)> = Vec::new();
        let mut n = 0;
        let stats = sim.run_with_heartbeat(&mut n, 4, &mut |fired, clock| {
            beats.push((fired, clock));
        });
        assert_eq!(stats.events_fired, 10);
        assert_eq!(n, 10);
        // every 4 events, plus the unconditional final beat
        assert_eq!(beats, vec![(4, 3.0), (8, 7.0), (10, 9.0)]);
        // the heartbeat does not change what the run computes
        let mut plain: Sim<u32> = Sim::new();
        for i in 0..10 {
            plain.schedule_at(at(i as f64), |_, n| *n += 1);
        }
        let mut m = 0;
        let plain_stats = plain.run(&mut m);
        assert_eq!((m, plain_stats.events_fired), (n, stats.events_fired));
        assert_eq!(plain.now(), sim.now());
    }

    #[test]
    fn run_until_cuts_off_and_resumes() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule_at(at(1.0), |_, v| v.push(1));
        sim.schedule_at(at(5.0), |_, v| v.push(5));
        let mut v = Vec::new();
        sim.run_until(&mut v, at(2.0));
        assert_eq!(v, vec![1]);
        assert_eq!(sim.now(), at(2.0));
        assert_eq!(sim.pending(), 1);
        sim.run(&mut v);
        assert_eq!(v, vec![1, 5]);
    }

    #[test]
    fn stop_halts_loop_but_keeps_calendar() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_at(at(1.0), |sim, n| {
            *n += 1;
            sim.stop();
        });
        sim.schedule_at(at(2.0), |_, n| *n += 1);
        let mut n = 0;
        sim.run(&mut n);
        assert_eq!(n, 1);
        assert_eq!(sim.pending(), 1);
        sim.run(&mut n);
        assert_eq!(n, 2);
    }

    #[test]
    fn step_fires_one_event() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_at(at(1.0), |_, n| *n += 1);
        sim.schedule_at(at(2.0), |_, n| *n += 1);
        let mut n = 0;
        assert!(sim.step(&mut n));
        assert_eq!(n, 1);
        assert!(sim.step(&mut n));
        assert!(!sim.step(&mut n));
        assert_eq!(n, 2);
    }

    #[test]
    fn metrics_export_tracks_queue_and_throughput() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_at(at(1.0), |_, n| *n += 1);
        sim.schedule_at(at(2.0), |_, n| *n += 1);
        assert_eq!(sim.max_pending(), 2);
        let mut n = 0;
        sim.run(&mut n);
        let mut rec = vds_obs::Recorder::new();
        sim.export_metrics(&mut rec);
        assert_eq!(rec.registry().counter("desim.events_fired"), 2);
        assert_eq!(rec.registry().gauge_value("desim.queue.pending"), Some(0.0));
        assert_eq!(
            rec.registry().gauge_value("desim.queue.max_pending"),
            Some(2.0)
        );
        assert_eq!(
            rec.registry().gauge_value("desim.events_per_sim_sec"),
            Some(1.0)
        );
    }

    #[test]
    fn run_spanned_records_dispatch_spans() {
        let run = || {
            let mut sim: Sim<u32> = Sim::new();
            sim.schedule_at(at(1.0), |sim, n| {
                *n += 1;
                sim.schedule_in(at(0.5), |_, n| *n += 10);
            });
            let mut rec = vds_obs::Recorder::new();
            let mut n = 0;
            let stats = sim.run_spanned(&mut n, &mut rec);
            assert_eq!(stats.events_fired, 2);
            assert_eq!(n, 11);
            rec
        };
        let rec = run();
        let names: Vec<&str> = rec.spans().records().map(|s| s.name).collect();
        if cfg!(feature = "obs") {
            assert_eq!(names.iter().filter(|n| **n == "dispatch").count(), 2);
            assert!(names.contains(&"run"));
        } else {
            assert!(names.is_empty());
        }
        // deterministic export bytes
        assert_eq!(rec.spans().to_chrome_json(), run().spans().to_chrome_json());
    }

    #[test]
    fn run_journaled_records_digest_trace() {
        use vds_obs::journal::JournalHeader;
        let run = || {
            let mut sim: Sim<u64> = Sim::new();
            for i in 0..10 {
                sim.schedule_at(at(i as f64), |_, n| *n += 3);
            }
            let mut rec = vds_obs::Recorder::new();
            rec.enable_journal(JournalHeader::new("desim", "event-calendar", 0, 0, 10));
            let mut n = 0u64;
            let stats = sim.run_journaled(&mut n, &mut rec, 4, &mut |w| {
                vds_obs::digest_words128(&[*w as u32, (*w >> 32) as u32])
            });
            assert_eq!(stats.events_fired, 10);
            assert_eq!(n, 30);
            rec
        };
        let rec = run();
        let j = rec.journal();
        // every 4 events, plus the off-cadence final entry
        assert_eq!(j.len(), 3);
        let committed: Vec<u64> = j.entries().iter().map(|e| e.committed).collect();
        assert_eq!(committed, vec![4, 8, 10]);
        assert!(j.entries().iter().all(|e| e.d1 == e.d2));
        assert_eq!(j.divergences(), 0);
        // deterministic bytes across drains
        assert_eq!(j.to_jsonl(), run().journal().to_jsonl());
        // journalling does not change what the run computes
        let mut plain: Sim<u64> = Sim::new();
        for i in 0..10 {
            plain.schedule_at(at(i as f64), |_, n| *n += 3);
        }
        let mut m = 0u64;
        plain.run(&mut m);
        assert_eq!(m, 30);
        // disabled journal records nothing
        let mut sim: Sim<u64> = Sim::new();
        sim.schedule_at(at(1.0), |_, n| *n += 1);
        let mut rec = vds_obs::Recorder::new();
        let mut n = 0u64;
        sim.run_journaled(&mut n, &mut rec, 1, &mut |_| vds_obs::digest_words128(&[]));
        assert!(rec.journal().is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_at(at(5.0), |sim, _| {
            sim.schedule_at(at(1.0), |_, _| {});
        });
        let mut n = 0;
        sim.run(&mut n);
    }
}
