//! Report containers: `(x, y)` series, labelled tables and 2-D surfaces,
//! with CSV/TSV emission. The bench harness prints these; keeping them here
//! lets integration tests assert on figure data without parsing text.

use std::fmt::Write as _;

/// A named `(x, y)` series, e.g. gain versus α.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    /// Series name (used as CSV column header).
    pub name: String,
    /// The points, in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// `y` at the first point whose `x` matches within `tol`.
    pub fn y_at(&self, x: f64, tol: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() <= tol)
            .map(|&(_, y)| y)
    }

    /// Maximum y value (NaN-free data assumed).
    pub fn y_max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }

    /// Minimum y value.
    pub fn y_min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.min(y))))
    }
}

/// Several series sharing an x-axis, rendered as a CSV table.
#[derive(Debug, Clone, Default)]
pub struct SeriesSet {
    /// Label for the x column.
    pub x_label: String,
    /// The member series. All must have identical x grids for `to_csv`.
    pub series: Vec<Series>,
}

impl SeriesSet {
    /// Empty set with an x-axis label.
    pub fn new(x_label: impl Into<String>) -> Self {
        SeriesSet {
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// CSV with a shared x column. Rows follow the first series' x grid;
    /// other series contribute empty cells where their grid differs.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{}", s.name);
        }
        out.push('\n');
        let Some(first) = self.series.first() else {
            return out;
        };
        for &(x, _) in &first.points {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x, 1e-12) {
                    Some(y) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A dense 2-D surface `z = f(x, y)` on a rectangular grid — the shape of
/// the paper's Figures 4 and 5 (`Ḡ_corr(α, β)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Surface {
    /// x-axis sample points (e.g. α values).
    pub xs: Vec<f64>,
    /// y-axis sample points (e.g. β values).
    pub ys: Vec<f64>,
    /// Row-major values: `z[iy * xs.len() + ix]`.
    pub z: Vec<f64>,
    /// Axis/value labels `(x, y, z)`.
    pub labels: (String, String, String),
}

impl Surface {
    /// Evaluate `f` over the grid `xs × ys`.
    pub fn evaluate(
        xs: Vec<f64>,
        ys: Vec<f64>,
        labels: (&str, &str, &str),
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Self {
        let mut z = Vec::with_capacity(xs.len() * ys.len());
        for &y in &ys {
            for &x in &xs {
                z.push(f(x, y));
            }
        }
        Surface {
            xs,
            ys,
            z,
            labels: (
                labels.0.to_string(),
                labels.1.to_string(),
                labels.2.to_string(),
            ),
        }
    }

    /// Value at grid indices.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        self.z[iy * self.xs.len() + ix]
    }

    /// Value at the grid point nearest to `(x, y)`.
    pub fn nearest(&self, x: f64, y: f64) -> f64 {
        let ix = nearest_index(&self.xs, x);
        let iy = nearest_index(&self.ys, y);
        self.at(ix, iy)
    }

    /// Global maximum of z.
    pub fn z_max(&self) -> f64 {
        self.z.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Global minimum of z.
    pub fn z_min(&self) -> f64 {
        self.z.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Long-form CSV: `x,y,z` per row — the friendliest format for gnuplot
    /// or pandas to re-plot the figure.
    pub fn to_csv_long(&self) -> String {
        let mut out = format!("{},{},{}\n", self.labels.0, self.labels.1, self.labels.2);
        for (iy, &y) in self.ys.iter().enumerate() {
            for (ix, &x) in self.xs.iter().enumerate() {
                let _ = writeln!(out, "{x},{y},{}", self.at(ix, iy));
            }
        }
        out
    }

    /// Matrix-form TSV: first row is x values, first column y values.
    pub fn to_tsv_matrix(&self) -> String {
        let mut out = format!("{}\\{}", self.labels.1, self.labels.0);
        for &x in &self.xs {
            let _ = write!(out, "\t{x:.3}");
        }
        out.push('\n');
        for (iy, &y) in self.ys.iter().enumerate() {
            let _ = write!(out, "{y:.3}");
            for ix in 0..self.xs.len() {
                let _ = write!(out, "\t{:.4}", self.at(ix, iy));
            }
            out.push('\n');
        }
        out
    }

    /// Coarse ASCII contour: digits are `floor(z*10) % 10`, `+` where z ≥ 2.
    /// Good enough to eyeball the shape of Figures 4/5 in a terminal.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        for (iy, &y) in self.ys.iter().enumerate().rev() {
            let _ = write!(out, "{y:>6.2} |");
            for ix in 0..self.xs.len() {
                let z = self.at(ix, iy);
                let ch = if z >= 2.0 {
                    '+'
                } else if !z.is_finite() {
                    '?'
                } else {
                    char::from_digit(((z * 10.0).floor() as u32) % 10, 10).unwrap_or('?')
                };
                out.push(ch);
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "        {}={:.2}..{:.2}  (digit = tenths of {})",
            self.labels.0,
            self.xs.first().copied().unwrap_or(0.0),
            self.xs.last().copied().unwrap_or(0.0),
            self.labels.2
        );
        out
    }
}

fn nearest_index(grid: &[f64], v: f64) -> usize {
    let mut best = 0;
    let mut bestd = f64::INFINITY;
    for (i, &g) in grid.iter().enumerate() {
        let d = (g - v).abs();
        if d < bestd {
            bestd = d;
            best = i;
        }
    }
    best
}

/// Evenly spaced grid `lo..=hi` with `n` points (n ≥ 2).
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup() {
        let mut s = Series::new("g");
        s.push(0.5, 2.0);
        s.push(1.0, 1.0);
        assert_eq!(s.y_at(0.5, 1e-9), Some(2.0));
        assert_eq!(s.y_at(0.75, 1e-9), None);
        assert_eq!(s.y_max(), Some(2.0));
        assert_eq!(s.y_min(), Some(1.0));
    }

    #[test]
    fn seriesset_csv() {
        let mut set = SeriesSet::new("alpha");
        let mut a = Series::new("exact");
        a.push(0.5, 2.0);
        a.push(1.0, 1.0);
        let mut b = Series::new("approx");
        b.push(0.5, 2.0);
        b.push(1.0, 1.0);
        set.push(a);
        set.push(b);
        let csv = set.to_csv();
        assert!(csv.starts_with("alpha,exact,approx\n"));
        assert!(csv.contains("0.5,2,2"));
    }

    #[test]
    fn surface_evaluate_and_lookup() {
        let s = Surface::evaluate(
            linspace(0.0, 1.0, 3),
            linspace(0.0, 2.0, 3),
            ("x", "y", "z"),
            |x, y| x + y,
        );
        assert_eq!(s.at(0, 0), 0.0);
        assert_eq!(s.at(2, 2), 3.0);
        assert_eq!(s.nearest(0.49, 0.0), 0.5);
        assert_eq!(s.z_max(), 3.0);
        assert_eq!(s.z_min(), 0.0);
    }

    #[test]
    fn surface_csv_long_has_all_rows() {
        let s = Surface::evaluate(
            linspace(0.0, 1.0, 2),
            linspace(0.0, 1.0, 2),
            ("a", "b", "g"),
            |x, y| x * y,
        );
        let csv = s.to_csv_long();
        assert_eq!(csv.lines().count(), 5); // header + 4 points
        assert!(csv.starts_with("a,b,g\n"));
    }

    #[test]
    fn linspace_endpoints() {
        let g = linspace(0.5, 1.0, 26);
        assert_eq!(g.len(), 26);
        assert!((g[0] - 0.5).abs() < 1e-12);
        assert!((g[25] - 1.0).abs() < 1e-12);
        assert!((g[1] - 0.52).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_runs() {
        let s = Surface::evaluate(
            linspace(0.5, 1.0, 10),
            linspace(0.0, 1.0, 5),
            ("alpha", "beta", "gain"),
            |x, y| 1.0 / (x + y),
        );
        let art = s.render_ascii();
        assert_eq!(art.lines().count(), 6);
    }
}
