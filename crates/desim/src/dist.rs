//! Probability distributions for the simulation experiments.
//!
//! Implemented directly on top of `rand`'s uniform primitives so the
//! workspace does not need `rand_distr`. Everything samples from an
//! explicit `&mut Rng`, never from thread-local state.

use crate::rng::Rng;
use rand::Rng as _;

/// A sampleable distribution over `f64`.
pub trait Distribution {
    /// Draw one sample.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// The distribution's mean, if finite and known.
    fn mean(&self) -> f64;
}

/// Always returns the same value. Used for the paper's deterministic round
/// time `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic(pub f64);

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut Rng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

/// Uniform over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// # Panics
    /// Panics unless `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform requires lo < hi, got [{lo}, {hi})");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Exponential with the given rate λ (mean 1/λ). Inter-arrival times of a
/// Poisson fault process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate λ (mean 1/λ).
    pub rate: f64,
}

impl Exponential {
    /// # Panics
    /// Panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "Exponential rate must be positive, got {rate}");
        Exponential { rate }
    }

    /// Construct from a mean instead of a rate.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF; 1-u avoids ln(0).
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).ln() / self.rate
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// Normal(mu, sigma) truncated below at `floor` (re-draw on violation).
/// Used for jittered round times that must stay positive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncNormal {
    /// Location parameter of the untruncated normal.
    pub mu: f64,
    /// Scale parameter.
    pub sigma: f64,
    /// Samples at or below this value are rejected.
    pub floor: f64,
}

impl TruncNormal {
    /// # Panics
    /// Panics if `sigma < 0` or `mu <= floor` (acceptance would be < 50%,
    /// we keep the model simple and honest instead of looping forever).
    pub fn new(mu: f64, sigma: f64, floor: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(mu > floor, "mu must exceed floor for efficient sampling");
        TruncNormal { mu, sigma, floor }
    }

    /// One standard normal via Box–Muller (single value; we discard the
    /// pair member for simplicity — sampling here is nowhere near hot).
    fn std_normal(rng: &mut Rng) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution for TruncNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        if self.sigma == 0.0 {
            return self.mu;
        }
        loop {
            let x = self.mu + self.sigma * Self::std_normal(rng);
            if x > self.floor {
                return x;
            }
        }
    }
    fn mean(&self) -> f64 {
        // Approximation: for mu sufficiently above floor the truncation
        // bias is negligible; callers that need the exact truncated mean
        // should compute it themselves.
        self.mu
    }
}

/// Bernoulli over `{true, false}` with success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    /// Success probability.
    pub p: f64,
}

impl Bernoulli {
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        Bernoulli { p }
    }

    /// Draw a boolean.
    pub fn draw(&self, rng: &mut Rng) -> bool {
        rng.gen::<f64>() < self.p
    }
}

/// A type-erased distribution, convenient for configuration structs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// See [`Deterministic`].
    Deterministic(f64),
    /// See [`Uniform`].
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// See [`Exponential`]; parameterised by mean.
    ExponentialMean(f64),
    /// See [`TruncNormal`].
    TruncNormal {
        /// Location parameter.
        mu: f64,
        /// Scale parameter.
        sigma: f64,
        /// Rejection floor.
        floor: f64,
    },
}

impl Distribution for Dist {
    fn sample(&self, rng: &mut Rng) -> f64 {
        match *self {
            Dist::Deterministic(v) => Deterministic(v).sample(rng),
            Dist::Uniform { lo, hi } => Uniform::new(lo, hi).sample(rng),
            Dist::ExponentialMean(m) => Exponential::with_mean(m).sample(rng),
            Dist::TruncNormal { mu, sigma, floor } => {
                TruncNormal::new(mu, sigma, floor).sample(rng)
            }
        }
    }

    fn mean(&self) -> f64 {
        match *self {
            Dist::Deterministic(v) => v,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::ExponentialMean(m) => m,
            Dist::TruncNormal { mu, .. } => mu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn sample_mean(d: &impl Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic(3.5);
        let mut rng = rng_from_seed(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn uniform_mean_and_bounds() {
        let d = Uniform::new(2.0, 4.0);
        let mut rng = rng_from_seed(2);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        let m = sample_mean(&d, 20_000, 3);
        assert!((m - 3.0).abs() < 0.02, "mean={m}");
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::with_mean(5.0);
        assert!((d.mean() - 5.0).abs() < 1e-12);
        let m = sample_mean(&d, 50_000, 4);
        assert!((m - 5.0).abs() < 0.15, "mean={m}");
    }

    #[test]
    fn trunc_normal_respects_floor() {
        let d = TruncNormal::new(1.0, 0.5, 0.0);
        let mut rng = rng_from_seed(5);
        for _ in 0..5000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn trunc_normal_sigma_zero_is_constant() {
        let d = TruncNormal::new(2.0, 0.0, 0.0);
        let mut rng = rng_from_seed(6);
        assert_eq!(d.sample(&mut rng), 2.0);
    }

    #[test]
    fn bernoulli_frequency() {
        let b = Bernoulli::new(0.3);
        let mut rng = rng_from_seed(7);
        let hits = (0..20_000).filter(|_| b.draw(&mut rng)).count();
        let f = hits as f64 / 20_000.0;
        assert!((f - 0.3).abs() < 0.02, "freq={f}");
    }

    #[test]
    fn dist_enum_dispatches() {
        let mut rng = rng_from_seed(8);
        assert_eq!(Dist::Deterministic(1.0).sample(&mut rng), 1.0);
        assert_eq!(Dist::ExponentialMean(2.0).mean(), 2.0);
        assert_eq!(Dist::Uniform { lo: 0.0, hi: 2.0 }.mean(), 1.0);
    }

    #[test]
    #[should_panic]
    fn bernoulli_rejects_bad_p() {
        Bernoulli::new(1.5);
    }

    #[test]
    #[should_panic]
    fn uniform_rejects_empty_range() {
        Uniform::new(2.0, 2.0);
    }
}
