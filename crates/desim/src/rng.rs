//! Deterministic random-number plumbing.
//!
//! Every stochastic component in the workspace takes an explicit seed.
//! This module centralises (a) the RNG type used everywhere and (b) a
//! *seed splitter* that derives statistically independent child seeds from a
//! master seed plus a label, so that adding a new consumer never perturbs
//! the streams of existing ones (a classic reproducibility hazard in
//! simulation studies).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG used across the VDS workspace: `rand`'s small, fast,
/// non-cryptographic generator, explicitly seeded.
pub type Rng = SmallRng;

/// SplitMix64 step; good avalanche, used purely for seed derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a label into a 64-bit value (FNV-1a).
#[inline]
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derive a child seed from `(master, label)`. Deterministic; different
/// labels yield (with overwhelming probability) unrelated streams.
pub fn child_seed(master: u64, label: &str) -> u64 {
    let mut state = master ^ hash_label(label);
    // A couple of rounds of SplitMix64 to decorrelate similar labels.
    let a = splitmix64(&mut state);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(32)
}

/// Derive an indexed child seed, for replication loops
/// (`stream(master, "injection", rep)`).
pub fn indexed_seed(master: u64, label: &str, index: u64) -> u64 {
    let mut state = child_seed(master, label) ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(&mut state)
}

/// Construct the workspace RNG from a seed.
pub fn rng_from_seed(seed: u64) -> Rng {
    SmallRng::seed_from_u64(seed)
}

/// Construct a labelled child RNG from a master seed.
pub fn child_rng(master: u64, label: &str) -> Rng {
    rng_from_seed(child_seed(master, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn child_seeds_are_deterministic() {
        assert_eq!(child_seed(42, "alpha"), child_seed(42, "alpha"));
        assert_eq!(indexed_seed(42, "x", 7), indexed_seed(42, "x", 7));
    }

    #[test]
    fn different_labels_differ() {
        assert_ne!(child_seed(42, "alpha"), child_seed(42, "beta"));
        assert_ne!(child_seed(42, "alpha"), child_seed(43, "alpha"));
        assert_ne!(indexed_seed(42, "x", 0), indexed_seed(42, "x", 1));
    }

    #[test]
    fn similar_labels_decorrelate() {
        // Labels differing in one character should produce very different
        // seeds (rough avalanche check: at least 16 differing bits).
        let a = child_seed(1, "stream-0");
        let b = child_seed(1, "stream-1");
        assert!((a ^ b).count_ones() >= 16, "a={a:x} b={b:x}");
    }

    #[test]
    fn rngs_reproduce() {
        let mut r1 = child_rng(99, "foo");
        let mut r2 = child_rng(99, "foo");
        for _ in 0..100 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn streams_look_independent() {
        // Crude: correlation of first 1000 u8 draws should be small.
        let mut r1 = child_rng(7, "a");
        let mut r2 = child_rng(7, "b");
        let n = 1000;
        let xs: Vec<f64> = (0..n).map(|_| r1.gen::<u8>() as f64).collect();
        let ys: Vec<f64> = (0..n).map(|_| r2.gen::<u8>() as f64).collect();
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr.abs() < 0.1, "corr={corr}");
    }
}
