//! Virtual simulation time.
//!
//! Time is represented as a non-negative `f64` number of abstract seconds.
//! The VDS model works with real-valued durations (`t`, `αt`, `βt`, …), so a
//! floating representation is the natural fit; a total order is imposed via
//! [`f64::total_cmp`] so [`SimTime`] can live in ordered containers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) virtual time, in abstract seconds.
///
/// `SimTime` is both a timestamp and a duration; the engine does not
/// distinguish the two. Negative values are representable for intermediate
/// arithmetic but the event queue rejects scheduling in the past.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time so far in the future it is effectively "never".
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Construct from a number of abstract seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan(), "SimTime must not be NaN");
        SimTime(secs)
    }

    /// The raw number of abstract seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `true` iff this is exactly time zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// `true` for a finite (schedulable) time.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Scale a duration by a dimensionless factor.
    #[inline]
    pub fn scale(self, k: f64) -> SimTime {
        SimTime(self.0 * k)
    }

    /// Saturating subtraction: `max(self - other, 0)`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<SimTime> for SimTime {
    /// Ratio of two durations is dimensionless.
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}", prec, self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::INFINITY > b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(3.0);
        assert_eq!((t + SimTime::from_secs(1.0)).as_secs(), 4.0);
        assert_eq!((t - SimTime::from_secs(1.0)).as_secs(), 2.0);
        assert_eq!((t * 2.0).as_secs(), 6.0);
        assert_eq!(t / SimTime::from_secs(1.5), 2.0);
        assert_eq!(t.scale(0.5).as_secs(), 1.5);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_secs(), 1.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    fn display_with_precision() {
        let t = SimTime::from_secs(1.23456);
        assert_eq!(format!("{t:.2}"), "1.23");
    }
}
