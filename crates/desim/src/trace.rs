//! Timeline tracing and ASCII Gantt rendering.
//!
//! The paper's Figure 1 shows the execution models of a VDS on a
//! conventional and on a multithreaded processor as timelines of rounds,
//! context switches, comparisons and recovery activity. The VDS engine
//! records [`Span`]s into a [`Timeline`]; [`Timeline::render_ascii`]
//! reproduces the figure in text form and [`Timeline::to_tsv`] emits the
//! raw data for external plotting.

use crate::time::SimTime;
use std::fmt::Write as _;

/// What a span of processor time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A version executing one round of useful work.
    Round,
    /// A context switch.
    ContextSwitch,
    /// State comparison between versions.
    Compare,
    /// Checkpoint being written to stable storage.
    Checkpoint,
    /// Retry execution of the spare version during recovery.
    Retry,
    /// Roll-forward execution during recovery.
    RollForward,
    /// Majority vote.
    Vote,
    /// Copying a state image between versions.
    StateCopy,
    /// Processor idle (e.g. a hardware thread with nothing scheduled).
    Idle,
}

impl SpanKind {
    /// Single character used by the ASCII renderer.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Round => '=',
            SpanKind::ContextSwitch => 'x',
            SpanKind::Compare => 'c',
            SpanKind::Checkpoint => 'S',
            SpanKind::Retry => 'r',
            SpanKind::RollForward => 'f',
            SpanKind::Vote => 'V',
            SpanKind::StateCopy => 'y',
            SpanKind::Idle => '.',
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Round => "round",
            SpanKind::ContextSwitch => "context-switch",
            SpanKind::Compare => "compare",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Retry => "retry",
            SpanKind::RollForward => "roll-forward",
            SpanKind::Vote => "vote",
            SpanKind::StateCopy => "state-copy",
            SpanKind::Idle => "idle",
        }
    }
}

/// One contiguous activity on one lane (= hardware thread or CPU).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Lane index (0-based). Lane 0 is the only lane on a conventional CPU.
    pub lane: usize,
    /// Start time.
    pub start: SimTime,
    /// End time (exclusive).
    pub end: SimTime,
    /// Activity class.
    pub kind: SpanKind,
    /// Free-form label, e.g. `"V1 R3"`.
    pub label: String,
}

/// An append-only recording of spans.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    spans: Vec<Span>,
    lanes: usize,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a span. Zero-length spans are kept (they still carry labels,
    /// e.g. instantaneous comparisons in the abstract model) but rendered
    /// only in the TSV output.
    pub fn record(
        &mut self,
        lane: usize,
        start: SimTime,
        end: SimTime,
        kind: SpanKind,
        label: impl Into<String>,
    ) {
        debug_assert!(end >= start, "span must not be negative");
        self.lanes = self.lanes.max(lane + 1);
        self.spans.push(Span {
            lane,
            start,
            end,
            kind,
            label: label.into(),
        });
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of lanes seen.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Latest end time (ZERO if empty).
    pub fn end_time(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total time attributed to `kind` across all lanes.
    pub fn total_time(&self, kind: SpanKind) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Render an ASCII Gantt chart, `width` characters wide, one row per
    /// lane. Each cell shows the glyph of the span covering the midpoint of
    /// that cell's time slice; `.` where nothing is recorded.
    pub fn render_ascii(&self, width: usize) -> String {
        let mut out = String::new();
        let end = self.end_time();
        if end.is_zero() || width == 0 {
            return out;
        }
        let dt = end.as_secs() / width as f64;
        for lane in 0..self.lanes {
            let _ = write!(out, "T{lane} |");
            for cell in 0..width {
                let mid = SimTime::from_secs((cell as f64 + 0.5) * dt);
                let glyph = self
                    .spans
                    .iter()
                    .rev() // later recordings win, matches overlay semantics
                    .find(|s| s.lane == lane && s.start <= mid && mid < s.end)
                    .map_or('.', |s| s.kind.glyph());
                out.push(glyph);
            }
            out.push_str("|\n");
        }
        let _ = writeln!(
            out,
            "    0{:>width$}",
            format!("{:.2}", end.as_secs()),
            width = width - 1
        );
        out.push_str("    legend: = round  x switch  c compare  S checkpoint  r retry  f roll-forward  V vote  y copy\n");
        out
    }

    /// Convert the timeline into profiler spans on `rec`: one span per
    /// recorded [`Span`], lane = hardware-thread id, under the given
    /// component (a lane per `(component, tid)` pair in the Chrome
    /// export). Labels travel along as a `label` field.
    pub fn export_spans<R: vds_obs::Record>(&self, rec: &mut R, component: &'static str) {
        if !R::ENABLED || !rec.is_active() {
            return;
        }
        for s in &self.spans {
            let fields = if s.label.is_empty() {
                Vec::new()
            } else {
                vec![("label", vds_obs::Value::from(s.label.clone()))]
            };
            rec.record_span(vds_obs::SpanRecord {
                begin: s.start.as_secs(),
                end: s.end.as_secs(),
                component,
                name: s.kind.name(),
                tid: s.lane as u32,
                fields,
            });
        }
    }

    /// Tab-separated dump: `lane  start  end  kind  label`.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("lane\tstart\tend\tkind\tlabel\n");
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}",
                s.lane,
                s.start.as_secs(),
                s.end.as_secs(),
                s.kind.name(),
                s.label
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_and_totals() {
        let mut tl = Timeline::new();
        tl.record(0, t(0.0), t(1.0), SpanKind::Round, "V1 R1");
        tl.record(0, t(1.0), t(1.1), SpanKind::ContextSwitch, "");
        tl.record(0, t(1.1), t(2.1), SpanKind::Round, "V2 R1");
        assert_eq!(tl.lanes(), 1);
        assert_eq!(tl.end_time(), t(2.1));
        assert!((tl.total_time(SpanKind::Round).as_secs() - 2.0).abs() < 1e-12);
        assert!((tl.total_time(SpanKind::ContextSwitch).as_secs() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_shape() {
        let mut tl = Timeline::new();
        tl.record(0, t(0.0), t(1.0), SpanKind::Round, "V1 R1");
        tl.record(1, t(0.0), t(1.0), SpanKind::Round, "V2 R1");
        let s = tl.render_ascii(20);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("T0 |"));
        assert!(lines[1].starts_with("T1 |"));
        assert!(lines[0].contains("===="));
    }

    #[test]
    fn ascii_handles_empty() {
        let tl = Timeline::new();
        assert_eq!(tl.render_ascii(40), "");
    }

    #[test]
    fn tsv_dump() {
        let mut tl = Timeline::new();
        tl.record(0, t(0.0), t(1.5), SpanKind::Retry, "V3 R1..R3");
        let tsv = tl.to_tsv();
        assert!(tsv.contains("0\t0\t1.5\tretry\tV3 R1..R3"));
    }

    #[test]
    fn later_spans_overlay_earlier() {
        let mut tl = Timeline::new();
        tl.record(0, t(0.0), t(2.0), SpanKind::Idle, "");
        tl.record(0, t(0.5), t(1.5), SpanKind::Round, "V1");
        let s = tl.render_ascii(4);
        // cells at midpoints 0.25,0.75,1.25,1.75 -> idle, round, round, idle
        let row = s.lines().next().unwrap();
        assert!(row.contains(".==."), "row was {row}");
    }
}
