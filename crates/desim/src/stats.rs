//! Online statistics: Welford mean/variance, confidence intervals,
//! histograms and counters.
//!
//! Experiments accumulate into these types and the bench harness prints
//! them; none of this is performance-critical, clarity wins.

use std::fmt;

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add every value from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, it: I) {
        for x in it {
            self.push(x);
        }
    }

    /// Build from an iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(it: I) -> Self {
        let mut s = Self::new();
        s.extend(it);
        s
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction;
    /// Chan et al. pairwise combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Half-width of the central confidence interval for the mean at the
    /// given confidence level, using the normal approximation with a small
    /// built-in z-table (0.90 / 0.95 / 0.99; other levels fall back to
    /// 0.95's z).
    pub fn ci_half_width(&self, level: f64) -> f64 {
        let z = if (level - 0.90).abs() < 1e-9 {
            1.6449
        } else if (level - 0.99).abs() < 1e-9 {
            2.5758
        } else {
            1.9600
        };
        z * self.std_err()
    }

    /// `(lo, hi)` 95% confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let h = self.ci_half_width(0.95);
        (self.mean() - h, self.mean() + h)
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// `nbins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `nbins > 0`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(nbins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(bin_midpoint, count)` pairs.
    pub fn midpoints(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }

    /// Approximate p-quantile from bin boundaries (`0 <= p <= 1`). Returns
    /// `None` when the histogram is empty or the quantile falls in the
    /// under/overflow mass.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p));
        if self.count == 0 {
            return None;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = self.underflow;
        if target <= cum {
            return None;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if target <= cum {
                return Some(self.lo + (i as f64 + 1.0) * w);
            }
        }
        None
    }
}

/// A labelled counter set, for classifying experiment outcomes.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    entries: Vec<(String, u64)>,
}

impl Counter {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment `label` by one.
    pub fn bump(&mut self, label: &str) {
        self.add(label, 1);
    }

    /// Increment `label` by `n`.
    pub fn add(&mut self, label: &str, n: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(l, _)| l == label) {
            e.1 += n;
        } else {
            self.entries.push((label.to_string(), n));
        }
    }

    /// Current count for `label` (0 if never bumped).
    pub fn get(&self, label: &str) -> u64 {
        self.entries
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |(_, n)| *n)
    }

    /// Sum over all labels.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, n)| n).sum()
    }

    /// Fraction `label` / total (0 if total is 0).
    pub fn fraction(&self, label: &str) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(label) as f64 / t as f64
        }
    }

    /// Iterate `(label, count)` in first-seen order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(l, n)| (l.as_str(), *n))
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        for (l, n) in other.iter() {
            self.add(l, n);
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for (l, n) in self.iter() {
            writeln!(
                f,
                "  {:<32} {:>10}  ({:.2}%)",
                l,
                n,
                100.0 * n as f64 / total.max(1) as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = OnlineStats::from_iter(xs.iter().copied());
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // naive unbiased variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = OnlineStats::from_iter(xs.iter().copied());
        let mut a = OnlineStats::from_iter(xs[..37].iter().copied());
        let b = OnlineStats::from_iter(xs[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::from_iter([1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ci_narrows_with_n() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            large.push((i % 3) as f64);
        }
        assert!(large.ci_half_width(0.95) < small.ci_half_width(0.95));
        let (lo, hi) = large.ci95();
        assert!(lo < large.mean() && large.mean() < hi);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(42.0);
        assert_eq!(h.count(), 12);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert!(h.bins().iter().all(|&c| c == 1));
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.push(i as f64);
        }
        let q = h.quantile(0.5).unwrap();
        assert!((q - 50.0).abs() <= 1.0, "median ~50, got {q}");
        assert!(h.quantile(1.0).unwrap() >= 99.0);
    }

    #[test]
    fn histogram_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        let mids: Vec<f64> = h.midpoints().iter().map(|(m, _)| *m).collect();
        assert_eq!(mids, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.bump("detected");
        c.bump("detected");
        c.bump("missed");
        assert_eq!(c.get("detected"), 2);
        assert_eq!(c.get("nope"), 0);
        assert_eq!(c.total(), 3);
        assert!((c.fraction("detected") - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn counter_merge() {
        let mut a = Counter::new();
        a.add("x", 2);
        let mut b = Counter::new();
        b.add("x", 3);
        b.add("y", 1);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }
}
