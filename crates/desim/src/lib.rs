#![warn(missing_docs)]

//! # vds-desim — discrete-event simulation substrate
//!
//! A small, deterministic discrete-event simulation (DES) engine plus the
//! statistics and reporting toolkit used throughout the VDS-SMT
//! reproduction of Fechner/Keller/Sobe, *"Performance Estimation of Virtual
//! Duplex Systems on Simultaneous Multithreaded Processors"* (IPDPS 2004
//! workshops).
//!
//! The paper's evaluation is analytical; this crate provides the machinery
//! to *validate* the closed forms by execution:
//!
//! * [`engine::Sim`] — a closure-based event calendar with a virtual clock.
//!   Events fire in `(time, insertion order)` order, so runs are
//!   reproducible bit-for-bit.
//! * [`time::SimTime`] — virtual time as a totally-ordered `f64` newtype.
//! * [`rng`] — seed-derivation helpers so independent subsystems get
//!   independent, reproducible random streams.
//! * [`dist`] — the handful of distributions the experiments need
//!   (deterministic, uniform, exponential, truncated normal, Bernoulli),
//!   implemented directly so the only external dependency is `rand`.
//! * [`stats`] — online mean/variance (Welford), confidence intervals,
//!   histograms and counters.
//! * [`trace`] — span-based timeline recording and the ASCII Gantt renderer
//!   used to regenerate the paper's Figure 1 execution models.
//! * [`series`] — tiny `(x, y)` series / 2-D surface containers with CSV
//!   output for the figure-regeneration harness.
//!
//! ## Example
//!
//! ```
//! use vds_desim::engine::Sim;
//! use vds_desim::time::SimTime;
//!
//! // World state: a counter.
//! let mut sim: Sim<u32> = Sim::new();
//! sim.schedule_in(SimTime::from_secs(1.0), |sim, n| {
//!     *n += 1;
//!     // events may schedule follow-ups
//!     sim.schedule_in(SimTime::from_secs(2.0), |_, n| *n += 10);
//! });
//! let mut world = 0u32;
//! sim.run(&mut world);
//! assert_eq!(world, 11);
//! assert_eq!(sim.now().as_secs(), 3.0);
//! ```

pub mod dist;
pub mod engine;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::Sim;
pub use time::SimTime;
