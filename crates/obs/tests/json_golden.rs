//! Golden-file test pinning the shared report serializer.
//!
//! Every machine-readable report — `vds stats --json`, the telemetry
//! server's `/progress`, and the `BENCH_<n>.json` experiment rows — goes
//! through [`vds_obs::JsonObj`]. This test rebuilds one representative
//! document of each kind from fixed inputs and compares the exact bytes
//! against `testdata/report_shapes.golden.jsonl` (one report per line).
//! Regenerate with `VDS_UPDATE_GOLDEN=1 cargo test -p vds-obs`.

use vds_obs::alpha::{AlphaReport, CycleSnapshot, PairLedger};
use vds_obs::{digest_words128, JsonObj, Registry};
use vds_obs::{Action, Journal, JournalHeader, RoundEntry, Verdict};

fn sample_journal() -> Journal {
    let mut j = Journal::enabled(JournalHeader::new("micro", "smt-prob", 1, 10, 2));
    j.push(RoundEntry {
        seq: 0,
        lane: 0,
        round: 1,
        committed: 1,
        sim_time: 0.5,
        d1: digest_words128(&[1]),
        d2: digest_words128(&[2]),
        verdict: Verdict::Mismatch,
        sched: "coschedule[v1,v2]".to_string(),
        action: Action::Recover,
        rollforward: 2,
        fault: Some("transient:mem:4:9@v2".to_string()),
        fault_id: Some(0),
        fault_outcome: None,
    });
    j
}

fn sample_registry() -> Registry {
    let mut r = Registry::new();
    r.count("vds.detections", 1);
    r.count("journal.rounds", 1);
    r.gauge("smt.occupancy", 0.75);
    r.observe("round.cycles", 40.0);
    r.observe("round.cycles", 44.0);
    r
}

/// `vds stats --json`: the single-run report.
fn stats_report() -> String {
    JsonObj::report("stats")
        .str("verdict", "correct")
        .raw("journal", &sample_journal().summary_json())
        .raw("metrics", &sample_registry().to_json_object())
        .finish()
}

/// The telemetry server's `/progress` body (fixed clock values — the
/// live server fills these from its own atomics).
fn progress_report() -> String {
    JsonObj::report("progress")
        .str("phase", "campaign")
        .bool("ready", true)
        .bool("done", false)
        .f64_fixed("elapsed_secs", 1.25, 3)
        .u64("trials_done", 5)
        .u64("trials_total", 100)
        .u64("shards_done", 1)
        .u64("shards_total", 8)
        .u64("work_units", 2442)
        .f64_fixed("work_units_per_sec", 1953.6, 3)
        .raw("journal", &sample_journal().summary_json())
        .raw("metrics", &sample_registry().to_json_object())
        .finish()
}

/// One `BENCH_<n>.json` experiment row (the document wrapper adds the
/// envelope and pretty layout in `vds_bench::perf::BenchReport::to_json`;
/// the row bytes come from this exact builder chain).
fn bench_row() -> String {
    JsonObj::new()
        .str("id", "E9")
        .u64("sim_rounds", 2)
        .f64_fixed("host_ms", 52.417, 3)
        .u64("work_units", 2442)
        .f64_fixed("work_per_ms", 2442.0 / 52.417, 3)
        .u64("conf_samples", 5)
        .f64_fixed("conf_mean_abs_residual", 0.031416, 6)
        .finish()
}

/// `vds alpha --json`: the α-attribution ledger report, built from
/// synthetic counter snapshots (30 excess cycles: +20 dcache, +8 width,
/// +2 parked).
fn alpha_report() -> String {
    let snap = |cycles, issued, stalls: [u64; 5], parked| CycleSnapshot {
        cycles,
        issued_cycles: issued,
        stall_icache: stalls[0],
        stall_dcache: stalls[1],
        stall_fu: stalls[2],
        stall_width: stalls[3],
        stall_branch: stalls[4],
        parked,
    };
    let solo_a = snap(100, 60, [10, 10, 5, 5, 5], 5);
    let co_a = snap(130, 60, [10, 30, 5, 13, 5], 7);
    let solo_b = snap(80, 50, [5, 10, 5, 5, 5], 0);
    let co_b = snap(130, 50, [5, 20, 5, 10, 5], 35);
    AlphaReport {
        pairs: vec![PairLedger::attribute(
            "vecsum", "crc", solo_a, solo_b, co_a, co_b,
        )],
    }
    .to_json()
}

#[test]
fn report_shapes_match_golden_file() {
    let got = format!(
        "{}\n{}\n{}\n{}\n",
        stats_report(),
        progress_report(),
        bench_row(),
        alpha_report()
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/testdata/report_shapes.golden.jsonl"
    );
    if std::env::var_os("VDS_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).unwrap();
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file present (regenerate with VDS_UPDATE_GOLDEN=1)");
    assert_eq!(got, want, "report shapes drifted from the golden file");
}

#[test]
fn every_report_opens_with_the_shared_envelope() {
    for report in [stats_report(), progress_report(), alpha_report()] {
        assert!(
            report.starts_with("{\"schema\":\"vds.report.v1\",\"kind\":\""),
            "{report}"
        );
    }
}
