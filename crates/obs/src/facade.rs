//! The statically-dispatched recording facade.
//!
//! Engines are generic over [`Record`], so every emission call is
//! monomorphized against the concrete recorder type. The zero-sized
//! [`NoopRecorder`] implements the trait with empty bodies and
//! `is_active() == false`, which lets the optimizer fold away not only
//! the calls themselves but — via the `obs_*!` macros, which guard
//! argument construction behind `is_active()` — the argument
//! allocations (`vec![…]` field lists, `format!` labels) at the call
//! sites too. Uninstrumented runs pay literally nothing.
//!
//! The concrete [`Recorder`] implements the same trait by delegating to
//! its inherent methods, so instrumented entry points
//! (`run_*_recorded`, journaled runs) keep their exact behaviour and
//! byte-identical exports.
//!
//! **Determinism contract.** Whether a run is driven through
//! [`NoopRecorder`], a disabled [`Recorder`] or an enabled one must
//! never change the simulation itself: recording is write-only, no
//! control flow may read recorder state, and per-round digests are
//! computed for the comparator regardless of instrumentation. The
//! feature-matrix tests pin this by comparing run reports and journal
//! digest sequences across recorder types and build features.

use crate::journal::RoundEntry;
use crate::recorder::Recorder;
use crate::span::{SpanGuard, SpanRecord};
use crate::trace::Value;

/// The facade instrumented code is generic over.
///
/// Every method has a no-op default so sinks only override what they
/// keep. Hot paths should go through the `obs_*!` macros rather than
/// calling these directly: the macros skip argument construction when
/// [`Record::is_active`] is false, which is what makes disabled
/// instrumentation compile to nothing.
pub trait Record {
    /// `false` for recorder types that statically discard everything
    /// ([`NoopRecorder`]); lets generic code and the optimizer prune
    /// instrumentation branches at compile time.
    const ENABLED: bool = true;

    /// Whether emissions are currently kept. Constant `false` for
    /// [`NoopRecorder`]; the runtime enabled flag for [`Recorder`].
    #[inline]
    fn is_active(&self) -> bool {
        false
    }

    /// Add `n` to a counter.
    #[inline]
    fn count(&mut self, _name: &str, _n: u64) {}

    /// Increment a counter by one.
    #[inline]
    fn bump(&mut self, name: &str) {
        self.count(name, 1);
    }

    /// Set a gauge (last write wins).
    #[inline]
    fn gauge(&mut self, _name: &str, _v: f64) {}

    /// Raise a gauge to at least `v` (high-water marks).
    #[inline]
    fn gauge_max(&mut self, _name: &str, _v: f64) {}

    /// Record a numeric observation into a streaming summary.
    #[inline]
    fn observe(&mut self, _name: &str, _x: f64) {}

    /// Record a numeric observation into a first-class histogram
    /// (log-bucket counts; exact, order-invariant shard merges).
    #[inline]
    fn observe_hist(&mut self, _name: &str, _x: f64) {}

    /// Emit a trace event at simulated time `sim_time`.
    #[inline]
    fn event(
        &mut self,
        _sim_time: f64,
        _component: &'static str,
        _event: &'static str,
        _fields: Vec<(&'static str, Value)>,
    ) {
    }

    /// Open a span at simulated time `begin` on lane (tid) 0.
    #[inline]
    fn span(&mut self, component: &'static str, name: &'static str, begin: f64) -> SpanGuard {
        self.span_on(0, component, name, begin)
    }

    /// Open a span on an explicit hardware-thread lane.
    #[inline]
    fn span_on(
        &mut self,
        _tid: u32,
        _component: &'static str,
        _name: &'static str,
        _begin: f64,
    ) -> SpanGuard {
        SpanGuard::inert()
    }

    /// Close a span at simulated time `end`.
    #[inline]
    fn end_span(&mut self, guard: SpanGuard, end: f64) {
        self.end_span_with(guard, end, Vec::new());
    }

    /// Close a span, attaching key/value fields.
    #[inline]
    fn end_span_with(&mut self, _guard: SpanGuard, _end: f64, _fields: Vec<(&'static str, Value)>) {
    }

    /// Record an already-completed span directly.
    #[inline]
    fn record_span(&mut self, _record: SpanRecord) {}

    /// Fold per-phase span rollups into the registry (top level only).
    #[inline]
    fn rollup_spans(&mut self) {}

    /// Whether flight-recorder journal entries are being kept. The
    /// journal is runtime-gated (never feature-gated): replay and audit
    /// must work identically in every build configuration.
    #[inline]
    fn journal_enabled(&self) -> bool {
        false
    }

    /// Append one round entry to the journal.
    #[inline]
    fn journal_push(&mut self, _entry: RoundEntry) {}

    /// Stamp a terminal outcome (`masked` / `escaped`) onto the journal
    /// entry that injected fault `fault_id`. Engines call this once at
    /// end of run for faults that were never detected.
    #[inline]
    fn journal_resolve_fault(&mut self, _fault_id: u64, _outcome: &str) {}
}

/// The zero-sized sink: recording through it compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Record for NoopRecorder {
    const ENABLED: bool = false;
}

impl Record for Recorder {
    const ENABLED: bool = true;

    #[inline]
    fn is_active(&self) -> bool {
        self.is_enabled()
    }

    #[inline]
    fn count(&mut self, name: &str, n: u64) {
        Recorder::count(self, name, n);
    }

    #[inline]
    fn gauge(&mut self, name: &str, v: f64) {
        Recorder::gauge(self, name, v);
    }

    #[inline]
    fn gauge_max(&mut self, name: &str, v: f64) {
        Recorder::gauge_max(self, name, v);
    }

    #[inline]
    fn observe(&mut self, name: &str, x: f64) {
        Recorder::observe(self, name, x);
    }

    #[inline]
    fn observe_hist(&mut self, name: &str, x: f64) {
        Recorder::observe_hist(self, name, x);
    }

    #[inline]
    fn event(
        &mut self,
        sim_time: f64,
        component: &'static str,
        event: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        Recorder::event(self, sim_time, component, event, fields);
    }

    #[inline]
    fn span_on(
        &mut self,
        tid: u32,
        component: &'static str,
        name: &'static str,
        begin: f64,
    ) -> SpanGuard {
        Recorder::span_on(self, tid, component, name, begin)
    }

    #[inline]
    fn end_span_with(&mut self, guard: SpanGuard, end: f64, fields: Vec<(&'static str, Value)>) {
        Recorder::end_span_with(self, guard, end, fields);
    }

    #[inline]
    fn record_span(&mut self, record: SpanRecord) {
        Recorder::record_span(self, record);
    }

    #[inline]
    fn rollup_spans(&mut self) {
        Recorder::rollup_spans(self);
    }

    #[inline]
    fn journal_enabled(&self) -> bool {
        Recorder::journal_enabled(self)
    }

    #[inline]
    fn journal_push(&mut self, entry: RoundEntry) {
        Recorder::journal_push(self, entry);
    }

    #[inline]
    fn journal_resolve_fault(&mut self, fault_id: u64, outcome: &str) {
        Recorder::journal_resolve_fault(self, fault_id, outcome);
    }
}

/// Add to a counter iff the recorder is active; the name/value
/// expressions are not evaluated otherwise.
///
/// With the `obs` cargo feature off the macro expands to a never-run
/// closure: arguments still type-check, nothing executes.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_count {
    ($rec:expr, $name:expr, $n:expr) => {
        if $rec.is_active() {
            $rec.count($name, $n);
        }
    };
}

/// See the `obs`-enabled definition; this build compiles it out.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_count {
    ($rec:expr, $name:expr, $n:expr) => {
        let _ = || $rec.count($name, $n);
    };
}

/// Set a gauge iff the recorder is active (lazy arguments).
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_gauge {
    ($rec:expr, $name:expr, $v:expr) => {
        if $rec.is_active() {
            $rec.gauge($name, $v);
        }
    };
}

/// See the `obs`-enabled definition; this build compiles it out.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_gauge {
    ($rec:expr, $name:expr, $v:expr) => {
        let _ = || $rec.gauge($name, $v);
    };
}

/// Record a histogram observation iff the recorder is active (lazy
/// arguments).
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_hist {
    ($rec:expr, $name:expr, $x:expr) => {
        if $rec.is_active() {
            $rec.observe_hist($name, $x);
        }
    };
}

/// See the `obs`-enabled definition; this build compiles it out.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_hist {
    ($rec:expr, $name:expr, $x:expr) => {
        let _ = || $rec.observe_hist($name, $x);
    };
}

/// Emit a trace event iff the recorder is active. The field list is
/// written `key => value, …` and is only materialised (allocated) when
/// the event is actually kept.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_event {
    ($rec:expr, $t:expr, $comp:expr, $ev:expr $(, $k:expr => $v:expr)* $(,)?) => {
        if $rec.is_active() {
            $rec.event($t, $comp, $ev, vec![$(($k, $crate::Value::from($v))),*]);
        }
    };
}

/// See the `obs`-enabled definition; this build compiles it out.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_event {
    ($rec:expr, $t:expr, $comp:expr, $ev:expr $(, $k:expr => $v:expr)* $(,)?) => {
        let _ = || $rec.event($t, $comp, $ev, vec![$(($k, $crate::Value::from($v))),*]);
    };
}

/// Open a span (lane 0) iff the recorder is active; evaluates to a
/// [`SpanGuard`] (inert when inactive).
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_span {
    ($rec:expr, $comp:expr, $name:expr, $begin:expr) => {{
        if $rec.is_active() {
            $rec.span($comp, $name, $begin)
        } else {
            $crate::SpanGuard::inert()
        }
    }};
}

/// See the `obs`-enabled definition; this build compiles it out.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_span {
    ($rec:expr, $comp:expr, $name:expr, $begin:expr) => {{
        let _ = || $rec.span($comp, $name, $begin);
        $crate::SpanGuard::inert()
    }};
}

/// Open a span on an explicit lane iff the recorder is active.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_span_on {
    ($rec:expr, $tid:expr, $comp:expr, $name:expr, $begin:expr) => {{
        if $rec.is_active() {
            $rec.span_on($tid, $comp, $name, $begin)
        } else {
            $crate::SpanGuard::inert()
        }
    }};
}

/// See the `obs`-enabled definition; this build compiles it out.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_span_on {
    ($rec:expr, $tid:expr, $comp:expr, $name:expr, $begin:expr) => {{
        let _ = || $rec.span_on($tid, $comp, $name, $begin);
        $crate::SpanGuard::inert()
    }};
}

/// Close a span iff the recorder is active; trailing `key => value`
/// fields are only allocated when kept.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_end_span {
    ($rec:expr, $guard:expr, $end:expr $(, $k:expr => $v:expr)* $(,)?) => {
        if $rec.is_active() {
            $rec.end_span_with($guard, $end, vec![$(($k, $crate::Value::from($v))),*]);
        } else {
            let _ = $guard;
        }
    };
}

/// See the `obs`-enabled definition; this build compiles it out.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_end_span {
    ($rec:expr, $guard:expr, $end:expr $(, $k:expr => $v:expr)* $(,)?) => {
        // the never-called closure consumes (and thereby drops) the guard
        let _ = || $rec.end_span_with($guard, $end, vec![$(($k, $crate::Value::from($v))),*]);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit<R: Record>(rec: &mut R) {
        obs_count!(rec, "c", 2);
        obs_gauge!(rec, "g", 1.5);
        obs_hist!(rec, "h", 0.25);
        obs_event!(rec, 1.0, "t", "e", "round" => 3u64, "ok" => true);
        let g = obs_span!(rec, "t", "phase", 0.0);
        obs_end_span!(rec, g, 2.0, "n" => 1u64);
        let g2 = obs_span_on!(rec, 1, "t", "lane", 0.5);
        rec.end_span(g2, 1.0);
        rec.bump("c");
    }

    #[test]
    fn noop_recorder_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
        let mut rec = NoopRecorder;
        assert!(!rec.is_active());
        let enabled = <NoopRecorder as Record>::ENABLED;
        assert!(!enabled);
        emit(&mut rec); // must compile and do nothing
        assert!(!rec.journal_enabled());
    }

    #[test]
    fn concrete_recorder_keeps_macro_emissions() {
        let mut rec = Recorder::new();
        emit(&mut rec);
        if cfg!(feature = "obs") {
            assert_eq!(rec.registry().counter("c"), 3);
            assert_eq!(rec.registry().gauge_value("g"), Some(1.5));
            assert_eq!(rec.registry().histogram("h").unwrap().count(), 1);
            assert_eq!(rec.trace().len(), 1);
            assert_eq!(rec.spans().len(), 2);
        } else {
            // macro-emitted metrics/events/spans are compiled out;
            // direct trait/method calls (bump above) still work
            assert_eq!(rec.registry().counter("c"), 1);
            assert!(rec.trace().is_empty());
        }
    }

    #[test]
    fn disabled_recorder_skips_argument_construction() {
        // a disabled concrete recorder takes the inactive branch: the
        // field vectors are never built (observable only as "nothing
        // recorded", the cost is pinned by the benches)
        let mut rec = Recorder::disabled();
        emit(&mut rec);
        assert!(rec.registry().is_empty());
        assert!(rec.trace().is_empty());
        assert_eq!(rec.spans().len(), 0);
    }

    #[test]
    fn generic_run_matches_concrete_run() {
        // the same generic body drives both sinks without divergence
        fn body<R: Record>(rec: &mut R) -> u64 {
            let mut acc = 0;
            for i in 0..10u64 {
                acc += i;
                obs_count!(rec, "loop.iters", 1);
            }
            acc
        }
        let mut noop = NoopRecorder;
        let mut real = Recorder::new();
        assert_eq!(body(&mut noop), body(&mut real));
        let expect = if cfg!(feature = "obs") { 10 } else { 0 };
        assert_eq!(real.registry().counter("loop.iters"), expect);
    }
}
