//! Streaming observation summaries: Welford mean/variance plus
//! fixed-bucket percentiles.
//!
//! A [`Summary`] is the workhorse metric for numeric observations
//! (latencies, recovery times, per-trial measurements). It keeps
//!
//! * exact `count`, `min`, `max`,
//! * Welford-accumulated mean and M2 (numerically stable for long
//!   campaigns, unlike a naive `(sum, count)` pair),
//! * a sparse fixed-bucket log histogram for quantile estimates.
//!
//! Buckets are quarter-powers-of-two (`2^(k/4)`), so bucket boundaries are
//! a fixed global grid: merging two summaries adds bucket counts exactly,
//! and the merged quantile estimates are identical regardless of how the
//! observations were sharded. Mean/variance merging uses Chan et al.'s
//! pairwise combination; merge order must be fixed by the caller for
//! bit-reproducibility (see `vds-fault`'s logical shards).

use std::collections::BTreeMap;

/// Bucket key for non-positive observations (kept out of the log grid).
///
/// Shared by [`Summary`] and [`crate::histogram::Histogram`]: both kinds
/// bucket on the same global grid, so observations sharded across metric
/// kinds still land on identical boundaries.
pub(crate) const NONPOS_BUCKET: i32 = i32::MIN;

/// Grid bucket index for observation `x`: `k = ceil(4·log2(x))`, clamped
/// to `[-512, 512]`. Non-positive and non-finite observations map to
/// [`NONPOS_BUCKET`].
pub(crate) fn log_bucket_of(x: f64) -> i32 {
    if x <= 0.0 || !x.is_finite() {
        return NONPOS_BUCKET;
    }
    let k = (4.0 * x.log2()).ceil();
    k.clamp(-512.0, 512.0) as i32
}

/// Upper bound of grid bucket `k` (`2^(k/4)`); bucket `k` covers
/// `2^((k-1)/4) < x <= 2^(k/4)`.
pub(crate) fn log_bucket_hi(k: i32) -> f64 {
    (f64::from(k) / 4.0).exp2()
}

/// Streaming summary of a numeric observation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    /// Sparse histogram: bucket index `k` counts observations `x` with
    /// `2^((k-1)/4) < x <= 2^(k/4)`.
    buckets: BTreeMap<i32, u64>,
}

/// `Default` must agree with [`Summary::new`]: the registry materializes
/// summaries with `or_default()`, and a derived all-zeros default would
/// seed `min = max = 0.0`, silently folding `0.0` into the observed range
/// of every registry summary (wrong `min` for positive streams, wrong
/// `max` — and therefore a wrong quantile clamp — for negative ones).
impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
        }
    }

    /// Build from an iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(it: I) -> Self {
        let mut s = Self::new();
        for x in it {
            s.observe(x);
        }
        s
    }

    fn bucket_of(x: f64) -> i32 {
        log_bucket_of(x)
    }

    /// Upper bound of bucket `k` (`2^(k/4)`).
    fn bucket_hi(k: i32) -> f64 {
        log_bucket_hi(k)
    }

    /// Record one observation.
    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        *self.buckets.entry(Self::bucket_of(x)).or_insert(0) += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations (mean × count; exactness not guaranteed).
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Estimated p-quantile (`0 <= p <= 1`) from the fixed bucket grid.
    ///
    /// **Convention** (shared with `Histogram::quantile`): the estimate is
    /// the *upper bound* `2^(k/4)` of the grid bucket holding the
    /// `ceil(p·n)`-th smallest observation, clamped into the observed
    /// `[min, max]`. Pinned consequences:
    ///
    /// * a single-observation summary returns that observation for every
    ///   `p` — the clamp collapses the bucket bound onto `min == max`;
    /// * observations sharing one bucket share one quantile estimate (the
    ///   grid cannot resolve within a bucket);
    /// * the non-positive bucket (which the log grid cannot resolve)
    ///   reports `min(min, 0)`;
    /// * the estimate never leaves `[min(min, 0), max]` (asserted below).
    ///
    /// `None` when empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range");
        if self.n == 0 {
            return None;
        }
        let target = ((p * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut cum = 0u64;
        let mut q = self.max;
        for (&k, &c) in &self.buckets {
            cum += c;
            if cum >= target {
                q = if k == NONPOS_BUCKET {
                    self.min.min(0.0)
                } else {
                    Self::bucket_hi(k).clamp(self.min, self.max)
                };
                break;
            }
        }
        debug_assert!(
            q >= self.min.min(0.0) && q <= self.max,
            "quantile estimate {q} escapes the observed range [{}, {}]",
            self.min.min(0.0),
            self.max
        );
        Some(q)
    }

    /// Merge another summary into this one. Bucket counts add exactly;
    /// mean/variance combine pairwise (order-sensitive in the last ulps —
    /// merge in a fixed order for bit-reproducibility).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.n == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} p50={:.6} p99={:.6} max={:.6}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.quantile(0.5).unwrap(),
            self.quantile(0.99).unwrap(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::from_iter(xs.iter().copied());
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn single_observation_percentiles_equal_the_value() {
        for v in [42.5, -3.0, 0.0, 1e-9, 7e12] {
            let s = Summary::from_iter([v]);
            assert_eq!(s.quantile(0.5), Some(v), "p50 of single obs {v}");
            assert_eq!(s.quantile(0.99), Some(v), "p99 of single obs {v}");
            assert_eq!(s.min(), v);
            assert_eq!(s.max(), v);
        }
    }

    #[test]
    fn single_observation_default_summary_reports_the_bucket_bound() {
        // The registry path materializes summaries with `or_default()`;
        // that must behave exactly like `Summary::new()` so one
        // observation pins min == p50 == p99 == max to the value itself
        // (the clamp collapses the bucket upper bound onto min == max).
        let mut s = Summary::default();
        s.observe(12.5);
        assert_eq!(s.min(), 12.5);
        assert_eq!(s.max(), 12.5);
        assert_eq!(s.quantile(0.5), Some(12.5));
        assert_eq!(s.quantile(0.99), Some(12.5));
        // and a lone negative observation must not pull max up to 0
        let mut s = Summary::default();
        s.observe(-3.25);
        assert_eq!(s.max(), -3.25);
        assert_eq!(s.quantile(0.99), Some(-3.25));
    }

    #[test]
    fn quantile_returns_the_bucket_upper_bound_clamped() {
        // 3.2 and 3.3 share grid bucket k = 7 (upper bound 2^(7/4)
        // ≈ 3.364): both quantiles report that bound clamped to max.
        let s = Summary::from_iter([3.2, 3.3]);
        assert_eq!(s.quantile(0.5), Some(3.3));
        assert_eq!(s.quantile(0.99), Some(3.3));
        // distinct buckets: 1.0 sits exactly on its bucket bound (k = 0),
        // 30.0 lands in k = 20 whose bound 32 clamps down to max.
        let s = Summary::from_iter([1.0, 30.0]);
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(30.0));
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let s = Summary::from_iter((1..=1000).map(f64::from));
        let p50 = s.quantile(0.5).unwrap();
        // bucket grid is 2^(1/4)-spaced: ~19% relative resolution
        assert!((400.0..=650.0).contains(&p50), "p50 = {p50}");
        let p100 = s.quantile(1.0).unwrap();
        assert!(p100 >= 999.0);
        assert_eq!(s.quantile(0.0).unwrap(), 1.0);
    }

    #[test]
    fn merge_matches_sequential_counts_exactly() {
        let xs: Vec<f64> = (0..500)
            .map(|i| (f64::from(i) * 0.37).sin().abs() * 100.0)
            .collect();
        let whole = Summary::from_iter(xs.iter().copied());
        let mut a = Summary::from_iter(xs[..123].iter().copied());
        let b = Summary::from_iter(xs[123..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.buckets, whole.buckets);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9 * (1.0 + whole.variance()));
        assert_eq!(a.quantile(0.9), whole.quantile(0.9));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_iter([1.0, 2.0, 3.0]);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn nonpositive_observations_survive() {
        let s = Summary::from_iter([-5.0, 0.0, 3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), -5.0);
        assert!(s.quantile(0.1).unwrap() <= 0.0);
    }
}
