//! Live telemetry: a publisher hub and a zero-dependency HTTP server.
//!
//! Long-running commands (`vds serve`) publish periodic snapshots of
//! their metric registry into a [`TelemetryHub`]; a [`TelemetryServer`]
//! on a plain [`std::net::TcpListener`] serves them over HTTP/1.1:
//!
//! | endpoint    | content |
//! |-------------|---------|
//! | `/metrics`  | Prometheus text exposition of the latest registry snapshot ([`crate::prom`]) |
//! | `/healthz`  | liveness: `200 ok` while the process runs |
//! | `/readyz`   | readiness: `200` once the campaign is configured, `503` before |
//! | `/trace`    | Chrome trace-event JSON of the latest published [`SpanSet`] |
//! | `/progress` | JSON snapshot: trial/shard completion, work units per second, full metrics |
//! | `/journal`  | flight-recorder journal JSONL (for `vds replay` / `vds audit diff` / `vds conformance`) |
//! | `/conformance` | the last published predicted-vs-measured G residual report (JSON) |
//! | `/faults`   | the last published per-fault lifecycle forensics report (JSON) |
//! | `/alpha`    | the last published α-attribution interference ledger report (JSON) |
//! | `/`         | plain-text index of the above |
//!
//! **Determinism contract.** The hub is strictly write-through from the
//! simulation's point of view: publishers hand it *copies* (merged under
//! a lock the simulation never holds during computation), readers only
//! read, and nothing ever flows back. Attaching or detaching a server —
//! or scraping it at any rate — cannot change a single exported byte;
//! `crates/cli/tests/serve_telemetry.rs` pins that with a byte-identity
//! test. Wall-clock (`elapsed_secs`, `work_units_per_sec`) appears only
//! in `/progress`, quarantined exactly like the registry's host section.

use crate::journal::Journal;
use crate::prom;
use crate::registry::Registry;
use crate::span::SpanSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Mutable snapshot state behind the hub's lock.
struct HubState {
    phase: String,
    registry: Registry,
    trace_json: String,
    journal_jsonl: String,
    journal_summary: String,
    conformance_json: String,
    faults_json: String,
    alpha_json: String,
}

/// The publisher/reader rendezvous: campaigns merge snapshots in,
/// the HTTP server renders them out.
pub struct TelemetryHub {
    start: Instant,
    ready: AtomicBool,
    done: AtomicBool,
    trials_total: AtomicU64,
    trials_done: AtomicU64,
    shards_total: AtomicU64,
    shards_done: AtomicU64,
    state: RwLock<HubState>,
}

impl TelemetryHub {
    /// A fresh hub (not ready, nothing published).
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<TelemetryHub> {
        Arc::new(TelemetryHub {
            start: Instant::now(),
            ready: AtomicBool::new(false),
            done: AtomicBool::new(false),
            trials_total: AtomicU64::new(0),
            trials_done: AtomicU64::new(0),
            shards_total: AtomicU64::new(0),
            shards_done: AtomicU64::new(0),
            state: RwLock::new(HubState {
                phase: "idle".to_string(),
                registry: Registry::new(),
                trace_json: SpanSet::default().to_chrome_json(),
                journal_jsonl: String::new(),
                journal_summary: Journal::default().summary_json(),
                conformance_json: String::new(),
                faults_json: String::new(),
                alpha_json: String::new(),
            }),
        })
    }

    /// Mark the process ready to serve meaningful answers (`/readyz`).
    pub fn mark_ready(&self) {
        self.ready.store(true, Ordering::Release);
    }

    /// Whether `/readyz` answers 200.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Mark the campaign finished (`/progress` reports `done: true`).
    pub fn mark_done(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// Whether the campaign has finished.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Configure a new campaign phase: its name and the totals progress
    /// is counted against. Resets the done-counters, keeps the registry.
    pub fn begin_campaign(&self, phase: &str, trials_total: u64, shards_total: u64) {
        self.trials_total.store(trials_total, Ordering::Relaxed);
        self.shards_total.store(shards_total, Ordering::Relaxed);
        self.trials_done.store(0, Ordering::Relaxed);
        self.shards_done.store(0, Ordering::Relaxed);
        self.done.store(false, Ordering::Release);
        self.state.write().unwrap_or_else(|e| e.into_inner()).phase = phase.to_string();
    }

    /// One trial finished (called from worker threads; lock-free).
    pub fn trial_done(&self) {
        self.trials_done.fetch_add(1, Ordering::Relaxed);
    }

    /// One logical shard finished (called from worker threads).
    pub fn shard_done(&self) {
        self.shards_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge a registry delta into the live snapshot. Publishers hand in
    /// *copies*; merge order here follows completion order, which is fine
    /// for a live view — the canonical export still merges in shard
    /// order on the simulation side.
    pub fn merge_registry(&self, delta: &Registry) {
        self.state
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .registry
            .merge(delta);
    }

    /// Replace the snapshot with the canonical end-of-run registry.
    pub fn replace_registry(&self, canonical: Registry) {
        self.state
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .registry = canonical;
    }

    /// Publish the latest profiler spans (`/trace` serves this rendering).
    pub fn publish_spans(&self, spans: &SpanSet) {
        self.state
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .trace_json = spans.to_chrome_json();
    }

    /// Publish a flight-recorder journal: `/journal` serves its JSONL
    /// rendering, and `/progress` carries its summary block. Like every
    /// other hub publication this is a copy — scraping it cannot perturb
    /// the recording.
    pub fn publish_journal(&self, journal: &Journal) {
        let mut st = self.state.write().unwrap_or_else(|e| e.into_inner());
        st.journal_jsonl = journal.to_jsonl();
        st.journal_summary = journal.summary_json();
    }

    /// Publish a model-conformance report (the `vds conformance` JSON
    /// form); `/conformance` serves it verbatim.
    pub fn publish_conformance(&self, json: String) {
        self.state
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .conformance_json = json;
    }

    /// The `/conformance` body: the last published conformance report
    /// JSON (empty until one is published).
    pub fn conformance_json(&self) -> String {
        self.state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .conformance_json
            .clone()
    }

    /// Publish a fault-forensics report (the `vds faults` JSON form);
    /// `/faults` serves it verbatim.
    pub fn publish_faults(&self, json: String) {
        self.state
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .faults_json = json;
    }

    /// The `/faults` body: the last published fault-forensics report
    /// JSON (empty until one is published).
    pub fn faults_json(&self) -> String {
        self.state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .faults_json
            .clone()
    }

    /// Publish an α-attribution ledger report (the `vds alpha` JSON
    /// form); `/alpha` serves it verbatim.
    pub fn publish_alpha(&self, json: String) {
        self.state
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .alpha_json = json;
    }

    /// The `/alpha` body: the last published α-attribution report JSON
    /// (empty until one is published).
    pub fn alpha_json(&self) -> String {
        self.state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .alpha_json
            .clone()
    }

    /// The `/journal` body: JSONL of the last published journal (empty
    /// until one is published).
    pub fn journal_jsonl(&self) -> String {
        self.state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .journal_jsonl
            .clone()
    }

    /// A copy of the current registry snapshot.
    pub fn registry_snapshot(&self) -> Registry {
        self.state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .registry
            .clone()
    }

    /// Seconds since the hub was created (host wall-clock).
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// The `/metrics` body: Prometheus text exposition of the snapshot.
    /// A pure function of published registry content — byte-stable for a
    /// fixed seed once the final snapshot is in.
    pub fn metrics_text(&self) -> String {
        prom::render(
            &self
                .state
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .registry,
        )
    }

    /// The `/trace` body: Chrome trace-event JSON of the latest spans.
    pub fn trace_json(&self) -> String {
        self.state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .trace_json
            .clone()
    }

    /// The `/progress` body: campaign completion, throughput and the full
    /// metric snapshot (same [`Registry::to_json_object`] serializer as
    /// `vds stats --json`).
    pub fn progress_json(&self) -> String {
        let st = self.state.read().unwrap_or_else(|e| e.into_inner());
        let work_units: u64 = st.registry.counters().map(|(_, v)| v).sum();
        let elapsed = self.elapsed_secs();
        let rate = if elapsed > 0.0 {
            work_units as f64 / elapsed
        } else {
            0.0
        };
        crate::JsonObj::report("progress")
            .str("phase", &st.phase)
            .bool("ready", self.is_ready())
            .bool("done", self.is_done())
            .f64_fixed("elapsed_secs", elapsed, 3)
            .u64("trials_done", self.trials_done.load(Ordering::Relaxed))
            .u64("trials_total", self.trials_total.load(Ordering::Relaxed))
            .u64("shards_done", self.shards_done.load(Ordering::Relaxed))
            .u64("shards_total", self.shards_total.load(Ordering::Relaxed))
            .u64("work_units", work_units)
            .f64_fixed("work_units_per_sec", rate, 3)
            .raw("journal", &st.journal_summary)
            .raw("metrics", &st.registry.to_json_object())
            .finish()
    }
}

/// The HTTP/1.1 telemetry server: one background thread accepting on a
/// [`TcpListener`], answering every request from the hub and closing the
/// connection. Requests are tiny and handled inline; there is no
/// keep-alive, no routing table, no dependency.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9898"`; port 0 picks an ephemeral
    /// port — read it back with [`TelemetryServer::local_addr`]) and
    /// start serving `hub` on a background thread.
    pub fn bind(addr: &str, hub: Arc<TelemetryHub>) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("vds-telemetry".to_string())
            .spawn(move || accept_loop(listener, hub, stop2))?;
        Ok(TelemetryServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the accept loop and join the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Backlogged connections served after the stop flag flips before the
/// socket closes. Bounds the drain so a scrape flood cannot stall
/// shutdown; anything beyond it gets the ordinary connection reset.
const SHUTDOWN_DRAIN_MAX: usize = 64;

fn accept_loop(listener: TcpListener, hub: Arc<TelemetryHub>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => handle_conn(stream, &hub),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // A scrape whose TCP handshake completed before the stop flag
    // flipped is sitting in the listen backlog; dropping the listener
    // now would reset it after its request was sent. Drain the backlog
    // with complete responses, then close — later connects get a clean
    // refusal at the TCP layer, never a half-written body.
    for _ in 0..SHUTDOWN_DRAIN_MAX {
        match listener.accept() {
            Ok((stream, _)) => handle_conn(stream, &hub),
            Err(_) => break,
        }
    }
}

const TEXT: &str = "text/plain; charset=utf-8";
const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
const JSON: &str = "application/json";

const INDEX: &str = "vds telemetry\n\
                     GET /metrics   Prometheus text exposition\n\
                     GET /healthz   liveness\n\
                     GET /readyz    readiness\n\
                     GET /trace     Chrome trace-event JSON (open in ui.perfetto.dev)\n\
                     GET /progress  campaign progress JSON\n\
                     GET /journal   flight-recorder journal (JSONL; for `vds replay` / `vds audit diff`)\n\
                     GET /conformance  predicted-vs-measured G residual report (JSON)\n\
                     GET /faults    per-fault lifecycle forensics report (JSON)\n\
                     GET /alpha     α-attribution interference ledger report (JSON)\n";

fn handle_conn(mut stream: TcpStream, hub: &TelemetryHub) {
    // Accepted sockets do not reliably inherit blocking mode.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(800)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let req = String::from_utf8_lossy(&head);
    let mut parts = req.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or("");
    let (status, ctype, body) = route(method, path, hub);
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn route(method: &str, path: &str, hub: &TelemetryHub) -> (u16, &'static str, String) {
    if method != "GET" {
        return (405, TEXT, "method not allowed\n".to_string());
    }
    match path {
        "/metrics" => (200, PROM, hub.metrics_text()),
        "/healthz" => (200, TEXT, "ok\n".to_string()),
        "/readyz" => {
            if hub.is_ready() {
                (200, TEXT, "ready\n".to_string())
            } else {
                (503, TEXT, "starting\n".to_string())
            }
        }
        "/trace" => (200, JSON, hub.trace_json()),
        "/progress" => (200, JSON, hub.progress_json()),
        "/journal" => (200, TEXT, hub.journal_jsonl()),
        "/conformance" => {
            let body = hub.conformance_json();
            if body.is_empty() {
                (404, TEXT, "no conformance report published\n".to_string())
            } else {
                (200, JSON, body)
            }
        }
        "/faults" => {
            let body = hub.faults_json();
            if body.is_empty() {
                (
                    404,
                    TEXT,
                    "no fault forensics report published\n".to_string(),
                )
            } else {
                (200, JSON, body)
            }
        }
        "/alpha" => {
            let body = hub.alpha_json();
            if body.is_empty() {
                (404, TEXT, "no alpha report published\n".to_string())
            } else {
                (200, JSON, body)
            }
        }
        "/" => (200, TEXT, INDEX.to_string()),
        _ => (404, TEXT, "not found\n".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let status: u16 = resp
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .unwrap();
        let body = resp
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn endpoints_roundtrip() {
        let hub = TelemetryHub::new();
        let mut r = Registry::new();
        r.count("vds.detections", 3);
        r.gauge("smt.thread0.ipc", 1.5);
        hub.merge_registry(&r);
        hub.begin_campaign("test", 10, 4);
        let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.local_addr();

        let (st, body) = get(addr, "/healthz");
        assert_eq!((st, body.as_str()), (200, "ok\n"));

        // not ready yet
        let (st, _) = get(addr, "/readyz");
        assert_eq!(st, 503);
        hub.mark_ready();
        let (st, body) = get(addr, "/readyz");
        assert_eq!((st, body.as_str()), (200, "ready\n"));

        let (st, body) = get(addr, "/metrics");
        assert_eq!(st, 200);
        assert!(
            body.contains("# TYPE vds_detections_total counter"),
            "{body}"
        );
        assert!(body.contains("vds_detections_total 3"), "{body}");
        assert!(body.contains("smt_thread0_ipc 1.5"), "{body}");

        let (st, body) = get(addr, "/progress");
        assert_eq!(st, 200);
        assert!(body.contains("\"phase\":\"test\""), "{body}");
        assert!(body.contains("\"trials_total\":10"), "{body}");
        assert!(body.contains("\"work_units\":3"), "{body}");
        assert!(
            body.contains("\"counters\":{\"vds.detections\":3}"),
            "{body}"
        );
        // journal block present even before a journal is published
        assert!(
            body.contains(
                "\"journal\":{\"rounds\":0,\"bytes\":0,\"divergences\":0,\"last_divergence\":null}"
            ),
            "{body}"
        );

        // /journal is empty until published, then serves the JSONL
        let (st, body) = get(addr, "/journal");
        assert_eq!((st, body.as_str()), (200, ""));
        let mut j = Journal::enabled(crate::JournalHeader::new("micro", "smt-prob", 1, 10, 2));
        j.push(crate::RoundEntry {
            seq: 0,
            lane: 0,
            round: 1,
            committed: 1,
            sim_time: 0.5,
            d1: crate::digest_words128(&[1]),
            d2: crate::digest_words128(&[1]),
            verdict: crate::journal::Verdict::Match,
            sched: "coschedule[v1,v2]".to_string(),
            action: crate::journal::Action::Commit,
            rollforward: 0,
            fault: None,
            fault_id: None,
            fault_outcome: None,
        });
        hub.publish_journal(&j);
        let (st, body) = get(addr, "/journal");
        assert_eq!(st, 200);
        assert_eq!(body, j.to_jsonl());
        let (_, body) = get(addr, "/progress");
        assert!(body.contains("\"journal\":{\"rounds\":1,"), "{body}");

        let (st, body) = get(addr, "/trace");
        assert_eq!(st, 200);
        assert!(body.starts_with("{\"traceEvents\":["), "{body}");

        // /faults 404s until a forensics report is published, then
        // serves the published JSON verbatim
        let (st, _) = get(addr, "/faults");
        assert_eq!(st, 404);
        let faults = "{\"schema\":\"vds.report.v1\",\"kind\":\"faults\"}".to_string();
        hub.publish_faults(faults.clone());
        let (st, body) = get(addr, "/faults");
        assert_eq!((st, body), (200, faults));

        // /alpha has the same publish-then-verbatim contract
        let (st, body) = get(addr, "/alpha");
        assert_eq!(st, 404);
        assert_eq!(body, "no alpha report published\n");
        let alpha = "{\"schema\":\"vds.report.v1\",\"kind\":\"alpha\"}".to_string();
        hub.publish_alpha(alpha.clone());
        let (st, body) = get(addr, "/alpha");
        assert_eq!((st, body), (200, alpha));

        let (st, _) = get(addr, "/nope");
        assert_eq!(st, 404);
        let (st, body) = get(addr, "/");
        assert_eq!(st, 200);
        assert!(body.contains("/metrics"), "{body}");

        // POST is refused
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");

        server.shutdown();
        // the port is released: a fresh bind to the same address works
        let again = TcpListener::bind(addr);
        assert!(again.is_ok());
    }

    #[test]
    fn shutdown_never_tears_an_inflight_scrape() {
        // A scrape racing shutdown — connected (so at worst queued in
        // the listen backlog) before stop flips — must receive the
        // complete declared body; afterwards new connects are refused
        // at the TCP layer. Iterate to hit both sides of the race.
        for _ in 0..20 {
            let hub = TelemetryHub::new();
            hub.mark_ready();
            let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
            let addr = server.local_addr();
            let mut s = TcpStream::connect(addr).unwrap();
            write!(
                s,
                "GET /progress HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            )
            .unwrap();
            server.shutdown();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            let (head, body) = resp.split_once("\r\n\r\n").expect("complete header");
            let declared: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("content-length")
                .parse()
                .unwrap();
            assert_eq!(body.len(), declared, "torn body: {resp}");
            assert!(TcpStream::connect(addr).is_err(), "socket still open");
        }
    }

    #[test]
    fn progress_counts_and_done_flag() {
        let hub = TelemetryHub::new();
        hub.begin_campaign("phase-one", 100, 8);
        for _ in 0..5 {
            hub.trial_done();
        }
        hub.shard_done();
        let p = hub.progress_json();
        assert!(p.contains("\"trials_done\":5"), "{p}");
        assert!(p.contains("\"shards_done\":1"), "{p}");
        assert!(p.contains("\"done\":false"), "{p}");
        hub.mark_done();
        assert!(hub.progress_json().contains("\"done\":true"));
        // a new phase resets the counters but keeps the registry
        let mut r = Registry::new();
        r.count("kept", 1);
        hub.merge_registry(&r);
        hub.begin_campaign("phase-two", 7, 2);
        let p = hub.progress_json();
        assert!(p.contains("\"phase\":\"phase-two\""), "{p}");
        assert!(p.contains("\"trials_done\":0"), "{p}");
        assert!(p.contains("\"kept\":1"), "{p}");
    }
}
