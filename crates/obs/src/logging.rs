//! Leveled structured-logging facade: JSON lines on stderr.
//!
//! The simulation's *results* flow through the deterministic exporters;
//! everything a human or a log collector needs to know about the
//! *process* (dropped trace records, server lifecycle, campaign
//! milestones) goes through this facade instead of ad-hoc `eprintln!`.
//! One line per event, machine-parseable:
//!
//! ```text
//! {"ts":1722945600.123,"level":"warn","component":"cli","msg":"trace records dropped","dropped":40,"capacity":8}
//! ```
//!
//! The threshold is process-global: set it with [`set_level`] /
//! [`set_level_str`] (the CLI's `--log-level` flag) or [`init_from_env`]
//! (the `VDS_LOG` environment variable: `off`, `error`, `warn`, `info`,
//! `debug`). Default: `info`. Logging never touches stdout and never
//! feeds back into registries, so exports stay byte-deterministic no
//! matter how chatty the process is.
//!
//! Use the [`crate::log_error!`], [`crate::log_warn!`],
//! [`crate::log_info!`] and [`crate::log_debug!`] macros for plain
//! messages, or [`log_with`] to attach structured fields. Tests capture
//! output with [`capture`].

use crate::registry::json_escape;
use crate::trace::Value;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process cannot do what it was asked to.
    Error,
    /// Results are fine but something needs operator attention.
    Warn,
    /// Lifecycle milestones (server started, campaign finished).
    Info,
    /// High-volume diagnostics.
    Debug,
}

impl Level {
    /// Lower-case name used in the JSON `level` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Threshold encoding: number of enabled levels (0 = off … 4 = debug).
static THRESHOLD: AtomicU8 = AtomicU8::new(3); // info

/// Enable levels up to and including `level`; `None` disables logging.
pub fn set_level(level: Option<Level>) {
    let t = match level {
        None => 0,
        Some(l) => l as u8 + 1,
    };
    THRESHOLD.store(t, Ordering::Relaxed);
}

/// Parse and apply a level name (`off`, `error`, `warn`, `info`,
/// `debug`); returns an error message for anything else.
pub fn set_level_str(s: &str) -> Result<(), String> {
    match s.to_ascii_lowercase().as_str() {
        "off" | "none" => set_level(None),
        "error" => set_level(Some(Level::Error)),
        "warn" | "warning" => set_level(Some(Level::Warn)),
        "info" => set_level(Some(Level::Info)),
        "debug" => set_level(Some(Level::Debug)),
        other => {
            return Err(format!(
                "unknown log level `{other}` (expected off, error, warn, info or debug)"
            ))
        }
    }
    Ok(())
}

/// Apply the `VDS_LOG` environment variable, if set and valid.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("VDS_LOG") {
        let _ = set_level_str(&v);
    }
}

/// Whether a message at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    (level as u8) < THRESHOLD.load(Ordering::Relaxed)
}

/// Emit a plain message. Prefer the `log_*!` macros at call sites.
pub fn log(level: Level, component: &str, msg: &str) {
    log_with(level, component, msg, &[]);
}

/// Emit a message with structured fields appended to the JSON object.
pub fn log_with(level: Level, component: &str, msg: &str, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let mut line = format!(
        "{{\"ts\":{ts:.3},\"level\":\"{}\",\"component\":\"{}\",\"msg\":\"{}\"",
        level.as_str(),
        json_escape(component),
        json_escape(msg)
    );
    for (k, v) in fields {
        line.push_str(&format!(",\"{}\":{}", json_escape(k), v.to_json()));
    }
    line.push('}');
    let mut cap = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
    match cap.as_mut() {
        Some(buf) => {
            buf.push_str(&line);
            buf.push('\n');
        }
        None => eprintln!("{line}"),
    }
}

/// While a [`Capture`] is live, log lines accumulate here instead of
/// going to stderr.
static CAPTURE: Mutex<Option<String>> = Mutex::new(None);

/// Serializes concurrent tests that capture; logging itself never waits
/// on this.
static CAPTURE_GATE: Mutex<()> = Mutex::new(());

/// An active log capture (see [`capture`]). Dropping it restores stderr
/// output.
pub struct Capture {
    _gate: MutexGuard<'static, ()>,
}

impl Capture {
    /// Stop capturing and return everything logged since [`capture`].
    pub fn take(self) -> String {
        CAPTURE
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .unwrap_or_default()
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        *CAPTURE.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Redirect log output into a buffer until the returned guard is dropped
/// (or [`Capture::take`]n). Captures are process-global; concurrent
/// callers serialize on an internal lock, so tests can use this safely.
pub fn capture() -> Capture {
    let gate = CAPTURE_GATE.lock().unwrap_or_else(|e| e.into_inner());
    *CAPTURE.lock().unwrap_or_else(|e| e.into_inner()) = Some(String::new());
    Capture { _gate: gate }
}

/// Log at [`Level::Error`]: `log_error!("component", "format {}", args)`.
#[macro_export]
macro_rules! log_error {
    ($component:expr, $($fmt:tt)+) => {
        $crate::logging::log($crate::logging::Level::Error, $component, &format!($($fmt)+))
    };
}

/// Log at [`Level::Warn`]: `log_warn!("component", "format {}", args)`.
#[macro_export]
macro_rules! log_warn {
    ($component:expr, $($fmt:tt)+) => {
        $crate::logging::log($crate::logging::Level::Warn, $component, &format!($($fmt)+))
    };
}

/// Log at [`Level::Info`]: `log_info!("component", "format {}", args)`.
#[macro_export]
macro_rules! log_info {
    ($component:expr, $($fmt:tt)+) => {
        $crate::logging::log($crate::logging::Level::Info, $component, &format!($($fmt)+))
    };
}

/// Log at [`Level::Debug`]: `log_debug!("component", "format {}", args)`.
#[macro_export]
macro_rules! log_debug {
    ($component:expr, $($fmt:tt)+) => {
        $crate::logging::log($crate::logging::Level::Debug, $component, &format!($($fmt)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_filter_and_lines_are_jsonl() {
        let cap = capture();
        set_level(Some(Level::Info));
        crate::log_warn!("test", "dropped {} records", 40);
        log_with(
            Level::Info,
            "test",
            "with fields",
            &[("count", 7u64.into()), ("label", "a\"b".into())],
        );
        crate::log_debug!("test", "should be filtered");
        let out = cap.take();
        assert_eq!(out.lines().count(), 2, "{out}");
        assert!(out.contains("\"level\":\"warn\""), "{out}");
        assert!(out.contains("\"msg\":\"dropped 40 records\""), "{out}");
        assert!(out.contains("\"count\":7"), "{out}");
        assert!(out.contains("\"label\":\"a\\\"b\""), "{out}");
        assert!(!out.contains("filtered"), "{out}");
        for line in out.lines() {
            assert!(
                line.starts_with("{\"ts\":") && line.ends_with('}'),
                "{line}"
            );
        }
    }

    #[test]
    fn off_disables_everything_and_env_parsing_rejects_garbage() {
        let cap = capture();
        set_level(None);
        crate::log_error!("test", "silence");
        assert!(!enabled(Level::Error));
        set_level(Some(Level::Debug));
        assert!(enabled(Level::Debug));
        assert!(set_level_str("warn").is_ok());
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(set_level_str("loud").is_err());
        let out = cap.take();
        assert!(!out.contains("silence"), "{out}");
        // restore the default so other tests keep their expectations
        set_level(Some(Level::Info));
    }
}
