//! Bounded structured event trace.
//!
//! A [`Trace`] is a ring buffer of `(sim_time, component, event, fields)`
//! records. Components emit one record per interesting state transition
//! (round committed, fault detected, checkpoint written, …); the buffer
//! keeps the most recent `capacity` records and counts what it dropped,
//! so tracing is always-on without unbounded memory. Content is
//! deterministic for a fixed seed: record order follows emission order,
//! which in this codebase follows simulated time.

use crate::registry::{fmt_f64, json_escape};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// A field value attached to a trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Short string (outcome names, labels).
    Str(&'static str),
    /// Owned string (runtime-built labels, e.g. timeline annotations).
    Owned(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Owned(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Str(if v { "true" } else { "false" })
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{}", fmt_f64(*v)),
            Value::Str(v) => write!(f, "{v}"),
            Value::Owned(v) => write!(f, "{v}"),
        }
    }
}

impl Value {
    pub(crate) fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) if v.is_finite() => format!("{v}"),
            Value::F64(v) => format!("\"{}\"", fmt_f64(*v)),
            Value::Str(v) => format!("\"{}\"", json_escape(v)),
            Value::Owned(v) => format!("\"{}\"", json_escape(v)),
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulated time of the event (abstract units or cycles-as-f64,
    /// matching the emitting backend).
    pub sim_time: f64,
    /// Emitting component, e.g. `"core"`, `"campaign"`.
    pub component: &'static str,
    /// Event name, e.g. `"round_committed"`.
    pub event: &'static str,
    /// Ordered key/value payload.
    pub fields: Vec<(&'static str, Value)>,
}

/// Bounded event trace (ring buffer).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Trace keeping at most `capacity` records (0 disables recording).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted (or discarded while disabled) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append another trace's records (used when a sub-run's trace is
    /// folded into the parent's).
    pub fn extend_from(&mut self, other: &Trace) {
        self.dropped += other.dropped;
        for r in other.records() {
            self.push(r.clone());
        }
    }

    /// JSON-lines export: one object per record, preceded by a header
    /// object with the drop count.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"kind\":\"trace_header\",\"records\":{},\"dropped\":{}}}",
            self.records.len(),
            self.dropped
        );
        for r in &self.records {
            let _ = write!(
                out,
                "{{\"t\":{},\"component\":\"{}\",\"event\":\"{}\"",
                if r.sim_time.is_finite() {
                    format!("{}", r.sim_time)
                } else {
                    format!("\"{}\"", fmt_f64(r.sim_time))
                },
                json_escape(r.component),
                json_escape(r.event)
            );
            for (k, v) in &r.fields {
                let _ = write!(out, ",\"{}\":{}", json_escape(k), v.to_json());
            }
            out.push_str("}\n");
        }
        out
    }
}

impl std::fmt::Display for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "  trace: {} records ({} dropped)",
            self.records.len(),
            self.dropped
        )?;
        for r in &self.records {
            write!(
                f,
                "  [{:>12.3}] {:<10} {:<24}",
                r.sim_time, r.component, r.event
            )?;
            for (k, v) in &r.fields {
                write!(f, " {k}={v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64, event: &'static str) -> TraceRecord {
        TraceRecord {
            sim_time: t,
            component: "test",
            event,
            fields: vec![("k", Value::U64(1))],
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut tr = Trace::with_capacity(3);
        for i in 0..5 {
            tr.push(rec(f64::from(i), "e"));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let times: Vec<f64> = tr.records().map(|r| r.sim_time).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn zero_capacity_discards() {
        let mut tr = Trace::with_capacity(0);
        tr.push(rec(1.0, "e"));
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 1);
    }

    #[test]
    fn jsonl_shape() {
        let mut tr = Trace::with_capacity(8);
        tr.push(TraceRecord {
            sim_time: 1.5,
            component: "core",
            event: "round_committed",
            fields: vec![("round", Value::U64(3)), ("ok", Value::Str("yes"))],
        });
        let j = tr.to_jsonl();
        assert!(j.starts_with("{\"kind\":\"trace_header\""));
        assert!(j.contains("\"t\":1.5"));
        assert!(j.contains("\"round\":3"));
        assert!(j.contains("\"ok\":\"yes\""));
        assert_eq!(j.lines().count(), 2);
    }

    #[test]
    fn extend_from_folds() {
        let mut a = Trace::with_capacity(4);
        a.push(rec(1.0, "a"));
        let mut b = Trace::with_capacity(4);
        b.push(rec(2.0, "b"));
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }
}
