//! First-class histogram metric: sparse log-bucket counts with an exact,
//! order-invariant merge and Prometheus-style cumulative exposition.
//!
//! A [`Histogram`] generalizes the bucket grid of
//! [`Summary`](crate::summary::Summary) into its own metric kind. Where a
//! `Summary` keeps Welford moments (whose merge is order-sensitive in the
//! last ulps), a histogram is pure bucket counts plus a running sum —
//! merging shards adds counts and sums, so *any* shard order yields
//! byte-identical buckets. That makes it the right kind for distributions
//! that must survive worker-invariant exports: residuals, latencies,
//! per-window conformance samples.
//!
//! Buckets are the shared quarter-power-of-two grid (`2^(k/4)` upper
//! bounds); non-positive observations pool in a single underflow bucket
//! surfaced as upper bound `0`. Quantile estimates follow the same
//! upper-bound-clamped convention as [`Summary::quantile`]
//! (see that method's docs for the pinned edge cases).
//!
//! [`Summary::quantile`]: crate::summary::Summary::quantile

use crate::summary::{log_bucket_hi, log_bucket_of, NONPOS_BUCKET};
use std::collections::BTreeMap;

/// Sparse log-bucket histogram of a numeric observation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: BTreeMap<i32, u64>,
}

/// Like `Summary`, the registry materializes histograms with
/// `or_default()`; a derived all-zeros default would corrupt `min`/`max`.
impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
        }
    }

    /// Build from an iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(it: I) -> Self {
        let mut h = Self::new();
        for x in it {
            h.observe(x);
        }
        h
    }

    /// Record one observation.
    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        *self.buckets.entry(log_bucket_of(x)).or_insert(0) += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations (0 if empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Estimated p-quantile, same convention as [`Summary::quantile`]:
    /// the grid bucket's upper bound clamped to the observed `[min, max]`
    /// (`min(min, 0)` for the pooled non-positive bucket). `None` when
    /// empty.
    ///
    /// [`Summary::quantile`]: crate::summary::Summary::quantile
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range");
        if self.n == 0 {
            return None;
        }
        let target = ((p * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut cum = 0u64;
        let mut q = self.max;
        for (&k, &c) in &self.buckets {
            cum += c;
            if cum >= target {
                q = if k == NONPOS_BUCKET {
                    self.min.min(0.0)
                } else {
                    log_bucket_hi(k).clamp(self.min, self.max)
                };
                break;
            }
        }
        Some(q)
    }

    /// Merge another histogram into this one. Bucket counts and sums add
    /// exactly, so the result is independent of merge order.
    pub fn merge(&mut self, other: &Histogram) {
        if other.n == 0 {
            return;
        }
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
    }

    /// Cumulative `(upper_bound, count)` pairs in ascending bound order,
    /// ready for Prometheus `_bucket{le=...}` exposition or JSON export.
    /// The pooled non-positive bucket surfaces as upper bound `0`; the
    /// implicit `+Inf` bucket (== [`count`](Self::count)) is *not*
    /// included — exporters append it themselves.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut cum = 0u64;
        // BTreeMap iterates keys ascending and NONPOS_BUCKET is i32::MIN,
        // so the underflow bucket always leads and bounds stay sorted.
        for (&k, &c) in &self.buckets {
            cum += c;
            let hi = if k == NONPOS_BUCKET {
                0.0
            } else {
                log_bucket_hi(k)
            };
            out.push((hi, cum));
        }
        out
    }
}

impl std::fmt::Display for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.n == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} sum={:.6} mean={:.6} min={:.6} p50={:.6} p99={:.6} max={:.6}",
            self.n,
            self.sum,
            self.mean(),
            self.min,
            self.quantile(0.5).unwrap(),
            self.quantile(0.99).unwrap(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sums_and_range_are_exact() {
        let h = Histogram::from_iter([2.0, 4.0, 8.0, -1.0]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 13.0);
        assert_eq!(h.mean(), 3.25);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 8.0);
    }

    #[test]
    fn merge_is_exact_and_order_invariant() {
        let xs: Vec<f64> = (1..=200).map(|i| f64::from(i) * 0.37).collect();
        let whole = Histogram::from_iter(xs.iter().copied());
        // shard three ways, merge in two different orders
        let shards: Vec<Histogram> = xs
            .chunks(67)
            .map(|c| Histogram::from_iter(c.iter().copied()))
            .collect();
        let mut fwd = Histogram::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = Histogram::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd.buckets, whole.buckets);
        assert_eq!(fwd.buckets, rev.buckets);
        assert_eq!(fwd.count(), whole.count());
        assert_eq!(fwd.cumulative(), rev.cumulative());
        assert_eq!(fwd.quantile(0.5), whole.quantile(0.5));
    }

    #[test]
    fn quantiles_follow_the_summary_convention() {
        // single observation: clamp collapses to the value
        let h = Histogram::from_iter([42.5]);
        assert_eq!(h.quantile(0.5), Some(42.5));
        assert_eq!(h.quantile(0.99), Some(42.5));
        // non-positive pool reports min(min, 0)
        let h = Histogram::from_iter([-2.0, -1.0, 5.0]);
        assert_eq!(h.quantile(0.0), Some(-2.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn cumulative_buckets_are_sorted_and_monotone() {
        let h = Histogram::from_iter([-1.0, 0.5, 1.0, 2.0, 2.1, 300.0]);
        let cum = h.cumulative();
        assert_eq!(cum.first().unwrap().0, 0.0, "underflow bucket leads");
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0, "bounds ascend: {cum:?}");
            assert!(w[0].1 <= w[1].1, "counts accumulate: {cum:?}");
        }
        assert_eq!(cum.last().unwrap().1, h.count());
    }

    #[test]
    fn default_matches_new() {
        let mut h = Histogram::default();
        h.observe(7.0);
        assert_eq!(h.min(), 7.0);
        assert_eq!(h.max(), 7.0);
    }
}
