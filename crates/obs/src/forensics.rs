//! Fault-lifecycle forensics: per-fault tracing from injection to
//! detection (or escape), priced from flight-recorder journal bytes.
//!
//! The paper's gain equations treat recovery as an aggregate, but
//! adaptive fault tolerance needs to know what happens to *individual*
//! faults: how long each one survives before the duplex comparison
//! catches it, and which ones are never caught at all. This module
//! assigns every injected fault a stable identity — the pair
//! `(lane, fault_id)` where `fault_id` is the lane-local ordinal of
//! fault-bearing journal entries — and reconstructs its causal chain:
//!
//! * **injection** — the journal entry whose `fault` field carries the
//!   canonical fault spec (round, lane, corrupted component);
//! * **detection** — the first entry in the same lane, at or after the
//!   injection, whose comparator verdict is not `match`. The *detection
//!   latency* is reported both in rounds (lane-local entry-index delta;
//!   0 means the fault was caught at the very comparison that followed
//!   it) and in sim-time (`sim_time` delta);
//! * **recovery** — the first cleanly committed entry (`commit` or
//!   `checkpoint` action) strictly after the detection; the
//!   *time-to-recover* is its `sim_time` minus the detection's. Lanes
//!   that end before committing again contribute no recovery sample;
//! * **resolution** — faults never detected carry a terminal
//!   `fault_outcome` stamped by the engine at end of run: `masked`
//!   (the corrupted state was overwritten before any comparison saw a
//!   difference, and the final output is correct) or `escaped` (the
//!   corruption is still latent in the output — a silent data
//!   corruption the duplex failed to catch). An absent outcome on an
//!   undetected fault is conservatively counted as escaped.
//!
//! ## Determinism contract
//!
//! The tracker is a pure function of journal bytes. Lanes are campaign
//! trial indices and shards merge in a fixed order, so every derived
//! artifact — the trace list, the report text/JSON, exported metrics —
//! is byte-identical across `--workers` settings, exactly like the
//! conformance layer.
//!
//! When several faults are latent in one lane at once, each searches
//! independently for its own first divergent comparison, so one
//! detection event can resolve (and be attributed to) every fault
//! injected before it. This overcounts detection only when a second
//! fault would have been masked had the first not triggered recovery —
//! acceptable for latency statistics, and deterministic.

use crate::journal::{Action, Journal, RoundEntry, Verdict};
use crate::json::{json_array, JsonObj};
use crate::registry::Registry;
use std::collections::BTreeMap;

/// How one injected fault's lifecycle ended.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOutcome {
    /// A comparison diverged at or after the injection.
    Detected {
        /// Lane-local entry-index delta from injection to the first
        /// non-`match` verdict (0 = caught at the injection round's own
        /// comparison).
        latency_rounds: u64,
        /// Sim-time delta from injection to detection.
        latency_time: f64,
        /// Sim-time from detection to the next cleanly committed round
        /// (`commit`/`checkpoint` action), when the lane reached one.
        time_to_recover: Option<f64>,
    },
    /// Never detected; the corrupted state was overwritten before any
    /// comparison saw it and the final output is correct.
    Masked,
    /// Never detected and still latent at end of run: a silent data
    /// corruption the duplex comparison failed to catch.
    Escaped,
}

impl FaultOutcome {
    /// Canonical lower-case class label (`detected`/`masked`/`escaped`).
    pub fn class(&self) -> &'static str {
        match self {
            FaultOutcome::Detected { .. } => "detected",
            FaultOutcome::Masked => "masked",
            FaultOutcome::Escaped => "escaped",
        }
    }
}

/// One fault's reconstructed lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTrace {
    /// Journal lane (campaign trial index; 0 for single runs).
    pub lane: u64,
    /// Stable per-lane fault ordinal (from the entry's `fault_id`
    /// field; lane-local fault-bearing-entry ordinal for journals whose
    /// producer predates the field).
    pub fault_id: u64,
    /// Canonical fault spec string as injected.
    pub spec: String,
    /// In-interval round number of the injecting entry.
    pub injected_round: u64,
    /// Sim-time of the injecting entry.
    pub injected_time: f64,
    /// Last in-interval round number seen on the lane (bounds the round
    /// range an escaped fault stayed latent over).
    pub lane_last_round: u64,
    /// How the lifecycle ended.
    pub outcome: FaultOutcome,
}

/// One escaped fault, as listed in reports.
#[derive(Debug, Clone, PartialEq)]
pub struct EscapeRecord {
    /// Journal lane.
    pub lane: u64,
    /// Stable fault ordinal within the lane.
    pub fault_id: u64,
    /// Canonical fault spec string.
    pub spec: String,
    /// Round the fault was injected at.
    pub injected_round: u64,
    /// Last round of the lane — the fault stayed latent over
    /// `injected_round..=last_round`.
    pub last_round: u64,
}

/// Builds [`FaultTrace`]s from journal bytes and aggregates them.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicsTracker {
    scheme: String,
    traces: Vec<FaultTrace>,
}

/// Everything `vds faults` prints: counts by class, coverage, latency
/// quantiles and the escape list.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicsReport {
    /// Scheme label from the journal header.
    pub scheme: String,
    /// Faults injected (journal entries carrying a fault spec).
    pub injected: u64,
    /// Faults whose lane diverged at or after the injection.
    pub detected: u64,
    /// Undetected faults whose outcome was stamped `masked`.
    pub masked: u64,
    /// Undetected faults latent at end of run (includes unstamped).
    pub escaped: u64,
    /// `detected / injected` (1.0 when nothing was injected).
    pub coverage: f64,
    /// Mean detection latency in rounds over detected faults.
    pub mean_latency_rounds: f64,
    /// Median detection latency in rounds.
    pub p50_latency_rounds: f64,
    /// 99th-percentile detection latency in rounds.
    pub p99_latency_rounds: f64,
    /// Mean detection latency in sim-time.
    pub mean_latency_time: f64,
    /// Median detection latency in sim-time.
    pub p50_latency_time: f64,
    /// 99th-percentile detection latency in sim-time.
    pub p99_latency_time: f64,
    /// Detected faults whose lane committed cleanly again.
    pub recover_samples: u64,
    /// Mean sim-time from detection to the next clean commit.
    pub mean_time_to_recover: f64,
    /// Escaped faults with their latent round ranges.
    pub escapes: Vec<EscapeRecord>,
}

impl ForensicsTracker {
    /// Price a journal's fault lifecycles. Errors when the journal has
    /// no header (truncated or not a journal).
    pub fn for_journal(journal: &Journal) -> Result<ForensicsTracker, String> {
        let header = journal
            .header()
            .ok_or_else(|| "journal has no header".to_string())?;
        let mut t = ForensicsTracker {
            scheme: header.scheme.clone(),
            traces: Vec::new(),
        };
        t.ingest(journal);
        Ok(t)
    }

    /// The reconstructed per-fault lifecycles, lane order then
    /// injection order.
    pub fn traces(&self) -> &[FaultTrace] {
        &self.traces
    }

    fn ingest(&mut self, journal: &Journal) {
        let mut lanes: BTreeMap<u64, Vec<&RoundEntry>> = BTreeMap::new();
        for e in journal.entries() {
            lanes.entry(e.lane).or_default().push(e);
        }
        for (lane, entries) in lanes {
            self.ingest_lane(lane, &entries);
        }
    }

    fn ingest_lane(&mut self, lane: u64, entries: &[&RoundEntry]) {
        let lane_last_round = entries.last().map(|e| e.round).unwrap_or(0);
        let mut ordinal = 0u64;
        for (idx, &e) in entries.iter().enumerate() {
            let Some(spec) = &e.fault else { continue };
            let fault_id = e.fault_id.unwrap_or(ordinal);
            ordinal += 1;
            let detection = entries[idx..]
                .iter()
                .enumerate()
                .find(|(_, d)| d.verdict != Verdict::Match);
            let outcome = match detection {
                Some((delta, det)) => {
                    let time_to_recover = entries[idx + delta + 1..]
                        .iter()
                        .find(|r| matches!(r.action, Action::Commit | Action::Checkpoint))
                        .map(|r| r.sim_time - det.sim_time);
                    FaultOutcome::Detected {
                        latency_rounds: delta as u64,
                        latency_time: det.sim_time - e.sim_time,
                        time_to_recover,
                    }
                }
                None => match e.fault_outcome.as_deref() {
                    Some("masked") => FaultOutcome::Masked,
                    _ => FaultOutcome::Escaped,
                },
            };
            self.traces.push(FaultTrace {
                lane,
                fault_id,
                spec: spec.clone(),
                injected_round: e.round,
                injected_time: e.sim_time,
                lane_last_round,
                outcome,
            });
        }
    }

    /// Exact quantile over a sorted sample vector (0 when empty).
    fn quantile(sorted: &[f64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let target = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[target - 1]
    }

    /// Snapshot the aggregate report.
    pub fn report(&self) -> ForensicsReport {
        let mut detected = 0u64;
        let mut masked = 0u64;
        let mut escaped = 0u64;
        let mut lat_rounds: Vec<f64> = Vec::new();
        let mut lat_time: Vec<f64> = Vec::new();
        let mut recover: Vec<f64> = Vec::new();
        let mut escapes = Vec::new();
        for t in &self.traces {
            match &t.outcome {
                FaultOutcome::Detected {
                    latency_rounds,
                    latency_time,
                    time_to_recover,
                } => {
                    detected += 1;
                    lat_rounds.push(*latency_rounds as f64);
                    lat_time.push(*latency_time);
                    if let Some(r) = time_to_recover {
                        recover.push(*r);
                    }
                }
                FaultOutcome::Masked => masked += 1,
                FaultOutcome::Escaped => {
                    escaped += 1;
                    escapes.push(EscapeRecord {
                        lane: t.lane,
                        fault_id: t.fault_id,
                        spec: t.spec.clone(),
                        injected_round: t.injected_round,
                        last_round: t.lane_last_round,
                    });
                }
            }
        }
        lat_rounds.sort_by(f64::total_cmp);
        lat_time.sort_by(f64::total_cmp);
        let injected = self.traces.len() as u64;
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        ForensicsReport {
            scheme: self.scheme.clone(),
            injected,
            detected,
            masked,
            escaped,
            coverage: if injected == 0 {
                1.0
            } else {
                detected as f64 / injected as f64
            },
            mean_latency_rounds: mean(&lat_rounds),
            p50_latency_rounds: Self::quantile(&lat_rounds, 0.5),
            p99_latency_rounds: Self::quantile(&lat_rounds, 0.99),
            mean_latency_time: mean(&lat_time),
            p50_latency_time: Self::quantile(&lat_time, 0.5),
            p99_latency_time: Self::quantile(&lat_time, 0.99),
            recover_samples: recover.len() as u64,
            mean_time_to_recover: mean(&recover),
            escapes,
        }
    }

    /// Export fault-lifecycle metrics into a registry: the
    /// `faults.injected/detected/escaped/masked` counters plus
    /// detection-latency and time-to-recover histograms. Only journaled
    /// paths (duplex/campaign/serve runs with the flight recorder on)
    /// call this, so the counters never perturb bench work-unit
    /// accounting, which covers journal-free experiment runs.
    pub fn export_metrics(&self, reg: &mut Registry) {
        let r = self.report();
        reg.count("faults.injected", r.injected);
        reg.count("faults.detected", r.detected);
        reg.count("faults.masked", r.masked);
        reg.count("faults.escaped", r.escaped);
        reg.gauge("faults.coverage", r.coverage);
        for t in &self.traces {
            if let FaultOutcome::Detected {
                latency_rounds,
                latency_time,
                time_to_recover,
            } = &t.outcome
            {
                reg.observe_hist("faults.detect_latency_rounds", *latency_rounds as f64);
                reg.observe_hist("faults.detect_latency_time", *latency_time);
                if let Some(rt) = time_to_recover {
                    reg.observe_hist("faults.time_to_recover", *rt);
                }
            }
        }
    }
}

impl ForensicsReport {
    /// Deterministic human-readable rendering (what `vds faults`
    /// prints).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "faults: scheme {}, {} injected",
            self.scheme, self.injected
        );
        if self.injected == 0 {
            let _ = writeln!(out, "  no faults injected (0 samples)");
            return out;
        }
        let _ = writeln!(
            out,
            "  coverage: {}/{} detected ({:.1}%)  masked {}  escaped {}",
            self.detected,
            self.injected,
            100.0 * self.coverage,
            self.masked,
            self.escaped
        );
        if self.detected > 0 {
            let _ = writeln!(
                out,
                "  detection latency (rounds):   mean {:.3}  p50 {:.0}  p99 {:.0}",
                self.mean_latency_rounds, self.p50_latency_rounds, self.p99_latency_rounds
            );
            let _ = writeln!(
                out,
                "  detection latency (sim-time): mean {:.6}  p50 {:.6}  p99 {:.6}",
                self.mean_latency_time, self.p50_latency_time, self.p99_latency_time
            );
            let _ = writeln!(
                out,
                "  time to recover: mean {:.6} over {} sample{}",
                self.mean_time_to_recover,
                self.recover_samples,
                if self.recover_samples == 1 { "" } else { "s" }
            );
        }
        if !self.escapes.is_empty() {
            let _ = writeln!(out, "  escapes:");
            for e in &self.escapes {
                let _ = writeln!(
                    out,
                    "    lane {} fault {} {} latent rounds {}..{}",
                    e.lane, e.fault_id, e.spec, e.injected_round, e.last_round
                );
            }
        }
        out
    }

    /// JSON report (`vds faults --json`, `/faults`).
    pub fn to_json(&self) -> String {
        let escapes: Vec<String> = self
            .escapes
            .iter()
            .map(|e| {
                JsonObj::new()
                    .u64("lane", e.lane)
                    .u64("fault_id", e.fault_id)
                    .str("spec", &e.spec)
                    .u64("injected_round", e.injected_round)
                    .u64("last_round", e.last_round)
                    .finish()
            })
            .collect();
        JsonObj::report("faults")
            .str("scheme", &self.scheme)
            .u64("injected", self.injected)
            .u64("detected", self.detected)
            .u64("masked", self.masked)
            .u64("escaped", self.escaped)
            .f64("coverage", self.coverage)
            .f64("mean_latency_rounds", self.mean_latency_rounds)
            .f64("p50_latency_rounds", self.p50_latency_rounds)
            .f64("p99_latency_rounds", self.p99_latency_rounds)
            .f64("mean_latency_time", self.mean_latency_time)
            .f64("p50_latency_time", self.p50_latency_time)
            .f64("p99_latency_time", self.p99_latency_time)
            .u64("recover_samples", self.recover_samples)
            .f64("mean_time_to_recover", self.mean_time_to_recover)
            .raw("escapes", &json_array(&escapes))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Action, Journal, JournalHeader, RoundEntry, Verdict};

    #[allow(clippy::too_many_arguments)]
    fn entry(
        lane: u64,
        round: u64,
        sim_time: f64,
        verdict: Verdict,
        action: Action,
        fault: Option<(&str, u64)>,
        fault_outcome: Option<&str>,
    ) -> RoundEntry {
        RoundEntry {
            seq: 0,
            lane,
            round,
            committed: round,
            sim_time,
            d1: crate::digest_words128(&[round as u32]),
            d2: crate::digest_words128(&[round as u32, u32::from(verdict != Verdict::Match)]),
            verdict,
            sched: "coschedule[v1,v2]".to_string(),
            action,
            rollforward: 0,
            fault: fault.map(|(s, _)| s.to_string()),
            fault_id: fault.map(|(_, id)| id),
            fault_outcome: fault_outcome.map(str::to_string),
        }
    }

    fn lifecycle_journal() -> Journal {
        let header = JournalHeader::new("abstract", "smt-det", 7, 8, 12);
        let mut j = Journal::enabled(header);
        // lane 0: fault at round 2 detected two rounds later, then a
        // clean commit one time unit after the detection
        j.push(entry(0, 1, 1.0, Verdict::Match, Action::Commit, None, None));
        j.push(entry(
            0,
            2,
            2.0,
            Verdict::Match,
            Action::Commit,
            Some(("transient:mem:4:9@v2", 0)),
            None,
        ));
        j.push(entry(0, 3, 3.0, Verdict::Match, Action::Commit, None, None));
        j.push(entry(
            0,
            4,
            4.5,
            Verdict::Mismatch,
            Action::Recover,
            None,
            None,
        ));
        j.push(entry(0, 4, 6.0, Verdict::Match, Action::Commit, None, None));
        // lane 1: fault masked (stamped by the engine), never detected
        j.push(entry(
            1,
            1,
            1.0,
            Verdict::Match,
            Action::Commit,
            Some(("transient:reg:5:3@v1", 0)),
            Some("masked"),
        ));
        j.push(entry(1, 2, 2.0, Verdict::Match, Action::Commit, None, None));
        // lane 2: fault escaped (stamped), latent to end of lane
        j.push(entry(
            2,
            1,
            1.0,
            Verdict::Match,
            Action::Commit,
            Some(("transient:mem:8:1@v2", 0)),
            Some("escaped"),
        ));
        j.push(entry(2, 2, 2.0, Verdict::Match, Action::Commit, None, None));
        j.push(entry(2, 3, 3.0, Verdict::Match, Action::Commit, None, None));
        j
    }

    #[test]
    fn lifecycles_are_classified_and_priced() {
        let t = ForensicsTracker::for_journal(&lifecycle_journal()).unwrap();
        let r = t.report();
        assert_eq!(r.injected, 3);
        assert_eq!(r.detected, 1);
        assert_eq!(r.masked, 1);
        assert_eq!(r.escaped, 1);
        assert_eq!(r.detected + r.masked + r.escaped, r.injected);
        assert!((r.coverage - 1.0 / 3.0).abs() < 1e-12);
        // detection two entries after injection, 2.5 time units later
        assert_eq!(r.mean_latency_rounds, 2.0);
        assert!((r.mean_latency_time - 2.5).abs() < 1e-12);
        // recovery committed 1.5 time units after the detection stamp
        assert_eq!(r.recover_samples, 1);
        assert!((r.mean_time_to_recover - 1.5).abs() < 1e-12);
        // escape list names the latent range
        assert_eq!(r.escapes.len(), 1);
        let e = &r.escapes[0];
        assert_eq!((e.lane, e.fault_id), (2, 0));
        assert_eq!((e.injected_round, e.last_round), (1, 3));
    }

    #[test]
    fn same_round_detection_has_zero_latency() {
        let header = JournalHeader::new("abstract", "smt-prob", 1, 8, 4);
        let mut j = Journal::enabled(header);
        j.push(entry(
            0,
            1,
            1.0,
            Verdict::Trap,
            Action::Rollback,
            Some(("crash@v1", 0)),
            None,
        ));
        let t = ForensicsTracker::for_journal(&j).unwrap();
        let r = t.report();
        assert_eq!((r.injected, r.detected), (1, 1));
        assert_eq!(r.mean_latency_rounds, 0.0);
        assert_eq!(r.mean_latency_time, 0.0);
        assert_eq!(r.recover_samples, 0, "lane never commits again");
    }

    #[test]
    fn unstamped_undetected_faults_count_as_escaped() {
        let header = JournalHeader::new("abstract", "smt-det", 1, 8, 4);
        let mut j = Journal::enabled(header);
        j.push(entry(
            0,
            1,
            1.0,
            Verdict::Match,
            Action::Commit,
            Some(("transient:mem:1:1@v2", 0)),
            None,
        ));
        let t = ForensicsTracker::for_journal(&j).unwrap();
        let r = t.report();
        assert_eq!((r.masked, r.escaped), (0, 1));
    }

    #[test]
    fn header_only_journal_reports_zero_samples() {
        let j = Journal::enabled(JournalHeader::new("micro", "smt-det", 1, 8, 0));
        let t = ForensicsTracker::for_journal(&j).unwrap();
        let r = t.report();
        assert_eq!(r.injected, 0);
        assert_eq!(r.coverage, 1.0);
        assert!(r.render_text().contains("0 samples"));
        let headerless = Journal::from_jsonl("").unwrap();
        assert!(ForensicsTracker::for_journal(&headerless)
            .unwrap_err()
            .contains("no header"));
    }

    #[test]
    fn report_is_deterministic_and_schema_versioned() {
        let j = lifecycle_journal();
        let a = ForensicsTracker::for_journal(&j).unwrap().report();
        let b = ForensicsTracker::for_journal(&j).unwrap().report();
        assert_eq!(a, b);
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().starts_with(
            "{\"schema\":\"vds.report.v1\",\"kind\":\"faults\",\"scheme\":\"smt-det\""
        ));
        assert!(a.to_json().contains("\"escapes\":["));
    }

    #[test]
    fn export_metrics_counts_classes_and_latencies() {
        let t = ForensicsTracker::for_journal(&lifecycle_journal()).unwrap();
        let mut reg = Registry::new();
        t.export_metrics(&mut reg);
        assert_eq!(reg.counter("faults.injected"), 3);
        assert_eq!(reg.counter("faults.detected"), 1);
        assert_eq!(reg.counter("faults.masked"), 1);
        assert_eq!(reg.counter("faults.escaped"), 1);
        assert_eq!(
            reg.histogram("faults.detect_latency_rounds")
                .unwrap()
                .count(),
            1
        );
        assert_eq!(reg.histogram("faults.time_to_recover").unwrap().count(), 1);
    }

    #[test]
    fn legacy_entries_without_fault_id_get_lane_ordinals() {
        let header = JournalHeader::new("abstract", "smt-det", 1, 8, 4);
        let mut j = Journal::enabled(header);
        let mut a = entry(
            0,
            1,
            1.0,
            Verdict::Match,
            Action::Commit,
            Some(("f0", 0)),
            None,
        );
        a.fault_id = None;
        let mut b = entry(
            0,
            2,
            2.0,
            Verdict::Match,
            Action::Commit,
            Some(("f1", 0)),
            None,
        );
        b.fault_id = None;
        j.push(a);
        j.push(b);
        let t = ForensicsTracker::for_journal(&j).unwrap();
        let ids: Vec<u64> = t.traces().iter().map(|x| x.fault_id).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
