//! Lock-free single-producer/single-consumer ring + the batched journal
//! writer built on it.
//!
//! Journaled runs used to pay a synchronized filesystem write per round.
//! The [`JournalSink`] moves serialization off the hot path's critical
//! cost: the producing (simulation) thread pushes finished JSONL lines
//! into a fixed-capacity [`SpscRing`], and a background consumer thread
//! drains them in batches into a temp file that is atomically renamed
//! over the destination on [`JournalSink::finish`]. Readers therefore
//! never observe a half-written journal, and the bytes are exactly what
//! a single [`crate::Journal::to_jsonl`] call would have produced.

use std::cell::UnsafeCell;
use std::fs;
use std::io::{self, BufWriter, Write as _};
use std::mem::MaybeUninit;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will read (only the consumer advances it).
    head: AtomicUsize,
    /// Next slot the producer will write (only the producer advances it).
    tail: AtomicUsize,
    /// Set once the producer is dropped; lets the consumer distinguish
    /// "empty for now" from "empty forever".
    closed: AtomicBool,
}

// Slots are handed off with release/acquire on tail (producer→consumer)
// and head (consumer→producer); each slot is accessed by exactly one
// side at a time.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drop any items never consumed. With both handles gone we have
        // exclusive access; relaxed loads suffice.
        let mut head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        while head != tail {
            unsafe { (*self.buf[head % self.buf.len()].get()).assume_init_drop() };
            head += 1;
        }
    }
}

/// Producer half of a [`SpscRing`]. Dropping it closes the channel.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer half of a [`SpscRing`].
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::Release);
    }
}

/// Fixed-capacity lock-free SPSC ring; [`SpscRing::channel`] returns the
/// two endpoints.
pub struct SpscRing;

impl SpscRing {
    /// Build a channel holding at most `capacity` in-flight items
    /// (rounded up to at least 2).
    pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
        let capacity = capacity.max(2);
        let buf = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let inner = Arc::new(Inner {
            buf,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        });
        (
            Producer {
                inner: Arc::clone(&inner),
            },
            Consumer { inner },
        )
    }
}

impl<T> Producer<T> {
    /// Try to enqueue; returns the item back when the ring is full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        let inner = &*self.inner;
        let tail = inner.tail.load(Ordering::Relaxed);
        let head = inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == inner.buf.len() {
            return Err(item);
        }
        unsafe { (*inner.buf[tail % inner.buf.len()].get()).write(item) };
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueue, yielding to the OS scheduler while the ring is full
    /// (backpressure: the consumer is the filesystem, let it catch up).
    pub fn push(&mut self, mut item: T) {
        loop {
            match self.try_push(item) {
                Ok(()) => return,
                Err(back) => {
                    item = back;
                    std::thread::yield_now();
                }
            }
        }
    }
}

impl<T> Consumer<T> {
    /// Dequeue one item if available.
    pub fn try_pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        let tail = inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let item = unsafe { (*inner.buf[head % inner.buf.len()].get()).assume_init_read() };
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// True once the producer is gone **and** the ring is drained.
    pub fn is_finished(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
            && self.inner.head.load(Ordering::Relaxed) == self.inner.tail.load(Ordering::Acquire)
    }
}

/// Write `contents` to `path` atomically: write a `.tmp.<pid>` sibling,
/// then rename over the destination, so a crash mid-write never leaves a
/// truncated file behind.
pub fn write_atomic(path: &Path, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// How many queued lines the background writer accepts before the
/// producer blocks (one line per simulated round; 64k lines of
/// headroom ≫ any flush latency we have seen).
const SINK_CAPACITY: usize = 65_536;

/// Lines are coalesced into buffered writes of roughly this size.
const FLUSH_BYTES: usize = 64 * 1024;

/// Streaming, crash-safe journal writer.
///
/// `create` opens a temp sibling of `path` and spawns the consumer
/// thread; [`JournalSink::line`] enqueues one JSONL line (with trailing
/// newline added here); [`JournalSink::finish`] waits for the drain,
/// fsyncs, and renames the temp file over `path`. If the sink is dropped
/// without `finish`, the temp file is removed and `path` is untouched.
pub struct JournalSink {
    producer: Option<Producer<String>>,
    handle: Option<JoinHandle<io::Result<()>>>,
    path: PathBuf,
    tmp: PathBuf,
}

impl JournalSink {
    /// Open the sink: create the temp file (truncating a stale one) and
    /// start the background writer.
    pub fn create(path: &Path) -> io::Result<Self> {
        let tmp = tmp_sibling(path);
        let file = fs::File::create(&tmp)?;
        let (producer, mut consumer) = SpscRing::channel::<String>(SINK_CAPACITY);
        let handle = std::thread::Builder::new()
            .name("vds-journal-writer".into())
            .spawn(move || {
                let mut out = BufWriter::with_capacity(FLUSH_BYTES, file);
                loop {
                    let mut wrote = false;
                    while let Some(line) = consumer.try_pop() {
                        out.write_all(line.as_bytes())?;
                        out.write_all(b"\n")?;
                        wrote = true;
                    }
                    if consumer.is_finished() {
                        break;
                    }
                    if !wrote {
                        std::thread::yield_now();
                    }
                }
                out.flush()?;
                out.into_inner()
                    .map_err(|e| io::Error::other(e.to_string()))?
                    .sync_all()
            })?;
        Ok(JournalSink {
            producer: Some(producer),
            handle: Some(handle),
            path: path.to_path_buf(),
            tmp,
        })
    }

    /// Enqueue one line (no trailing newline; the writer adds it).
    pub fn line(&mut self, line: String) {
        self.producer
            .as_mut()
            .expect("sink already finished")
            .push(line);
    }

    /// Close the channel, wait for the writer, and atomically publish the
    /// file.
    pub fn finish(mut self) -> io::Result<()> {
        drop(self.producer.take()); // closes the channel
        let result = self
            .handle
            .take()
            .expect("sink already finished")
            .join()
            .map_err(|_| io::Error::other("journal writer thread panicked"))?;
        match result {
            Ok(()) => fs::rename(&self.tmp, &self.path).inspect_err(|_| {
                let _ = fs::remove_file(&self.tmp);
            }),
            Err(e) => {
                let _ = fs::remove_file(&self.tmp);
                Err(e)
            }
        }
    }
}

impl Drop for JournalSink {
    fn drop(&mut self) {
        if self.handle.is_some() {
            drop(self.producer.take());
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_delivers_in_order_across_threads() {
        let (mut tx, mut rx) = SpscRing::channel::<u64>(8);
        let t = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                tx.push(i);
            }
        });
        let mut expect = 0u64;
        loop {
            if let Some(v) = rx.try_pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else if rx.is_finished() {
                break;
            } else {
                std::thread::yield_now();
            }
        }
        assert_eq!(expect, 10_000);
        t.join().unwrap();
    }

    #[test]
    fn full_ring_rejects_then_accepts() {
        let (mut tx, mut rx) = SpscRing::channel::<u32>(2);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3), Err(3));
        assert_eq!(rx.try_pop(), Some(1));
        tx.try_push(3).unwrap();
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), Some(3));
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn unconsumed_items_are_dropped_cleanly() {
        let flag = Arc::new(AtomicBool::new(false));
        struct Probe(Arc<AtomicBool>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Relaxed);
            }
        }
        let (mut tx, rx) = SpscRing::channel::<Probe>(4);
        tx.push(Probe(Arc::clone(&flag)));
        drop(tx);
        drop(rx);
        assert!(flag.load(Ordering::Relaxed));
    }

    #[test]
    fn sink_writes_exact_bytes_atomically() {
        let dir = std::env::temp_dir().join(format!("vds-sink-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let mut sink = JournalSink::create(&path).unwrap();
        let mut expect = String::new();
        for i in 0..1000 {
            sink.line(format!("{{\"seq\":{i}}}"));
            expect.push_str(&format!("{{\"seq\":{i}}}\n"));
        }
        // nothing published until finish
        assert!(!path.exists());
        sink.finish().unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), expect);
        // no temp litter
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropped_sink_leaves_destination_untouched() {
        let dir = std::env::temp_dir().join(format!("vds-sink-drop-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        fs::write(&path, "old\n").unwrap();
        {
            let mut sink = JournalSink::create(&path).unwrap();
            sink.line("new".into());
        }
        assert_eq!(fs::read_to_string(&path).unwrap(), "old\n");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_replaces_contents() {
        let dir = std::env::temp_dir().join(format!("vds-wa-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic(&path, "one").unwrap();
        write_atomic(&path, "two").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "two");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
