//! Prometheus text exposition (format version 0.0.4) rendering of a
//! [`Registry`].
//!
//! This is what `GET /metrics` on the telemetry server serves. The
//! renderer maps the registry's dotted metric names onto the Prometheus
//! grammar:
//!
//! * **names** are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` (every other
//!   character becomes `_`; a leading digit is prefixed with `_`),
//! * **counters** gain the conventional `_total` suffix,
//! * **summaries** render as native Prometheus summaries: `{quantile=…}`
//!   samples plus `_sum` and `_count`,
//! * **histograms** render as native Prometheus histograms: cumulative
//!   `_bucket{le=…}` samples in ascending bound order, the mandatory
//!   `le="+Inf"` bucket, then `_sum` and `_count`,
//! * when two distinct registry names collapse onto one sanitized family
//!   (e.g. `a.b` and `a/b`), every sample in that family carries a
//!   `name="<original>"` label so no data is silently lost,
//! * **non-finite values are suppressed**: a NaN/Inf gauge, quantile or
//!   sum emits no sample (and a family whose samples are all suppressed
//!   emits nothing at all) — scrapers treat NaN as "no data", and the
//!   deterministic registry never needs them.
//!
//! The output is a pure function of registry content: families and
//! samples render in sorted order, so for a fixed seed the `/metrics`
//! bytes are as reproducible as the registry's CSV export.

use crate::histogram::Histogram;
use crate::registry::Registry;
use crate::summary::Summary;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sanitize a registry metric name into a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`). Illegal characters map to `_`; a name
/// starting with a digit is prefixed with `_`; an empty name becomes `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphabetic() || c == '_' || c == ':' {
            out.push(c);
        } else if c.is_ascii_digit() {
            if i == 0 {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline must be escaped; everything else passes through.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape HELP text: backslash and newline only (quotes are legal there).
pub fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One source metric inside a family.
enum Sample<'a> {
    Counter(u64),
    Gauge(f64),
    Summary(&'a Summary),
    Histogram(&'a Histogram),
}

/// Format a finite f64 the way Prometheus expects (plain decimal /
/// scientific, as produced by Rust's shortest round-trip formatting).
fn fmt_sample(x: f64) -> String {
    format!("{x}")
}

/// The `{name="…"}` label clause for a sample, or the empty string when
/// the family has a single member (the common case).
fn name_label(multi: bool, orig: &str) -> String {
    if multi {
        format!("{{name=\"{}\"}}", escape_label_value(orig))
    } else {
        String::new()
    }
}

/// Like [`name_label`] but merging the `name` label with an extra
/// `quantile` label (summaries).
fn quantile_label(multi: bool, orig: &str, q: &str) -> String {
    if multi {
        format!("{{name=\"{}\",quantile=\"{q}\"}}", escape_label_value(orig))
    } else {
        format!("{{quantile=\"{q}\"}}")
    }
}

/// Like [`name_label`] but merging the `name` label with the `le` bucket
/// label (histograms). Both values go through [`escape_label_value`], so a
/// colliding source name with quotes or backslashes cannot break the
/// label clause the `le` sample lives in.
fn le_label(multi: bool, orig: &str, le: &str) -> String {
    if multi {
        format!(
            "{{name=\"{}\",le=\"{}\"}}",
            escape_label_value(orig),
            escape_label_value(le)
        )
    } else {
        format!("{{le=\"{}\"}}", escape_label_value(le))
    }
}

/// Render a registry's deterministic content as Prometheus text
/// exposition (version 0.0.4). Host wall-clock timings are excluded, as
/// in every other deterministic export.
pub fn render(registry: &Registry) -> String {
    // Group source metrics into exposition families keyed by sanitized
    // name. Counters, gauges and summaries use distinct suffix patterns,
    // so families stay homogeneous; same-kind collisions share a family
    // and are told apart by a `name` label.
    let mut counters: BTreeMap<String, Vec<(&str, Sample)>> = BTreeMap::new();
    for (k, v) in registry.counters() {
        let mut fam = sanitize_metric_name(k);
        if !fam.ends_with("_total") {
            fam.push_str("_total");
        }
        counters
            .entry(fam)
            .or_default()
            .push((k, Sample::Counter(v)));
    }
    let mut gauges: BTreeMap<String, Vec<(&str, Sample)>> = BTreeMap::new();
    for (k, v) in registry.gauges() {
        gauges
            .entry(sanitize_metric_name(k))
            .or_default()
            .push((k, Sample::Gauge(v)));
    }
    let mut summaries: BTreeMap<String, Vec<(&str, Sample)>> = BTreeMap::new();
    for (k, s) in registry.summaries() {
        summaries
            .entry(sanitize_metric_name(k))
            .or_default()
            .push((k, Sample::Summary(s)));
    }
    let mut histograms: BTreeMap<String, Vec<(&str, Sample)>> = BTreeMap::new();
    for (k, h) in registry.histograms() {
        histograms
            .entry(sanitize_metric_name(k))
            .or_default()
            .push((k, Sample::Histogram(h)));
    }

    let mut out = String::new();
    for (fam, members) in &counters {
        render_family(&mut out, fam, "counter", members);
    }
    for (fam, members) in &gauges {
        render_family(&mut out, fam, "gauge", members);
    }
    for (fam, members) in &summaries {
        render_family(&mut out, fam, "summary", members);
    }
    for (fam, members) in &histograms {
        render_family(&mut out, fam, "histogram", members);
    }
    out
}

fn render_family(out: &mut String, fam: &str, kind: &str, members: &[(&str, Sample)]) {
    let multi = members.len() > 1;
    // Render samples first so a fully-suppressed family (all-NaN gauges)
    // emits no HELP/TYPE header either.
    let mut body = String::new();
    for (orig, sample) in members {
        match sample {
            Sample::Counter(v) => {
                let _ = writeln!(body, "{fam}{} {v}", name_label(multi, orig));
            }
            Sample::Gauge(v) => {
                if v.is_finite() {
                    let _ = writeln!(body, "{fam}{} {}", name_label(multi, orig), fmt_sample(*v));
                }
            }
            Sample::Summary(s) => {
                if s.count() > 0 {
                    for (q, qs) in [(0.5, "0.5"), (0.99, "0.99")] {
                        if let Some(v) = s.quantile(q).filter(|v| v.is_finite()) {
                            let _ = writeln!(
                                body,
                                "{fam}{} {}",
                                quantile_label(multi, orig, qs),
                                fmt_sample(v)
                            );
                        }
                    }
                    if s.sum().is_finite() {
                        let _ = writeln!(
                            body,
                            "{fam}_sum{} {}",
                            name_label(multi, orig),
                            fmt_sample(s.sum())
                        );
                    }
                }
                let _ = writeln!(body, "{fam}_count{} {}", name_label(multi, orig), s.count());
            }
            Sample::Histogram(h) => {
                // Cumulative buckets ascend by upper bound; the mandatory
                // +Inf bucket always closes the series at the total count.
                for (le, cum) in h.cumulative() {
                    let _ = writeln!(
                        body,
                        "{fam}_bucket{} {cum}",
                        le_label(multi, orig, &fmt_sample(le))
                    );
                }
                let _ = writeln!(
                    body,
                    "{fam}_bucket{} {}",
                    le_label(multi, orig, "+Inf"),
                    h.count()
                );
                if h.sum().is_finite() {
                    let _ = writeln!(
                        body,
                        "{fam}_sum{} {}",
                        name_label(multi, orig),
                        fmt_sample(h.sum())
                    );
                }
                let _ = writeln!(body, "{fam}_count{} {}", name_label(multi, orig), h.count());
            }
        }
    }
    if body.is_empty() {
        return;
    }
    let help = if multi {
        format!("vds {kind} ({} source metrics)", members.len())
    } else {
        format!("vds {kind} {}", escape_help(members[0].0))
    };
    let _ = writeln!(out, "# HELP {fam} {help}");
    let _ = writeln!(out, "# TYPE {fam} {kind}");
    out.push_str(&body);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sample line must be `name[{labels}] value`.
    fn assert_well_formed(exposition: &str) {
        for line in exposition.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
            let name_end = name_part.find('{').unwrap_or(name_part.len());
            let name = &name_part[..name_end];
            assert!(!name.is_empty(), "empty metric name: {line}");
            let mut chars = name.chars();
            let first = chars.next().unwrap();
            assert!(
                first.is_ascii_alphabetic() || first == '_' || first == ':',
                "bad first char in {line}"
            );
            assert!(
                chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad name char in {line}"
            );
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            assert!(
                value.parse::<f64>().unwrap().is_finite(),
                "non-finite sample: {line}"
            );
        }
    }

    #[test]
    fn sanitization() {
        assert_eq!(sanitize_metric_name("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(sanitize_metric_name("smt.thread0.ipc"), "smt_thread0_ipc");
    }

    #[test]
    fn label_and_help_escaping() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_help("a\\b\nc\"d"), "a\\\\b\\nc\"d");
    }

    #[test]
    fn counters_get_total_suffix_once() {
        let mut r = Registry::new();
        r.count("x.events", 3);
        r.count("y.bytes_total", 9);
        let p = render(&r);
        assert!(p.contains("# TYPE x_events_total counter"), "{p}");
        assert!(p.contains("x_events_total 3\n"), "{p}");
        assert!(p.contains("y_bytes_total 9\n"), "{p}");
        assert!(!p.contains("_total_total"), "{p}");
        assert_well_formed(&p);
    }

    #[test]
    fn nan_and_inf_gauges_are_suppressed_family_and_all() {
        let mut r = Registry::new();
        r.gauge("bad.nan", f64::NAN);
        r.gauge("bad.inf", f64::INFINITY);
        r.gauge("good", 1.5);
        let p = render(&r);
        assert!(!p.to_lowercase().contains("nan"), "{p}");
        assert!(!p.to_lowercase().contains("inf"), "{p}");
        assert!(
            !p.contains("bad_nan"),
            "suppressed family leaked header: {p}"
        );
        assert!(p.contains("# TYPE good gauge"), "{p}");
        assert!(p.contains("good 1.5\n"), "{p}");
        assert_well_formed(&p);
    }

    #[test]
    fn name_collisions_get_name_labels() {
        let mut r = Registry::new();
        r.count("a.b", 1);
        r.count("a/b", 2);
        let p = render(&r);
        assert_eq!(p.matches("# TYPE a_b_total counter").count(), 1, "{p}");
        assert!(p.contains("a_b_total{name=\"a.b\"} 1\n"), "{p}");
        assert!(p.contains("a_b_total{name=\"a/b\"} 2\n"), "{p}");
        assert_well_formed(&p);
    }

    #[test]
    fn summaries_render_quantiles_sum_count() {
        let mut r = Registry::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.observe("lat.ms", v);
        }
        r.merge_summary("empty", &Summary::new());
        let p = render(&r);
        assert!(p.contains("# TYPE lat_ms summary"), "{p}");
        assert!(p.contains("lat_ms{quantile=\"0.5\"}"), "{p}");
        assert!(p.contains("lat_ms{quantile=\"0.99\"}"), "{p}");
        assert!(p.contains("lat_ms_sum 10\n"), "{p}");
        assert!(p.contains("lat_ms_count 4\n"), "{p}");
        // empty summary: count row only, no quantiles, no NaN
        assert!(p.contains("empty_count 0\n"), "{p}");
        assert!(!p.contains("empty{"), "{p}");
        assert!(!p.to_lowercase().contains("nan"), "{p}");
        assert_well_formed(&p);
    }

    #[test]
    fn histograms_render_cumulative_buckets_inf_and_escaped_le_labels() {
        let mut r = Registry::new();
        for v in [-0.5, 0.25, 0.5, 3.0, 3.1] {
            r.observe_hist("resid.abs", v);
        }
        let p = render(&r);
        assert!(p.contains("# TYPE resid_abs histogram"), "{p}");
        // cumulative ordering: bounds ascend, counts never decrease, and
        // the +Inf bucket closes the series at the total count
        let buckets: Vec<(f64, u64)> = p
            .lines()
            .filter(|l| l.starts_with("resid_abs_bucket{le=\"") && !l.contains("+Inf"))
            .map(|l| {
                let le = l.split("le=\"").nth(1).unwrap().split('"').next().unwrap();
                let v = l.rsplit(' ').next().unwrap();
                (le.parse().unwrap(), v.parse().unwrap())
            })
            .collect();
        assert!(buckets.len() >= 3, "{p}");
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "le bounds must ascend: {p}");
            assert!(w[0].1 <= w[1].1, "bucket counts must accumulate: {p}");
        }
        assert_eq!(buckets.first().unwrap(), &(0.0, 1), "underflow bucket: {p}");
        assert!(p.contains("resid_abs_bucket{le=\"+Inf\"} 5\n"), "{p}");
        let sum: f64 = p
            .lines()
            .find(|l| l.starts_with("resid_abs_sum "))
            .and_then(|l| l.rsplit(' ').next())
            .unwrap()
            .parse()
            .unwrap();
        assert!((sum - 6.35).abs() < 1e-12, "{p}");
        assert!(p.contains("resid_abs_count 5\n"), "{p}");
        // the +Inf bucket is the last bucket line
        let last_bucket = p
            .lines()
            .rfind(|l| l.starts_with("resid_abs_bucket"))
            .unwrap();
        assert!(last_bucket.contains("+Inf"), "{p}");
        assert_well_formed(&p);

        // colliding source names put an escaped `name` label inside the
        // same clause as `le`; quotes/backslashes must not break it
        let mut r = Registry::new();
        r.observe_hist("h\"q.x", 1.0);
        r.observe_hist("h\\q.x", 2.0);
        let p = render(&r);
        assert_eq!(p.matches("# TYPE h_q_x histogram").count(), 1, "{p}");
        assert!(
            p.contains("h_q_x_bucket{name=\"h\\\"q.x\",le=\"1\"} 1\n"),
            "{p}"
        );
        assert!(
            p.contains("h_q_x_bucket{name=\"h\\\\q.x\",le=\"+Inf\"} 1\n"),
            "{p}"
        );
        assert!(p.contains("h_q_x_count{name=\"h\\\"q.x\"} 1\n"), "{p}");
        assert_well_formed(&p);
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut r = Registry::new();
        r.count("z.c", 1);
        r.count("a.c", 2);
        r.gauge("m.g", 0.25);
        r.observe("s", 7.0);
        assert_eq!(render(&r), render(&r));
        let a = render(&r).find("# HELP a_c_total").unwrap();
        let z = render(&r).find("# HELP z_c_total").unwrap();
        assert!(a < z, "families must be sorted");
    }

    /// Golden-file pin of the full exposition for a synthetic registry
    /// exercising sanitization, escaping, collisions and suppression.
    /// Regenerate with `VDS_UPDATE_GOLDEN=1 cargo test -p vds-obs`.
    #[test]
    fn golden_exposition() {
        let mut r = Registry::new();
        r.count("campaign.count.transient/recovered", 12);
        r.count("campaign.trials", 64);
        r.count("9starts.with.digit", 1);
        r.gauge("smt.thread0.ipc", 1.75);
        r.gauge("broken.gauge", f64::NAN);
        r.gauge("label\"quote", 2.0);
        for v in [0.5, 1.0, 2.0] {
            r.observe("vds.recovery_time", v);
        }
        r.merge_summary("never.observed", &Summary::new());
        // first-class histogram kind: cumulative buckets, +Inf, and a
        // name collision forcing escaped labels in the `le` clause
        for v in [-0.01, 0.125, 0.25, 4.0] {
            r.observe_hist("conformance.residual", v);
        }
        r.observe_hist("conformance\"residual", 1.0);
        // the α-attribution ledger families, exactly as `vds alpha`
        // exports them (crate::alpha::AlphaReport::export_metrics)
        r.gauge("smt.alpha", 0.7222222222222222);
        r.count("alpha.stall.dcache", 20);
        r.count("alpha.stall.width", 8);
        r.observe_hist("alpha_excess_cycles", 30.0);
        // the flight-recorder journal block, exactly as a journaled run
        // exports it (crate::journal::Journal::export_metrics)
        let mut j =
            crate::Journal::enabled(crate::JournalHeader::new("micro", "smt-prob", 1, 10, 2));
        j.push(crate::RoundEntry {
            seq: 0,
            lane: 0,
            round: 1,
            committed: 1,
            sim_time: 0.5,
            d1: crate::digest_words128(&[1]),
            d2: crate::digest_words128(&[2]),
            verdict: crate::journal::Verdict::Mismatch,
            sched: "coschedule[v1,v2]".to_string(),
            action: crate::journal::Action::Recover,
            rollforward: 2,
            fault: Some("transient:mem:4:9@v2".to_string()),
            fault_id: Some(0),
            fault_outcome: None,
        });
        j.export_metrics(&mut r);
        let got = render(&r);
        assert!(got.contains("journal_rounds_total 1"), "{got}");
        assert!(
            got.contains("# TYPE conformance_residual histogram"),
            "{got}"
        );
        assert!(
            got.contains(
                "conformance_residual_bucket{name=\"conformance.residual\",le=\"+Inf\"} 4"
            ),
            "{got}"
        );
        assert!(got.contains("smt_alpha 0.7222222222222222"), "{got}");
        assert!(got.contains("alpha_stall_dcache_total 20"), "{got}");
        assert!(
            got.contains("# TYPE alpha_excess_cycles histogram"),
            "{got}"
        );
        assert!(got.contains("journal_divergences_total 1"), "{got}");
        assert!(got.contains("# TYPE journal_bytes_total counter"), "{got}");
        assert!(got.contains("journal_last_divergence_round 1"), "{got}");
        assert_well_formed(&got);
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/testdata/exposition.golden.prom"
        );
        if std::env::var_os("VDS_UPDATE_GOLDEN").is_some() {
            std::fs::write(path, &got).unwrap();
        }
        let want = std::fs::read_to_string(path)
            .expect("golden file present (regenerate with VDS_UPDATE_GOLDEN=1)");
        assert_eq!(got, want, "exposition drifted from the golden file");
    }
}
