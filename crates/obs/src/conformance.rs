//! Model-conformance layer: predicted-vs-measured G residuals.
//!
//! The paper's deliverable is *performance estimation* — closed forms for
//! the relative gain G of an SMT virtual duplex over the conventional
//! two-processor duplex (Eqs. 1–13). This module turns the deviation
//! between those predictions and what a backend actually did into a
//! first-class observable, computed from the per-round verdict /
//! roll-forward events the flight-recorder journal already emits.
//!
//! ## Residual definition
//!
//! Walk each journal lane in entry order. Between consecutive entries
//! the backend spent `Δ = sim_time(j) − sim_time(j−1)`: one normal round
//! plus, because entries are stamped at the comparison point *before*
//! recovery/checkpoint costs are charged, whatever overhead entry `j−1`'s
//! action incurred. The closed forms price exactly those pieces:
//!
//! * every entry costs one round — `THT2_round` (Eq. 3) on the SMT
//!   schemes, `T1_round` (Eq. 1) on the conventional duplex;
//! * a `recover` at in-interval round `i` adds `THT2_corr(i)` (Eq. 5,
//!   boosted variants via `α_k`); its conventional-duplex equivalent is
//!   `T1_corr(i)` (Eq. 2) *plus* one `T1_round` per roll-forward round
//!   salvaged (Eqs. 9/10: salvaged rounds never re-execute, so they never
//!   appear as journal entries);
//! * a `rollback` after a mismatch prices like a failed recovery; a
//!   rollback after a processor stop (`hang` verdict) costs no retry on
//!   either side — both systems merely restore;
//! * a `checkpoint` adds the calibrated checkpoint overhead to *both*
//!   sides (state saving costs the same on either architecture; the
//!   paper's forms treat it as free).
//!
//! Over a window of `W` consecutive entries on one lane:
//!
//! ```text
//! measured_G  = Σ conventional-equivalent / (Σ Δ / κ)
//! predicted_G = Σ conventional-equivalent / Σ predicted
//! residual    = measured_G − predicted_G
//! ```
//!
//! where κ calibrates the backend's time unit (cycles, abstract units)
//! to the model's: the cheapest overhead-free round observed on the lane
//! divided by the model round time. On the abstract backend κ = 1 and
//! fault-free residuals are exactly zero; on `vds-smtsim` journals the
//! residual measures genuine model deviation.
//!
//! ## Determinism contract
//!
//! The tracker is a pure function of (journal bytes, model parameters,
//! window, tolerance). Campaign journals merge lanes in shard order
//! independent of worker count, so every derived artifact — the residual
//! series, the report text/JSON, exported metrics — is byte-identical
//! across `--workers` settings, exactly like spans and the journal
//! itself.

use crate::journal::{Action, Journal, JournalHeader, RoundEntry, Verdict};
use crate::json::JsonObj;
use crate::registry::Registry;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use vds_analytic::{schemes, Params};

/// Default conformance window: residuals are aggregated over this many
/// consecutive journal entries per lane.
pub const DEFAULT_WINDOW: usize = 8;

/// Default |residual| tolerance for flagging a window.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Default bounded capacity of the residual ring.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// Fallback contention factor when a journal header carries no `alpha`
/// meta key (the paper's measured α₂ for SPEC-like pairs).
pub const DEFAULT_ALPHA: f64 = 0.65;

/// Fallback β = c/t = t'/t when the header carries no `beta` meta key.
pub const DEFAULT_BETA: f64 = 0.1;

/// One conformance window: predicted and measured G over `W` consecutive
/// rounds of a single lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// Journal lane (campaign trial index; 0 for single runs).
    pub lane: u64,
    /// In-interval round number of the window's first entry.
    pub first_round: u64,
    /// In-interval round number of the window's last entry.
    pub last_round: u64,
    /// Closed-form G prediction for the window's work mix.
    pub predicted_g: f64,
    /// Measured G: conventional-equivalent work over measured time.
    pub measured_g: f64,
    /// `measured_g − predicted_g`.
    pub residual: f64,
    /// Entries with an injected fault or a non-match verdict.
    pub fault_count: u64,
}

/// Bounded ring of [`WindowSample`]s, oldest-out, like the trace and
/// span rings: memory is bounded however long a campaign runs, and the
/// retained window is deterministic for a fixed input.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualSeries {
    cap: usize,
    dropped: u64,
    samples: VecDeque<WindowSample>,
}

impl ResidualSeries {
    /// Ring with room for `cap` samples (at least 1).
    pub fn with_capacity(cap: usize) -> Self {
        ResidualSeries {
            cap: cap.max(1),
            dropped: 0,
            samples: VecDeque::new(),
        }
    }

    /// Append a sample, evicting the oldest when full.
    pub fn push(&mut self, s: WindowSample) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(s);
    }

    /// Retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &WindowSample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// The closed-form cost model for one scheme: a scheme label plus the
/// paper's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeModel {
    /// Scheme label as recorded in journal headers (e.g. `smt-det`).
    pub scheme: String,
    /// Model parameters (t, c, t', α, s).
    pub params: Params,
}

impl SchemeModel {
    /// Build a model for a known scheme label; errors on an unknown one.
    pub fn new(scheme: &str, params: Params) -> Result<SchemeModel, String> {
        if !schemes::is_scheme_name(scheme) {
            return Err(format!(
                "unknown scheme `{scheme}` (expected one of: {})",
                schemes::SCHEME_NAMES.join(", ")
            ));
        }
        Ok(SchemeModel {
            scheme: scheme.to_string(),
            params,
        })
    }

    /// Model for a journal header: scheme and `s` from the header,
    /// α / β from the `alpha` / `beta` meta keys when present, paper
    /// defaults otherwise.
    pub fn for_header(header: &JournalHeader) -> Result<SchemeModel, String> {
        Self::for_header_with_alpha(header, None)
    }

    /// [`SchemeModel::for_header`] with an explicit α override — the
    /// measured-α pricing rule behind `vds conformance --alpha
    /// measured`. Scheme, `s` and β still come from the header; the
    /// override replaces the parametric α and is clamped into the
    /// model's valid `[0.5, 1]` range.
    pub fn for_header_with_alpha(
        header: &JournalHeader,
        alpha_override: Option<f64>,
    ) -> Result<SchemeModel, String> {
        let alpha = match alpha_override {
            Some(a) => a.clamp(0.5, 1.0),
            None => header
                .meta("alpha")
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(DEFAULT_ALPHA),
        };
        let beta = header
            .meta("beta")
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(DEFAULT_BETA);
        let s = header.s.max(1);
        Self::new(&header.scheme, Params::with_beta(alpha, beta, s))
    }

    /// Predicted duration of one normal round on this scheme.
    pub fn round_pred(&self) -> f64 {
        schemes::round_time(&self.scheme, &self.params).expect("validated at construction")
    }

    /// Conventional-duplex-equivalent duration of one normal round.
    pub fn round_conv(&self) -> f64 {
        vds_analytic::timing::t1_round(&self.params)
    }

    /// Predicted recovery time for a detection at in-interval round `i`.
    pub fn corr_pred(&self, i: u32) -> f64 {
        schemes::corr_time(&self.scheme, &self.params, i).expect("validated at construction")
    }

    /// Conventional-duplex-equivalent recovery time (Eq. 2).
    pub fn corr_conv(&self, i: u32) -> f64 {
        vds_analytic::timing::t1_corr(&self.params, i)
    }
}

/// Per-window accumulator (conventional-equivalent work, predicted time,
/// measured time, fault count, round range).
#[derive(Debug, Clone, Copy, Default)]
struct WindowAcc {
    len: usize,
    conv: f64,
    pred: f64,
    meas: f64,
    faults: u64,
    first_round: u64,
    last_round: u64,
}

impl WindowAcc {
    fn add(&mut self, round: u64, conv: f64, pred: f64, meas: f64, faults: u64) {
        if self.len == 0 {
            self.first_round = round;
        }
        self.last_round = round;
        self.len += 1;
        self.conv += conv;
        self.pred += pred;
        self.meas += meas;
        self.faults += faults;
    }
}

/// Streams journal round events into windowed G residuals.
#[derive(Debug, Clone)]
pub struct ConformanceTracker {
    model: SchemeModel,
    alpha_source: &'static str,
    window: usize,
    tolerance: f64,
    series: ResidualSeries,
    windows: u64,
    out_of_tolerance: u64,
    sum_residual: f64,
    sum_abs_residual: f64,
    fault_entries: u64,
    skipped_entries: u64,
    worst: Option<WindowSample>,
}

/// Everything `vds conformance` prints: aggregate residual statistics
/// plus the worst window.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceReport {
    /// Scheme label the residuals were priced against.
    pub scheme: String,
    /// The contention factor α the closed forms were priced with.
    pub alpha: f64,
    /// Where α came from: `"parametric"` (header meta or paper default)
    /// or `"measured"` (the α-attribution ledger's mean).
    pub alpha_source: String,
    /// Window length in journal entries.
    pub window: usize,
    /// |residual| threshold used for the out-of-tolerance count.
    pub tolerance: f64,
    /// Completed windows.
    pub windows: u64,
    /// Windows with `|residual| > tolerance`.
    pub out_of_tolerance: u64,
    /// Mean signed residual over all windows.
    pub mean_residual: f64,
    /// Mean |residual| over all windows.
    pub mean_abs_residual: f64,
    /// Median residual over the retained series.
    pub p50_residual: f64,
    /// 99th-percentile residual over the retained series.
    pub p99_residual: f64,
    /// Journal entries carrying a fault or non-match verdict.
    pub fault_entries: u64,
    /// Trailing entries discarded because their lane ended mid-window.
    pub skipped_entries: u64,
    /// Windows evicted from the bounded series (quantiles cover the
    /// retained tail only; means cover everything).
    pub dropped_windows: u64,
    /// The window with the largest |residual|.
    pub worst: Option<WindowSample>,
}

impl ConformanceTracker {
    /// Tracker with the default series capacity.
    pub fn new(model: SchemeModel, window: usize, tolerance: f64) -> Self {
        Self::with_capacity(model, window, tolerance, DEFAULT_SERIES_CAPACITY)
    }

    /// Tracker with an explicit residual-ring capacity.
    pub fn with_capacity(
        model: SchemeModel,
        window: usize,
        tolerance: f64,
        capacity: usize,
    ) -> Self {
        ConformanceTracker {
            model,
            alpha_source: "parametric",
            window: window.max(1),
            tolerance: tolerance.abs(),
            series: ResidualSeries::with_capacity(capacity),
            windows: 0,
            out_of_tolerance: 0,
            sum_residual: 0.0,
            sum_abs_residual: 0.0,
            fault_entries: 0,
            skipped_entries: 0,
            worst: None,
        }
    }

    /// Build a tracker from a journal's own header and ingest it.
    pub fn for_journal(
        journal: &Journal,
        window: usize,
        tolerance: f64,
    ) -> Result<ConformanceTracker, String> {
        Self::for_journal_with_alpha(journal, window, tolerance, None)
    }

    /// [`ConformanceTracker::for_journal`] with an optional *measured*
    /// α override: when `Some`, the closed forms are priced from the
    /// α-attribution ledger's contention factor instead of the header's
    /// parametric one, and the report labels its `alpha_source`
    /// `"measured"`.
    pub fn for_journal_with_alpha(
        journal: &Journal,
        window: usize,
        tolerance: f64,
        measured_alpha: Option<f64>,
    ) -> Result<ConformanceTracker, String> {
        let header = journal
            .header()
            .ok_or_else(|| "journal has no header".to_string())?;
        let model = SchemeModel::for_header_with_alpha(header, measured_alpha)?;
        let mut t = ConformanceTracker::new(model, window, tolerance);
        if measured_alpha.is_some() {
            t.alpha_source = "measured";
        }
        t.ingest(journal);
        Ok(t)
    }

    /// The model being evaluated.
    pub fn model(&self) -> &SchemeModel {
        &self.model
    }

    /// The retained residual series.
    pub fn series(&self) -> &ResidualSeries {
        &self.series
    }

    /// Consume every journal entry, lane by lane in lane order.
    pub fn ingest(&mut self, journal: &Journal) {
        let mut lanes: BTreeMap<u64, Vec<&RoundEntry>> = BTreeMap::new();
        for e in journal.entries() {
            lanes.entry(e.lane).or_default().push(e);
        }
        for (lane, entries) in lanes {
            self.ingest_lane(lane, &entries);
        }
    }

    /// Calibrate κ (backend time units per model unit) for a lane: the
    /// cheapest delta following a plain commit is one overhead-free
    /// round. Falls back to the first entry (one round from lane time
    /// zero), then to 1.
    fn calibrate_kappa(&self, entries: &[&RoundEntry]) -> (f64, f64) {
        let mut min_round = f64::INFINITY;
        if let Some(first) = entries.first() {
            if first.sim_time > 0.0 {
                min_round = first.sim_time;
            }
        }
        for w in entries.windows(2) {
            if w[0].action == Action::Commit {
                let d = w[1].sim_time - w[0].sim_time;
                if d > 0.0 && d < min_round {
                    min_round = d;
                }
            }
        }
        let round_pred = self.model.round_pred();
        let kappa = if min_round.is_finite() && round_pred > 0.0 {
            min_round / round_pred
        } else {
            1.0
        };
        // Checkpoint overhead, in model units: cheapest delta following a
        // checkpoint minus one plain round. State saving costs the same
        // on either architecture, so it is charged to both sides.
        let mut min_after_ckpt = f64::INFINITY;
        for w in entries.windows(2) {
            if w[0].action == Action::Checkpoint {
                let d = w[1].sim_time - w[0].sim_time;
                if d > 0.0 && d < min_after_ckpt {
                    min_after_ckpt = d;
                }
            }
        }
        let ckpt_units = if min_after_ckpt.is_finite() && min_round.is_finite() {
            ((min_after_ckpt - min_round) / kappa).max(0.0)
        } else {
            0.0
        };
        (kappa, ckpt_units)
    }

    fn ingest_lane(&mut self, lane: u64, entries: &[&RoundEntry]) {
        let (kappa, ckpt_units) = self.calibrate_kappa(entries);
        let round_conv = self.model.round_conv();
        let round_pred = self.model.round_pred();
        let mut prev: Option<&RoundEntry> = None;
        let mut prev_time = 0.0;
        let mut acc = WindowAcc::default();
        for &e in entries {
            let meas = (e.sim_time - prev_time) / kappa;
            prev_time = e.sim_time;
            let mut conv = round_conv;
            let mut pred = round_pred;
            if let Some(p) = prev {
                // The previous entry's post-comparison overhead lands in
                // this delta (entries are stamped before recovery and
                // checkpoint costs are charged).
                let i = u32::try_from(p.round)
                    .unwrap_or(u32::MAX)
                    .clamp(1, self.model.params.s);
                match p.action {
                    Action::Commit => {}
                    Action::Checkpoint => {
                        conv += ckpt_units;
                        pred += ckpt_units;
                    }
                    Action::Recover => {
                        // Roll-forward credit: salvaged rounds never
                        // re-execute, so the conventional duplex would
                        // have spent a full round on each of them.
                        conv += self.model.corr_conv(i) + f64::from(p.rollforward) * round_conv;
                        pred += self.model.corr_pred(i);
                    }
                    Action::Rollback => {
                        if p.verdict != Verdict::Hang {
                            conv += self.model.corr_conv(i);
                            pred += self.model.corr_pred(i);
                        }
                        // A processor stop spends no retry time on either
                        // side: both systems restore and move on.
                    }
                    Action::Shutdown => {}
                }
            }
            let faults = u64::from(e.fault.is_some() || e.verdict != Verdict::Match);
            acc.add(e.round, conv, pred, meas, faults);
            prev = Some(e);
            if acc.len == self.window {
                self.flush(lane, &mut acc);
            }
        }
        // A trailing partial window would bias quantiles; drop it but
        // account for it so reports never silently truncate.
        self.skipped_entries += acc.len as u64;
    }

    fn flush(&mut self, lane: u64, acc: &mut WindowAcc) {
        let measured_g = if acc.meas > 0.0 {
            acc.conv / acc.meas
        } else {
            0.0
        };
        let predicted_g = if acc.pred > 0.0 {
            acc.conv / acc.pred
        } else {
            0.0
        };
        let residual = measured_g - predicted_g;
        let sample = WindowSample {
            lane,
            first_round: acc.first_round,
            last_round: acc.last_round,
            predicted_g,
            measured_g,
            residual,
            fault_count: acc.faults,
        };
        self.windows += 1;
        self.sum_residual += residual;
        self.sum_abs_residual += residual.abs();
        self.fault_entries += acc.faults;
        if residual.abs() > self.tolerance {
            self.out_of_tolerance += 1;
        }
        let is_worst = match self.worst {
            None => true,
            Some(w) => residual.abs() > w.residual.abs(),
        };
        if is_worst {
            self.worst = Some(sample);
        }
        self.series.push(sample);
        *acc = WindowAcc::default();
    }

    /// Exact quantile over the retained residuals (sorted copy; the ring
    /// is bounded so this stays cheap).
    fn series_quantile(&self, p: f64) -> f64 {
        let mut rs: Vec<f64> = self.series.iter().map(|s| s.residual).collect();
        if rs.is_empty() {
            return 0.0;
        }
        rs.sort_by(f64::total_cmp);
        let target = ((p * rs.len() as f64).ceil() as usize).clamp(1, rs.len());
        rs[target - 1]
    }

    /// Snapshot the aggregate report.
    pub fn report(&self) -> ConformanceReport {
        let n = self.windows.max(1) as f64;
        ConformanceReport {
            scheme: self.model.scheme.clone(),
            alpha: self.model.params.alpha,
            alpha_source: self.alpha_source.to_string(),
            window: self.window,
            tolerance: self.tolerance,
            windows: self.windows,
            out_of_tolerance: self.out_of_tolerance,
            mean_residual: if self.windows == 0 {
                0.0
            } else {
                self.sum_residual / n
            },
            mean_abs_residual: if self.windows == 0 {
                0.0
            } else {
                self.sum_abs_residual / n
            },
            p50_residual: self.series_quantile(0.5),
            p99_residual: self.series_quantile(0.99),
            fault_entries: self.fault_entries,
            skipped_entries: self.skipped_entries,
            dropped_windows: self.series.dropped(),
            worst: self.worst,
        }
    }

    /// Export conformance metrics into a registry: gauges for the
    /// aggregates plus the `conformance.residual_abs` histogram.
    /// Deliberately no counters — bench work-unit accounting sums
    /// counters, and conformance must never perturb it.
    pub fn export_metrics(&self, reg: &mut Registry) {
        let r = self.report();
        reg.gauge("conformance.alpha", r.alpha);
        reg.gauge("conformance.windows", r.windows as f64);
        reg.gauge(
            "conformance.windows_out_of_tolerance",
            r.out_of_tolerance as f64,
        );
        reg.gauge("conformance.mean_residual", r.mean_residual);
        reg.gauge("conformance.mean_abs_residual", r.mean_abs_residual);
        reg.gauge("conformance.p50_residual", r.p50_residual);
        reg.gauge("conformance.p99_residual", r.p99_residual);
        if let Some(w) = r.worst {
            reg.gauge("conformance.worst_abs_residual", w.residual.abs());
        }
        for s in self.series.iter() {
            reg.observe_hist("conformance.residual_abs", s.residual.abs());
        }
    }
}

impl ConformanceReport {
    /// Deterministic human-readable rendering (what `vds conformance`
    /// prints).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "conformance: scheme {}, {} window{} of {} rounds",
            self.scheme,
            self.windows,
            if self.windows == 1 { "" } else { "s" },
            self.window
        );
        let _ = writeln!(
            out,
            "  priced at alpha {:.4} ({})",
            self.alpha, self.alpha_source
        );
        if self.windows == 0 {
            let _ = writeln!(
                out,
                "  no complete windows ({} entries skipped); try a smaller --window",
                self.skipped_entries
            );
            return out;
        }
        let _ = writeln!(
            out,
            "  residual: mean {:+.6}  |mean| {:.6}  p50 {:+.6}  p99 {:+.6}",
            self.mean_residual, self.mean_abs_residual, self.p50_residual, self.p99_residual
        );
        let pct = 100.0 * self.out_of_tolerance as f64 / self.windows as f64;
        let _ = writeln!(
            out,
            "  outside |residual| <= {:.3}: {} of {} windows ({:.1}%)",
            self.tolerance, self.out_of_tolerance, self.windows, pct
        );
        if let Some(w) = &self.worst {
            let _ = writeln!(
                out,
                "  worst window: lane {} rounds {}..{} residual {:+.6} (measured {:.6}, predicted {:.6}, faults {})",
                w.lane,
                w.first_round,
                w.last_round,
                w.residual,
                w.measured_g,
                w.predicted_g,
                w.fault_count
            );
        }
        let _ = writeln!(
            out,
            "  fault entries: {}  skipped (partial windows): {}  evicted windows: {}",
            self.fault_entries, self.skipped_entries, self.dropped_windows
        );
        out
    }

    /// JSON report (`vds conformance --json`, `/conformance`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::report("conformance")
            .str("scheme", &self.scheme)
            .f64("alpha", self.alpha)
            .str("alpha_source", &self.alpha_source)
            .u64("window", self.window as u64)
            .f64("tolerance", self.tolerance)
            .u64("windows", self.windows)
            .u64("out_of_tolerance", self.out_of_tolerance)
            .f64("mean_residual", self.mean_residual)
            .f64("mean_abs_residual", self.mean_abs_residual)
            .f64("p50_residual", self.p50_residual)
            .f64("p99_residual", self.p99_residual)
            .u64("fault_entries", self.fault_entries)
            .u64("skipped_entries", self.skipped_entries)
            .u64("dropped_windows", self.dropped_windows);
        if let Some(w) = &self.worst {
            let worst = JsonObj::new()
                .u64("lane", w.lane)
                .u64("first_round", w.first_round)
                .u64("last_round", w.last_round)
                .f64("predicted_g", w.predicted_g)
                .f64("measured_g", w.measured_g)
                .f64("residual", w.residual)
                .u64("fault_count", w.fault_count)
                .finish();
            o = o.raw("worst", &worst);
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Action, Journal, JournalHeader, RoundEntry, Verdict};
    use vds_analytic::timing;

    #[allow(clippy::too_many_arguments)]
    fn entry(
        seq: u64,
        lane: u64,
        round: u64,
        sim_time: f64,
        verdict: Verdict,
        action: Action,
        rollforward: u32,
        fault: Option<&str>,
    ) -> RoundEntry {
        RoundEntry {
            seq,
            lane,
            round,
            committed: 0,
            sim_time,
            d1: crate::digest_words128(&[seq as u32]),
            d2: crate::digest_words128(&[seq as u32]),
            verdict,
            sched: "coschedule[v1,v2]".to_string(),
            action,
            rollforward,
            fault: fault.map(str::to_string),
            fault_id: fault.map(|_| 0),
            fault_outcome: None,
        }
    }

    /// A synthetic lane timed exactly by the closed forms must produce
    /// residuals of exactly zero.
    fn model_timed_journal(faulty_round: Option<u64>) -> Journal {
        let header = JournalHeader::new("abstract", "smt-det", 1, 20, 12);
        let model = SchemeModel::for_header(&header).unwrap();
        let mut j = Journal::enabled(header);
        let mut clock = 0.0;
        let mut round = 1u64;
        for seq in 0..12u64 {
            clock += model.round_pred();
            let fault_here = faulty_round == Some(seq);
            let (verdict, action) = if fault_here {
                (Verdict::Mismatch, Action::Recover)
            } else if round == 20 {
                (Verdict::Match, Action::Checkpoint)
            } else {
                (Verdict::Match, Action::Commit)
            };
            j.push(entry(
                seq,
                0,
                round,
                clock,
                verdict,
                action,
                0,
                fault_here.then_some("transient:mem:1:1@v2"),
            ));
            if fault_here {
                clock += model.corr_pred(u32::try_from(round).unwrap());
                // the retry recommits the round; in-interval position
                // stays put (engine debits then re-runs)
            } else {
                round += 1;
            }
        }
        j
    }

    #[test]
    fn model_timed_lane_has_zero_residual() {
        for faulty in [None, Some(5)] {
            let j = model_timed_journal(faulty);
            let t = ConformanceTracker::for_journal(&j, 4, 0.25).unwrap();
            let r = t.report();
            assert_eq!(r.windows, 3, "fault {faulty:?}");
            assert!(
                r.mean_abs_residual < 1e-9,
                "fault {faulty:?}: {}",
                r.mean_abs_residual
            );
            assert_eq!(r.out_of_tolerance, 0);
            assert_eq!(r.fault_entries, u64::from(faulty.is_some()));
            assert_eq!(r.skipped_entries, 0);
        }
    }

    #[test]
    fn a_slow_backend_yields_negative_residuals() {
        // time every round 25% slower than the model predicts, but leave
        // the cheapest round at model speed so κ calibrates to 1
        let header = JournalHeader::new("micro", "smt-det", 1, 20, 9);
        let model = SchemeModel::for_header(&header).unwrap();
        let mut j = Journal::enabled(header);
        let mut clock = model.round_pred(); // entry 0 at model speed
        j.push(entry(
            0,
            0,
            1,
            clock,
            Verdict::Match,
            Action::Commit,
            0,
            None,
        ));
        for seq in 1..9u64 {
            clock += model.round_pred() * 1.25;
            j.push(entry(
                seq,
                0,
                seq + 1,
                clock,
                Verdict::Match,
                Action::Commit,
                0,
                None,
            ));
        }
        let t = ConformanceTracker::for_journal(&j, 3, 0.05).unwrap();
        let r = t.report();
        assert_eq!(r.windows, 3);
        assert!(r.mean_residual < -0.05, "mean {}", r.mean_residual);
        assert!(r.out_of_tolerance >= 2, "{r:?}");
        let w = r.worst.unwrap();
        assert!(w.measured_g < w.predicted_g);
    }

    #[test]
    fn report_is_deterministic_and_lane_invariant_shapes() {
        let j = model_timed_journal(Some(3));
        let a = ConformanceTracker::for_journal(&j, 4, 0.25).unwrap();
        let b = ConformanceTracker::for_journal(&j, 4, 0.25).unwrap();
        assert_eq!(a.report(), b.report());
        assert_eq!(a.report().render_text(), b.report().render_text());
        assert_eq!(a.report().to_json(), b.report().to_json());
        assert!(a.report().to_json().starts_with(
            "{\"schema\":\"vds.report.v1\",\"kind\":\"conformance\",\"scheme\":\"smt-det\""
        ));
    }

    #[test]
    fn measured_alpha_override_reprices_the_model() {
        // The faulty journal matters: κ-calibration absorbs a pure α
        // rescale on all-commit lanes, but recovery time scales with α
        // differently from round time, so repricing moves the residual.
        let j = model_timed_journal(Some(5));
        let parametric = ConformanceTracker::for_journal(&j, 4, 0.25).unwrap();
        let measured = ConformanceTracker::for_journal_with_alpha(&j, 4, 0.25, Some(0.9)).unwrap();
        assert_eq!(parametric.report().alpha_source, "parametric");
        assert_eq!(parametric.report().alpha, DEFAULT_ALPHA);
        assert_eq!(measured.report().alpha_source, "measured");
        assert_eq!(measured.report().alpha, 0.9);
        assert_eq!(measured.model().params.alpha, 0.9);
        // The journal is timed at the parametric α, so pricing with a
        // different α must move the residuals.
        assert!(
            (measured.report().mean_abs_residual - parametric.report().mean_abs_residual).abs()
                > 1e-3,
            "measured-α pricing did not change residuals"
        );
        assert!(measured
            .report()
            .render_text()
            .contains("priced at alpha 0.9000 (measured)"));
        assert!(measured
            .report()
            .to_json()
            .contains("\"alpha\":0.9,\"alpha_source\":\"measured\""));
        // Out-of-range measured α is clamped into the model's domain.
        let clamped = ConformanceTracker::for_journal_with_alpha(&j, 4, 0.25, Some(1.7)).unwrap();
        assert_eq!(clamped.report().alpha, 1.0);
    }

    #[test]
    fn residual_series_ring_is_bounded() {
        let mut s = ResidualSeries::with_capacity(2);
        for i in 0..5u64 {
            s.push(WindowSample {
                lane: 0,
                first_round: i,
                last_round: i,
                predicted_g: 1.0,
                measured_g: 1.0,
                residual: i as f64,
                fault_count: 0,
            });
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let kept: Vec<u64> = s.iter().map(|w| w.first_round).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn export_metrics_uses_no_counters() {
        let j = model_timed_journal(None);
        let t = ConformanceTracker::for_journal(&j, 4, 0.25).unwrap();
        let mut reg = Registry::new();
        t.export_metrics(&mut reg);
        assert_eq!(reg.counters().count(), 0, "work-unit accounting guard");
        assert_eq!(reg.gauge_value("conformance.windows"), Some(3.0));
        assert_eq!(
            reg.histogram("conformance.residual_abs").unwrap().count(),
            3
        );
    }

    #[test]
    fn header_model_respects_meta_overrides() {
        let h = JournalHeader::new("abstract", "smt-prob", 7, 10, 50)
            .with_meta("alpha", "0.8")
            .with_meta("beta", "0.05");
        let m = SchemeModel::for_header(&h).unwrap();
        assert_eq!(m.params.alpha, 0.8);
        assert!((m.params.t_cmp - 0.05).abs() < 1e-12);
        assert_eq!(m.params.s, 10);
        // round prediction follows Eq. 3 with those params
        assert_eq!(m.round_pred(), timing::tht2_round(&m.params));
        assert!(SchemeModel::new("bogus", Params::paper_default()).is_err());
    }

    #[test]
    fn unknown_scheme_in_header_is_an_error() {
        let h = JournalHeader::new("abstract", "adaptive-v2", 7, 10, 50);
        let err = SchemeModel::for_header(&h).unwrap_err();
        assert!(err.contains("adaptive-v2"), "{err}");
        assert!(err.contains("smt-det"), "lists valid names: {err}");
    }
}
