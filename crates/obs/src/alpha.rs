//! α-attribution: the per-cycle SMT interference ledger.
//!
//! The whole analytic model is priced off a single scalar α — the SMT
//! contention factor of Eq. (3): two co-scheduled rounds take wall time
//! `2αt`. The simulator measures α as an end-to-end cycle ratio, but the
//! pipeline already counts *why* every non-issue cycle was lost
//! (`issued_cycles + stall_icache + stall_dcache + stall_fu +
//! stall_width + stall_branch + parked == cycles`, the conservation
//! invariant). This module turns those counters into an *explanation* of
//! α by differential cycle accounting:
//!
//! 1. Run each kernel solo and take a [`CycleSnapshot`] of its thread
//!    counters; run the pair co-scheduled and snapshot both threads.
//! 2. The co-run's excess over the critical (longer-solo) kernel,
//!    `excess = t_pair − max(t_a, t_b)`, is exactly the critical
//!    thread's extra stall cycles: per-cause deltas
//!    `Δstall_cause = co.stall_cause − solo.stall_cause` plus a
//!    `Δparked` term and an explicit integer `residual`
//!    (`excess − Σ Δ` — nonzero only if the issue pattern itself
//!    changed, which the conservation law forbids).
//!
//! The arithmetic is pure integer bookkeeping over counter snapshots, so
//! a [`PairLedger`] is byte-reproducible for a fixed seed and identical
//! for any worker count. [`AlphaReport`] aggregates the per-pair
//! ledgers into the text/JSON/metrics surfaces (`vds alpha`, the
//! `alpha` report kind under `vds.report.v1`, `smt.alpha` +
//! `alpha.stall.*` + `alpha_excess_cycles` on the registry).

use crate::json::{json_array, JsonObj};
use crate::registry::Registry;
use std::fmt::Write as _;

/// The five interference causes the ledger attributes excess cycles to,
/// in the fixed order every export uses.
pub const STALL_KINDS: [&str; 5] = ["icache", "dcache", "fu", "width", "branch"];

/// A point-in-time copy of one hardware thread's cycle accounting.
///
/// This is the obs-side mirror of `smtsim`'s `ThreadCounters` issue/stall
/// fields (obs sits *below* the simulator in the dependency graph, so the
/// simulator converts into this struct, not the other way around).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleSnapshot {
    /// Total core cycles observed by the thread.
    pub cycles: u64,
    /// Cycles in which the thread issued an instruction.
    pub issued_cycles: u64,
    /// Cycles lost to instruction-cache miss fill.
    pub stall_icache: u64,
    /// Cycles lost to data-cache miss latency.
    pub stall_dcache: u64,
    /// Cycles lost waiting for a busy functional unit.
    pub stall_fu: u64,
    /// Cycles lost to issue-width exhaustion by co-runners.
    pub stall_width: u64,
    /// Cycles lost to branch-misprediction flushes.
    pub stall_branch: u64,
    /// Cycles spent parked (yielded, halted, or trapped).
    pub parked: u64,
}

impl CycleSnapshot {
    /// Sum of all accounted cycle sinks: issued + per-cause stalls +
    /// parked. Equal to [`CycleSnapshot::cycles`] when the conservation
    /// invariant holds.
    pub fn accounted(&self) -> u64 {
        self.issued_cycles
            + self.stall_icache
            + self.stall_dcache
            + self.stall_fu
            + self.stall_width
            + self.stall_branch
            + self.parked
    }

    /// Whether the conservation invariant
    /// `issued + per-cause stalls + parked == cycles` holds.
    pub fn is_conserved(&self) -> bool {
        self.accounted() == self.cycles
    }

    /// Per-cause stall counts in [`STALL_KINDS`] order.
    pub fn stalls(&self) -> [u64; 5] {
        [
            self.stall_icache,
            self.stall_dcache,
            self.stall_fu,
            self.stall_width,
            self.stall_branch,
        ]
    }
}

/// Differential cycle-accounting ledger for one co-scheduled kernel pair.
///
/// All deltas are signed: co-scheduling can *remove* stall cycles from a
/// cause (e.g. a co-runner prefetching shared lines) as well as add them.
/// The defining identity, checked by [`PairLedger::is_exact`] and pinned
/// by tests and CI, is
///
/// ```text
/// Δicache + Δdcache + Δfu + Δwidth + Δbranch + Δparked + residual
///     == excess == t_pair − max(t_a, t_b)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PairLedger {
    /// Name of the first kernel of the pair.
    pub kernel_a: String,
    /// Name of the second kernel of the pair.
    pub kernel_b: String,
    /// Solo cycles of kernel A.
    pub t_a: u64,
    /// Solo cycles of kernel B.
    pub t_b: u64,
    /// Co-run cycles of the pair.
    pub t_pair: u64,
    /// Measured contention factor `t_pair / (t_a + t_b)`.
    pub alpha: f64,
    /// `t_pair − max(t_a, t_b)`: the co-run's excess over the critical
    /// (longer-solo) kernel. Signed for safety, non-negative in practice.
    pub excess: i64,
    /// Per-cause critical-thread stall deltas in [`STALL_KINDS`] order.
    pub deltas: [i64; 5],
    /// Critical-thread parked-cycle delta (end-of-run bookkeeping).
    pub d_parked: i64,
    /// `excess − Σ deltas − d_parked`; the unexplained remainder.
    pub residual: i64,
}

impl PairLedger {
    /// Attribute a co-run's excess cycles from four counter snapshots:
    /// each kernel solo, then both threads of the co-run.
    ///
    /// `co_a.cycles` and `co_b.cycles` both equal the pair's wall time
    /// (every live thread's cycle counter advances each core cycle), so
    /// the pair time is read off the snapshots — the ledger depends on
    /// nothing but counter values.
    pub fn attribute(
        kernel_a: &str,
        kernel_b: &str,
        solo_a: CycleSnapshot,
        solo_b: CycleSnapshot,
        co_a: CycleSnapshot,
        co_b: CycleSnapshot,
    ) -> PairLedger {
        let (t_a, t_b) = (solo_a.cycles, solo_b.cycles);
        let t_pair = co_a.cycles.max(co_b.cycles);
        let alpha = t_pair as f64 / (t_a + t_b) as f64;
        let excess = t_pair as i64 - t_a.max(t_b) as i64;
        // Attribution reads the *critical* thread: the one whose solo run
        // is longer bounds the pair from below, so its extra stalls are
        // the excess. Ties break toward A for determinism.
        let (solo_c, co_c) = if t_a >= t_b {
            (solo_a, co_a)
        } else {
            (solo_b, co_b)
        };
        let solo_stalls = solo_c.stalls();
        let co_stalls = co_c.stalls();
        let mut deltas = [0i64; 5];
        for i in 0..5 {
            deltas[i] = co_stalls[i] as i64 - solo_stalls[i] as i64;
        }
        let d_parked = co_c.parked as i64 - solo_c.parked as i64;
        let residual = excess - deltas.iter().sum::<i64>() - d_parked;
        PairLedger {
            kernel_a: kernel_a.to_string(),
            kernel_b: kernel_b.to_string(),
            t_a,
            t_b,
            t_pair,
            alpha,
            excess,
            deltas,
            d_parked,
            residual,
        }
    }

    /// Whether attributed deltas + parked + residual equal the excess.
    /// True by construction; exported so tests assert the invariant on
    /// round-tripped or hand-built ledgers too.
    pub fn is_exact(&self) -> bool {
        self.deltas.iter().sum::<i64>() + self.d_parked + self.residual == self.excess
    }

    /// The interference cause with the largest positive delta, or
    /// `"none"` when no cause added cycles. Ties break toward the
    /// earlier [`STALL_KINDS`] entry for determinism.
    pub fn dominant_stall(&self) -> &'static str {
        let mut best = "none";
        let mut best_delta = 0i64;
        for (i, &d) in self.deltas.iter().enumerate() {
            if d > best_delta {
                best = STALL_KINDS[i];
                best_delta = d;
            }
        }
        best
    }
}

/// The α-attribution report: one [`PairLedger`] per measured kernel
/// pair, plus the aggregate surfaces (`render_text`, `to_json`,
/// `export_metrics`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlphaReport {
    /// Per-pair ledgers in measurement order (the order is part of the
    /// byte-determinism contract).
    pub pairs: Vec<PairLedger>,
}

impl AlphaReport {
    /// Mean measured α across pairs (`None` when empty).
    pub fn mean_alpha(&self) -> Option<f64> {
        if self.pairs.is_empty() {
            return None;
        }
        Some(self.pairs.iter().map(|p| p.alpha).sum::<f64>() / self.pairs.len() as f64)
    }

    /// The pair with the largest excess (the worst interference victim).
    pub fn worst(&self) -> Option<&PairLedger> {
        self.pairs.iter().max_by_key(|p| p.excess)
    }

    /// Total attributed cycles per cause across all pairs, clamped at
    /// zero (counters cannot go down), in [`STALL_KINDS`] order.
    pub fn attributed_totals(&self) -> [u64; 5] {
        let mut totals = [0u64; 5];
        for p in &self.pairs {
            for (total, delta) in totals.iter_mut().zip(&p.deltas) {
                *total += delta.max(&0).unsigned_abs();
            }
        }
        totals
    }

    /// Human-readable per-pair table with the worst-cause highlight.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "alpha attribution: {} pair(s)", self.pairs.len());
        if self.pairs.is_empty() {
            return out;
        }
        let _ = writeln!(
            out,
            "  {:<22} {:>7} {:>7} {:>7} {:>6}  {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>5}  dominant",
            "pair",
            "t_a",
            "t_b",
            "t_pair",
            "alpha",
            "d_icache",
            "d_dcache",
            "d_fu",
            "d_width",
            "d_branch",
            "d_park",
            "resid",
        );
        for p in &self.pairs {
            let _ = writeln!(
                out,
                "  {:<22} {:>7} {:>7} {:>7} {:>6.3}  {:>8} {:>8} {:>7} {:>7} {:>8} {:>7} {:>5}  {}",
                format!("{}+{}", p.kernel_a, p.kernel_b),
                p.t_a,
                p.t_b,
                p.t_pair,
                p.alpha,
                p.deltas[0],
                p.deltas[1],
                p.deltas[2],
                p.deltas[3],
                p.deltas[4],
                p.d_parked,
                p.residual,
                p.dominant_stall()
            );
        }
        if let Some(m) = self.mean_alpha() {
            let _ = writeln!(out, "  mean alpha {m:.4}");
        }
        if let Some(w) = self.worst() {
            let _ = writeln!(
                out,
                "  worst pair {}+{}: excess {} cycle(s), dominant cause {}",
                w.kernel_a,
                w.kernel_b,
                w.excess,
                w.dominant_stall()
            );
        }
        out
    }

    /// Machine-readable report under the shared `vds.report.v1`
    /// envelope, kind `alpha` (no trailing newline).
    pub fn to_json(&self) -> String {
        let pairs: Vec<String> = self
            .pairs
            .iter()
            .map(|p| {
                JsonObj::new()
                    .str("kernel_a", &p.kernel_a)
                    .str("kernel_b", &p.kernel_b)
                    .u64("t_a", p.t_a)
                    .u64("t_b", p.t_b)
                    .u64("t_pair", p.t_pair)
                    .f64("alpha", p.alpha)
                    .raw("excess", &p.excess.to_string())
                    .raw("d_icache", &p.deltas[0].to_string())
                    .raw("d_dcache", &p.deltas[1].to_string())
                    .raw("d_fu", &p.deltas[2].to_string())
                    .raw("d_width", &p.deltas[3].to_string())
                    .raw("d_branch", &p.deltas[4].to_string())
                    .raw("d_parked", &p.d_parked.to_string())
                    .raw("residual", &p.residual.to_string())
                    .str("dominant_stall", p.dominant_stall())
                    .finish()
            })
            .collect();
        let mut obj = JsonObj::report("alpha").u64("pairs", self.pairs.len() as u64);
        match self.mean_alpha() {
            Some(m) => obj = obj.f64("mean_alpha", m),
            None => obj = obj.raw("mean_alpha", "null"),
        }
        match self.worst() {
            Some(w) => {
                obj = obj
                    .str("worst_pair", &format!("{}+{}", w.kernel_a, w.kernel_b))
                    .str("worst_cause", w.dominant_stall());
            }
            None => {
                obj = obj.raw("worst_pair", "null").raw("worst_cause", "null");
            }
        }
        obj.raw("ledger", &json_array(&pairs)).finish()
    }

    /// Export the ledger into a registry: `smt.alpha` gauge (mean α),
    /// `alpha.stall.<cause>` counters (total attributed cycles per
    /// cause) and the `alpha_excess_cycles` histogram (one observation
    /// per pair).
    ///
    /// Counters are only minted here — on report/CLI paths — never on
    /// conformance-style re-exports, so bench `work_units` accounting
    /// stays untouched.
    pub fn export_metrics(&self, reg: &mut Registry) {
        if let Some(m) = self.mean_alpha() {
            reg.gauge("smt.alpha", m);
        }
        let totals = self.attributed_totals();
        for (i, kind) in STALL_KINDS.iter().enumerate() {
            reg.count(&format!("alpha.stall.{kind}"), totals[i]);
        }
        for p in &self.pairs {
            reg.observe_hist("alpha_excess_cycles", p.excess.max(0) as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cycles: u64, issued: u64, stalls: [u64; 5], parked: u64) -> CycleSnapshot {
        CycleSnapshot {
            cycles,
            issued_cycles: issued,
            stall_icache: stalls[0],
            stall_dcache: stalls[1],
            stall_fu: stalls[2],
            stall_width: stalls[3],
            stall_branch: stalls[4],
            parked,
        }
    }

    #[test]
    fn conservation_holds_for_balanced_snapshot() {
        let s = snap(100, 60, [10, 10, 5, 5, 5], 5);
        assert!(s.is_conserved());
        assert_eq!(s.accounted(), 100);
        let broken = snap(101, 60, [10, 10, 5, 5, 5], 5);
        assert!(!broken.is_conserved());
    }

    #[test]
    fn attribution_sums_exactly_to_excess() {
        // Critical thread A: solo 100 cycles, co-run 130 — 30 excess,
        // explained by +20 dcache, +8 width, +2 parked.
        let solo_a = snap(100, 60, [10, 10, 5, 5, 5], 5);
        let co_a = snap(130, 60, [10, 30, 5, 13, 5], 7);
        let solo_b = snap(80, 50, [5, 10, 5, 5, 5], 0);
        let co_b = snap(130, 50, [5, 20, 5, 10, 5], 35);
        let l = PairLedger::attribute("a", "b", solo_a, solo_b, co_a, co_b);
        assert_eq!(l.t_pair, 130);
        assert_eq!(l.excess, 30);
        assert_eq!(l.deltas, [0, 20, 0, 8, 0]);
        assert_eq!(l.d_parked, 2);
        assert_eq!(l.residual, 0);
        assert!(l.is_exact());
        assert_eq!(l.dominant_stall(), "dcache");
        assert!((l.alpha - 130.0 / 180.0).abs() < 1e-12);
    }

    #[test]
    fn residual_absorbs_unexplained_cycles() {
        let solo_a = snap(100, 60, [10, 10, 5, 5, 5], 5);
        // 30 excess but only 10 extra dcache stalls accounted (synthetic
        // non-conserved snapshot): residual carries the other 20.
        let co_a = snap(130, 60, [10, 20, 5, 5, 5], 5);
        let solo_b = snap(80, 50, [5, 10, 5, 5, 5], 0);
        let co_b = snap(130, 50, [5, 10, 5, 5, 5], 50);
        let l = PairLedger::attribute("a", "b", solo_a, solo_b, co_a, co_b);
        assert_eq!(l.residual, 20);
        assert!(l.is_exact());
    }

    #[test]
    fn dominant_stall_is_none_when_no_cause_added_cycles() {
        let solo = snap(100, 60, [10, 10, 5, 5, 5], 5);
        let l = PairLedger::attribute("a", "a", solo, solo, solo, solo);
        assert_eq!(l.excess, 0);
        assert_eq!(l.dominant_stall(), "none");
        assert_eq!(l.residual, 0);
    }

    #[test]
    fn report_surfaces_are_deterministic() {
        let solo_a = snap(100, 60, [10, 10, 5, 5, 5], 5);
        let co_a = snap(130, 60, [10, 30, 5, 13, 5], 7);
        let solo_b = snap(80, 50, [5, 10, 5, 5, 5], 0);
        let co_b = snap(130, 50, [5, 20, 5, 10, 5], 35);
        let r = AlphaReport {
            pairs: vec![PairLedger::attribute(
                "vecsum", "crc", solo_a, solo_b, co_a, co_b,
            )],
        };
        assert_eq!(r.render_text(), r.render_text());
        assert_eq!(r.to_json(), r.to_json());
        let j = r.to_json();
        assert!(j.starts_with("{\"schema\":\"vds.report.v1\",\"kind\":\"alpha\""));
        assert!(j.contains("\"dominant_stall\":\"dcache\""));
        assert!(r.render_text().contains("worst pair vecsum+crc"));

        let mut reg = Registry::new();
        r.export_metrics(&mut reg);
        assert_eq!(reg.counter("alpha.stall.dcache"), 20);
        assert_eq!(reg.counter("alpha.stall.width"), 8);
        assert!(reg.gauge_value("smt.alpha").is_some());
        assert!(reg.histogram("alpha_excess_cycles").is_some());
    }

    #[test]
    fn empty_report_renders_without_panicking() {
        let r = AlphaReport::default();
        assert!(r.mean_alpha().is_none());
        assert!(r.worst().is_none());
        assert!(r.render_text().contains("0 pair(s)"));
        assert!(r.to_json().contains("\"mean_alpha\":null"));
        let mut reg = Registry::new();
        r.export_metrics(&mut reg);
        assert!(reg.gauge_value("smt.alpha").is_none());
    }
}
