//! The execution flight recorder: a deterministic, append-only journal of
//! per-round engine decisions.
//!
//! Every simulated round of a duplex run produces one [`RoundEntry`]:
//! round index, per-version 128-bit state digests, the comparator verdict,
//! the scheduler decision, the recovery action taken and any injected
//! fault. A [`Journal`] is a schema-versioned header plus the entry list,
//! serialised as JSON lines ([`Journal::to_jsonl`] /
//! [`Journal::from_jsonl`]) with the same determinism contract as every
//! other export in this crate: byte-identical for a fixed seed regardless
//! of worker count, provided parallel shards are merged in a fixed order.
//!
//! Two journals of the same run can be compared with
//! [`Journal::first_divergence`], which binary-searches cumulative line
//! digests to the first differing entry and names the field that differs —
//! the primitive behind `vds audit diff`.
//!
//! The digest type lives here (rather than in `vds-checkpoint`, which sits
//! higher in the dependency stack) so that every backend can stamp state
//! digests into journal entries; `vds-checkpoint` re-exports it as its
//! `StateDigest`.

use crate::registry::{fmt_f64, json_escape, Registry};
use std::fmt::Write as _;

/// Journal schema version; bump when the header or entry layout changes.
/// Readers reject journals with a schema they do not understand.
///
/// v2 added per-fault lifecycle fields (`fault_id`, `fault_outcome`) so
/// forensics reports can attribute detections to individual injections.
pub const JOURNAL_SCHEMA: u32 = 2;

// ---------------------------------------------------------------------------
// 128-bit state digests
// ---------------------------------------------------------------------------

/// A 128-bit state digest (two independent 64-bit halves).
///
/// The VDS state comparison must never report "equal" for different
/// outputs (a false negative masks a fault), so the digest combines FNV-1a
/// with a second, structurally different mix — a corruption would need to
/// collide both 64-bit functions simultaneously to slip through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest128 {
    /// FNV-1a half.
    pub fnv: u64,
    /// Mix half (splitmix-style avalanche over a running state).
    pub mix: u64,
}

impl Digest128 {
    /// Digest of an empty input.
    pub fn empty() -> Self {
        Digester128::new().finish()
    }

    /// Parse the 32-hex-character form produced by [`std::fmt::Display`].
    pub fn parse_hex(s: &str) -> Option<Digest128> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let fnv = u64::from_str_radix(&s[..16], 16).ok()?;
        let mix = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Digest128 { fnv, mix })
    }
}

impl std::fmt::Display for Digest128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.fnv, self.mix)
    }
}

/// Incremental [`Digest128`] builder over 32-bit words.
#[derive(Debug, Clone)]
pub struct Digester128 {
    fnv: u64,
    mix: u64,
    count: u64,
}

impl Default for Digester128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digester128 {
    /// Fresh digester.
    pub fn new() -> Self {
        Digester128 {
            fnv: 0xcbf2_9ce4_8422_2325,
            mix: 0x9E37_79B9_7F4A_7C15,
            count: 0,
        }
    }

    /// Absorb one 32-bit word.
    #[inline]
    pub fn push_word(&mut self, w: u32) {
        self.fnv = Self::fnv_word(self.fnv, w);
        self.mix = Self::mix_word(self.mix, w);
        self.count += 1;
    }

    #[inline(always)]
    fn fnv_word(fnv: u64, w: u32) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let [b0, b1, b2, b3] = w.to_le_bytes();
        let fnv = (fnv ^ u64::from(b0)).wrapping_mul(FNV_PRIME);
        let fnv = (fnv ^ u64::from(b1)).wrapping_mul(FNV_PRIME);
        let fnv = (fnv ^ u64::from(b2)).wrapping_mul(FNV_PRIME);
        (fnv ^ u64::from(b3)).wrapping_mul(FNV_PRIME)
    }

    #[inline(always)]
    fn mix_word(mix: u64, w: u32) -> u64 {
        let mut z = mix ^ (u64::from(w)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        z.rotate_left(17) ^ (z >> 31)
    }

    /// Absorb a word slice. Batched: the running state lives in locals
    /// for the whole slice (one load/store pair instead of one per word,
    /// with the per-byte FNV round unrolled), which is where the engines'
    /// per-round window digests spend their time at sweep scale. Digest
    /// values are bit-identical to repeated [`Self::push_word`].
    pub fn push_words(&mut self, ws: &[u32]) {
        let mut fnv = self.fnv;
        let mut mix = self.mix;
        for &w in ws {
            fnv = Self::fnv_word(fnv, w);
            mix = Self::mix_word(mix, w);
        }
        self.fnv = fnv;
        self.mix = mix;
        self.count += ws.len() as u64;
    }

    /// Absorb a byte string (each byte widened to one word, so byte
    /// streams and word streams cannot alias each other by accident).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push_word(u32::from(b));
        }
    }

    /// Finalise (length-aware, so prefixes don't collide with wholes).
    pub fn finish(&self) -> Digest128 {
        let mut d = self.clone();
        d.push_word(self.count as u32);
        d.push_word((self.count >> 32) as u32);
        Digest128 {
            fnv: d.fnv,
            mix: d.mix,
        }
    }
}

/// One-shot digest of a word slice.
pub fn digest_words128(ws: &[u32]) -> Digest128 {
    let mut d = Digester128::new();
    d.push_words(ws);
    d.finish()
}

// ---------------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------------

/// The comparator's verdict for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Both versions produced identical state digests.
    Match,
    /// The state digests differ: a latent error became detectable.
    Mismatch,
    /// A version trapped (illegal instruction / access) during the round.
    Trap,
    /// A version exceeded its round budget (hang watchdog).
    Hang,
}

impl Verdict {
    /// Canonical lower-case spelling used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Match => "match",
            Verdict::Mismatch => "mismatch",
            Verdict::Trap => "trap",
            Verdict::Hang => "hang",
        }
    }

    /// Inverse of [`Verdict::as_str`].
    pub fn parse(s: &str) -> Option<Verdict> {
        Some(match s {
            "match" => Verdict::Match,
            "mismatch" => Verdict::Mismatch,
            "trap" => Verdict::Trap,
            "hang" => Verdict::Hang,
            _ => return None,
        })
    }
}

/// What the engine did with the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Round committed (digests matched).
    Commit,
    /// Round committed and a checkpoint was taken at the boundary.
    Checkpoint,
    /// Detection triggered recovery; the vote succeeded and the round
    /// (plus any roll-forward progress) was committed.
    Recover,
    /// Detection triggered recovery but the vote failed; state was rolled
    /// back to the last checkpoint.
    Rollback,
    /// The fail-safe stall watchdog shut the system down on this round.
    Shutdown,
}

impl Action {
    /// Canonical lower-case spelling used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Action::Commit => "commit",
            Action::Checkpoint => "checkpoint",
            Action::Recover => "recover",
            Action::Rollback => "rollback",
            Action::Shutdown => "shutdown",
        }
    }

    /// Inverse of [`Action::as_str`].
    pub fn parse(s: &str) -> Option<Action> {
        Some(match s {
            "commit" => Action::Commit,
            "checkpoint" => Action::Checkpoint,
            "recover" => Action::Recover,
            "rollback" => Action::Rollback,
            "shutdown" => Action::Shutdown,
            _ => return None,
        })
    }
}

/// The journal header: enough configuration to re-execute the run
/// (`vds replay`) and to refuse to diff journals of different runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalHeader {
    /// Schema version ([`JOURNAL_SCHEMA`] for journals written here).
    pub schema: u32,
    /// Producing backend: `micro`, `abstract`, `campaign`, `desim`.
    pub backend: String,
    /// Duplex scheme label (e.g. `smt-prob`).
    pub scheme: String,
    /// Root RNG seed of the run.
    pub seed: u64,
    /// Rounds per checkpoint interval (the paper's `s`).
    pub s: u32,
    /// Requested committed rounds (or trials for campaign journals).
    pub target_rounds: u64,
    /// Free-form key/value pairs (fault spec, trial count, …), kept in
    /// insertion order so serialisation is deterministic.
    pub meta: Vec<(String, String)>,
}

impl JournalHeader {
    /// Header for the current schema.
    pub fn new(backend: &str, scheme: &str, seed: u64, s: u32, target_rounds: u64) -> Self {
        JournalHeader {
            schema: JOURNAL_SCHEMA,
            backend: backend.to_string(),
            scheme: scheme.to_string(),
            seed,
            s,
            target_rounds,
            meta: Vec::new(),
        }
    }

    /// Attach a meta key/value pair (builder style).
    pub fn with_meta(mut self, key: &str, value: &str) -> Self {
        self.meta.push((key.to_string(), value.to_string()));
        self
    }

    /// Look up a meta value by key.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn to_json_line(&self) -> String {
        let mut line = format!(
            "{{\"kind\":\"journal_header\",\"schema\":{},\"backend\":\"{}\",\"scheme\":\"{}\",\"seed\":{},\"s\":{},\"target_rounds\":{},\"meta\":{{",
            self.schema,
            json_escape(&self.backend),
            json_escape(&self.scheme),
            self.seed,
            self.s,
            self.target_rounds,
        );
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        line.push_str("}}");
        line
    }
}

/// One journal entry: everything the engine decided in one round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundEntry {
    /// Global sequence number, reassigned on merge so the merged journal
    /// is a single gap-free sequence.
    pub seq: u64,
    /// Lane: campaign trial index; 0 for single-run journals.
    pub lane: u64,
    /// Round index within the current checkpoint interval (1-based).
    pub round: u64,
    /// Total committed rounds after this entry's action.
    pub committed: u64,
    /// Simulated time at the round boundary (cycles or seconds,
    /// backend-dependent).
    pub sim_time: f64,
    /// State digest of version 1 at the comparison point.
    pub d1: Digest128,
    /// State digest of version 2 at the comparison point.
    pub d2: Digest128,
    /// Comparator verdict.
    pub verdict: Verdict,
    /// Scheduler decision for the round (e.g. `coschedule[v0,v1]`).
    pub sched: String,
    /// What the engine did with the round.
    pub action: Action,
    /// Roll-forward rounds salvaged by a successful recovery (0 unless
    /// `action` is `recover`).
    pub rollforward: u32,
    /// Fault injected at this round, canonical spec string, if any.
    pub fault: Option<String>,
    /// Stable per-lane fault ordinal assigned at injection (present iff
    /// `fault` is). The pair `(lane, fault_id)` names one injected fault
    /// for its whole lifecycle: injection → detection → resolution.
    pub fault_id: Option<u64>,
    /// Terminal outcome stamped at end of run for faults that were never
    /// detected: `masked` (corrupted state overwritten before any
    /// comparison saw it) or `escaped` (still latent at run end).
    /// Detected faults carry no outcome — detection is inferred from the
    /// first non-`match` verdict in the lane at or after the injection.
    pub fault_outcome: Option<String>,
}

impl RoundEntry {
    fn to_json_line(&self) -> String {
        let mut line = format!(
            "{{\"seq\":{},\"lane\":{},\"round\":{},\"committed\":{},\"sim_time\":{},\"d1\":\"{}\",\"d2\":\"{}\",\"verdict\":\"{}\",\"sched\":\"{}\",\"action\":\"{}\",\"rollforward\":{}",
            self.seq,
            self.lane,
            self.round,
            self.committed,
            fmt_f64(self.sim_time),
            self.d1,
            self.d2,
            self.verdict.as_str(),
            json_escape(&self.sched),
            self.action.as_str(),
            self.rollforward,
        );
        if let Some(fault) = &self.fault {
            let _ = write!(line, ",\"fault\":\"{}\"", json_escape(fault));
        }
        if let Some(id) = self.fault_id {
            let _ = write!(line, ",\"fault_id\":{id}");
        }
        if let Some(outcome) = &self.fault_outcome {
            let _ = write!(line, ",\"fault_outcome\":\"{}\"", json_escape(outcome));
        }
        line.push('}');
        line
    }

    /// Compare two entries field by field; the first differing field's
    /// name and both rendered values, if any.
    fn first_field_diff(&self, other: &RoundEntry) -> Option<(&'static str, String, String)> {
        if self.lane != other.lane {
            return Some(("lane", self.lane.to_string(), other.lane.to_string()));
        }
        if self.round != other.round {
            return Some(("round", self.round.to_string(), other.round.to_string()));
        }
        if self.committed != other.committed {
            return Some((
                "committed",
                self.committed.to_string(),
                other.committed.to_string(),
            ));
        }
        if self.sim_time != other.sim_time {
            return Some(("sim_time", fmt_f64(self.sim_time), fmt_f64(other.sim_time)));
        }
        if self.d1 != other.d1 {
            return Some((
                "d1 (version 1 digest)",
                self.d1.to_string(),
                other.d1.to_string(),
            ));
        }
        if self.d2 != other.d2 {
            return Some((
                "d2 (version 2 digest)",
                self.d2.to_string(),
                other.d2.to_string(),
            ));
        }
        if self.verdict != other.verdict {
            return Some((
                "verdict",
                self.verdict.as_str().to_string(),
                other.verdict.as_str().to_string(),
            ));
        }
        if self.sched != other.sched {
            return Some(("sched", self.sched.clone(), other.sched.clone()));
        }
        if self.action != other.action {
            return Some((
                "action",
                self.action.as_str().to_string(),
                other.action.as_str().to_string(),
            ));
        }
        if self.rollforward != other.rollforward {
            return Some((
                "rollforward",
                self.rollforward.to_string(),
                other.rollforward.to_string(),
            ));
        }
        if self.fault != other.fault {
            let show = |f: &Option<String>| f.clone().unwrap_or_else(|| "(none)".to_string());
            return Some(("fault", show(&self.fault), show(&other.fault)));
        }
        if self.fault_id != other.fault_id {
            let show = |f: &Option<u64>| {
                f.map(|v| v.to_string())
                    .unwrap_or_else(|| "(none)".to_string())
            };
            return Some(("fault_id", show(&self.fault_id), show(&other.fault_id)));
        }
        if self.fault_outcome != other.fault_outcome {
            let show = |f: &Option<String>| f.clone().unwrap_or_else(|| "(none)".to_string());
            return Some((
                "fault_outcome",
                show(&self.fault_outcome),
                show(&other.fault_outcome),
            ));
        }
        if self.seq != other.seq {
            return Some(("seq", self.seq.to_string(), other.seq.to_string()));
        }
        None
    }
}

/// A divergence report: where two journals first disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Entry index of the first divergent entry (0-based; `usize::MAX`
    /// never occurs — a header mismatch uses index 0 with field `header`).
    pub index: usize,
    /// Lane of the divergent entry (from whichever journal has it).
    pub lane: u64,
    /// Round of the divergent entry.
    pub round: u64,
    /// Name of the first differing field (`header`, `length`, or an entry
    /// field such as `d2 (version 2 digest)`).
    pub field: String,
    /// Rendered value in journal A.
    pub a: String,
    /// Rendered value in journal B.
    pub b: String,
    /// Up to two entries of surrounding context from journal A, rendered
    /// as JSON lines (the divergent entry, if present, is the last-or-
    /// middle line).
    pub context_a: Vec<String>,
    /// Surrounding context from journal B.
    pub context_b: Vec<String>,
}

impl Divergence {
    /// Human-readable multi-line report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "journals diverge at entry {} (lane {}, round {})",
            self.index, self.lane, self.round
        );
        let _ = writeln!(out, "  first differing field: {}", self.field);
        let _ = writeln!(out, "  a: {}", self.a);
        let _ = writeln!(out, "  b: {}", self.b);
        if !self.context_a.is_empty() {
            let _ = writeln!(out, "  context (a):");
            for line in &self.context_a {
                let _ = writeln!(out, "    {line}");
            }
        }
        if !self.context_b.is_empty() {
            let _ = writeln!(out, "  context (b):");
            for line in &self.context_b {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }
}

/// The flight recorder: a header plus an append-only entry list.
///
/// A disabled journal (the default) ignores pushes, so engines can thread
/// journal recording unconditionally at the cost of one branch per round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    enabled: bool,
    header: Option<JournalHeader>,
    entries: Vec<RoundEntry>,
}

impl Journal {
    /// A journal that ignores everything.
    pub fn disabled() -> Self {
        Journal::default()
    }

    /// An enabled, empty journal for the described run.
    pub fn enabled(header: JournalHeader) -> Self {
        Journal {
            enabled: true,
            header: Some(header),
            entries: Vec::new(),
        }
    }

    /// Whether this journal keeps what it is given.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The header, if the journal was enabled with one.
    pub fn header(&self) -> Option<&JournalHeader> {
        self.header.as_ref()
    }

    /// Append an entry; its `seq` is assigned (entries are gap-free).
    pub fn push(&mut self, mut entry: RoundEntry) {
        if self.enabled {
            entry.seq = self.entries.len() as u64;
            self.entries.push(entry);
        }
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[RoundEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of rounds whose comparator verdict was not `match`.
    pub fn divergences(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.verdict != Verdict::Match)
            .count() as u64
    }

    /// Round index of the most recent non-`match` verdict, if any.
    pub fn last_divergence_round(&self) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.verdict != Verdict::Match)
            .map(|e| e.round)
    }

    /// Append another journal's entries (lanes preserved, `seq`
    /// reassigned). Merge shards in a fixed order for bit-reproducibility.
    pub fn extend_from(&mut self, other: &Journal) {
        if self.enabled {
            for e in &other.entries {
                self.push(e.clone());
            }
        }
    }

    /// Stamp the terminal outcome (`masked` / `escaped`) onto the
    /// fault-bearing entry with the given `fault_id`. Called by engines at
    /// end of run, before lane adoption, so the id is lane-agnostic.
    /// Returns whether a matching entry was found.
    pub fn resolve_fault(&mut self, fault_id: u64, outcome: &str) -> bool {
        let mut found = false;
        for e in &mut self.entries {
            if e.fault.is_some() && e.fault_id == Some(fault_id) {
                e.fault_outcome = Some(outcome.to_string());
                found = true;
            }
        }
        found
    }

    /// Append another journal's entries with every lane overridden (a
    /// campaign adopting a single-run journal as trial `lane`).
    pub fn adopt(&mut self, other: &Journal, lane: u64) {
        if self.enabled {
            for e in &other.entries {
                let mut e = e.clone();
                e.lane = lane;
                self.push(e);
            }
        }
    }

    /// Serialise: one header line, then one line per entry.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(h) = &self.header {
            out.push_str(&h.to_json_line());
            out.push('\n');
        }
        for e in &self.entries {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Parse a journal back from its JSONL form.
    pub fn from_jsonl(text: &str) -> Result<Journal, String> {
        let mut header = None;
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let obj = v
                .as_object()
                .ok_or_else(|| format!("line {}: not a JSON object", lineno + 1))?;
            if json::get_str(obj, "kind") == Some("journal_header") {
                let schema = json::get_u64(obj, "schema")
                    .ok_or_else(|| format!("line {}: header missing schema", lineno + 1))?
                    as u32;
                if schema != JOURNAL_SCHEMA {
                    return Err(format!(
                        "unsupported journal schema {schema} (reader supports {JOURNAL_SCHEMA})"
                    ));
                }
                let mut h = JournalHeader::new(
                    json::get_str(obj, "backend").unwrap_or(""),
                    json::get_str(obj, "scheme").unwrap_or(""),
                    json::get_u64(obj, "seed").unwrap_or(0),
                    json::get_u64(obj, "s").unwrap_or(0) as u32,
                    json::get_u64(obj, "target_rounds").unwrap_or(0),
                );
                if let Some(json::Json::Obj(meta)) = json::get(obj, "meta") {
                    for (k, v) in meta {
                        if let json::Json::Str(s) = v {
                            h.meta.push((k.clone(), s.clone()));
                        }
                    }
                }
                header = Some(h);
                continue;
            }
            if header.is_none() {
                return Err(format!(
                    "line {}: journal entry before header (unversioned journals are refused; re-record with schema {JOURNAL_SCHEMA})",
                    lineno + 1
                ));
            }
            let field_err =
                |name: &str| format!("line {}: missing or malformed `{name}`", lineno + 1);
            let digest = |name: &str| -> Result<Digest128, String> {
                json::get_str(obj, name)
                    .and_then(Digest128::parse_hex)
                    .ok_or_else(|| field_err(name))
            };
            entries.push(RoundEntry {
                seq: json::get_u64(obj, "seq").ok_or_else(|| field_err("seq"))?,
                lane: json::get_u64(obj, "lane").ok_or_else(|| field_err("lane"))?,
                round: json::get_u64(obj, "round").ok_or_else(|| field_err("round"))?,
                committed: json::get_u64(obj, "committed").ok_or_else(|| field_err("committed"))?,
                sim_time: json::get_f64(obj, "sim_time").ok_or_else(|| field_err("sim_time"))?,
                d1: digest("d1")?,
                d2: digest("d2")?,
                verdict: json::get_str(obj, "verdict")
                    .and_then(Verdict::parse)
                    .ok_or_else(|| field_err("verdict"))?,
                sched: json::get_str(obj, "sched")
                    .ok_or_else(|| field_err("sched"))?
                    .to_string(),
                action: json::get_str(obj, "action")
                    .and_then(Action::parse)
                    .ok_or_else(|| field_err("action"))?,
                rollforward: json::get_u64(obj, "rollforward")
                    .ok_or_else(|| field_err("rollforward"))? as u32,
                fault: json::get_str(obj, "fault").map(str::to_string),
                fault_id: json::get_u64(obj, "fault_id"),
                fault_outcome: json::get_str(obj, "fault_outcome").map(str::to_string),
            });
        }
        Ok(Journal {
            enabled: true,
            header,
            entries,
        })
    }

    /// [`Journal::from_jsonl`], tolerating a torn final line.
    ///
    /// A kill mid-append leaves exactly one incomplete line at the end
    /// of an otherwise valid JSONL file — the same failure mode the
    /// sweep resume journal truncates away. When the final non-empty
    /// line, and only that line, fails to parse *and* the retained
    /// prefix still carries a header, the tear is dropped and described
    /// in the returned warning; corruption anywhere else (including a
    /// torn header) still fails with the original error.
    pub fn from_jsonl_tolerant(text: &str) -> Result<(Journal, Option<String>), String> {
        let err = match Journal::from_jsonl(text) {
            Ok(j) => return Ok((j, None)),
            Err(e) => e,
        };
        let lines: Vec<&str> = text.lines().collect();
        let Some(last) = lines.iter().rposition(|l| !l.trim().is_empty()) else {
            return Err(err);
        };
        if !err.starts_with(&format!("line {}:", last + 1)) {
            return Err(err);
        }
        let retained = lines[..last].join("\n");
        let j = Journal::from_jsonl(&retained).map_err(|_| err.clone())?;
        if j.header.is_none() {
            return Err(err);
        }
        let warn = format!(
            "dropped torn final journal line {} ({} entries retained)",
            last + 1,
            j.len()
        );
        Ok((j, Some(warn)))
    }

    /// Find the first entry where the two journals disagree.
    ///
    /// Headers are compared first (field `header`). Entry comparison
    /// binary-searches over cumulative per-line digests — `O(n)` digest
    /// precomputation, then `O(log n)` probes — so the search cost is
    /// dominated by one pass over each journal, not by repeated prefix
    /// comparisons. Returns `None` when the journals are identical.
    pub fn first_divergence(&self, other: &Journal) -> Option<Divergence> {
        if self.header != other.header {
            let show = |h: &Option<JournalHeader>| match h {
                Some(h) => h.to_json_line(),
                None => "(no header)".to_string(),
            };
            return Some(Divergence {
                index: 0,
                lane: 0,
                round: 0,
                field: "header".to_string(),
                a: show(&self.header),
                b: show(&other.header),
                context_a: Vec::new(),
                context_b: Vec::new(),
            });
        }
        let common = self.entries.len().min(other.entries.len());
        // Cumulative digests: cum[k] covers the first k serialised lines,
        // making "prefixes of length k agree" an O(1) probe.
        let cumulative = |j: &Journal| -> Vec<Digest128> {
            let mut cum = Vec::with_capacity(common + 1);
            let mut d = Digester128::new();
            cum.push(d.finish());
            for e in &j.entries[..common] {
                d.push_bytes(e.to_json_line().as_bytes());
                cum.push(d.finish());
            }
            cum
        };
        let (ca, cb) = (cumulative(self), cumulative(other));
        // Largest k in [0, common] with equal prefixes.
        let (mut lo, mut hi) = (0usize, common);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if ca[mid] == cb[mid] {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let k = lo;
        if k == common {
            if self.entries.len() == other.entries.len() {
                return None;
            }
            // One journal is a strict prefix of the other.
            let (longer, which) = if self.entries.len() > other.entries.len() {
                (&self.entries, "a")
            } else {
                (&other.entries, "b")
            };
            let extra = &longer[common];
            return Some(Divergence {
                index: common,
                lane: extra.lane,
                round: extra.round,
                field: "length".to_string(),
                a: format!(
                    "{} entries (journal {which} has extra entries)",
                    self.entries.len()
                ),
                b: format!("{} entries", other.entries.len()),
                context_a: context_lines(&self.entries, common),
                context_b: context_lines(&other.entries, common),
            });
        }
        let (ea, eb) = (&self.entries[k], &other.entries[k]);
        let (field, a, b) = ea
            .first_field_diff(eb)
            .map(|(f, a, b)| (f.to_string(), a, b))
            .unwrap_or_else(|| ("entry".to_string(), ea.to_json_line(), eb.to_json_line()));
        Some(Divergence {
            index: k,
            lane: ea.lane,
            round: ea.round,
            field,
            a,
            b,
            context_a: context_lines(&self.entries, k),
            context_b: context_lines(&other.entries, k),
        })
    }

    /// Compact summary for `/journal`, `/progress` and `vds stats --json`:
    /// `{"rounds":…,"bytes":…,"divergences":…,"last_divergence":…}`.
    pub fn summary_json(&self) -> String {
        let last = match self.last_divergence_round() {
            Some(r) => r.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"rounds\":{},\"bytes\":{},\"divergences\":{},\"last_divergence\":{last}}}",
            self.len(),
            self.to_jsonl().len(),
            self.divergences(),
        )
    }

    /// Export journal health into a metrics registry. Call once at the
    /// top level (after shard merging) so counters are not double counted.
    pub fn export_metrics(&self, reg: &mut Registry) {
        if !self.enabled {
            return;
        }
        reg.count("journal.rounds", self.len() as u64);
        reg.count("journal.bytes", self.to_jsonl().len() as u64);
        reg.count("journal.divergences", self.divergences());
        if let Some(r) = self.last_divergence_round() {
            reg.gauge("journal.last_divergence_round", r as f64);
        }
    }
}

/// Up to two rendered entries around index `at` (the entry before, and the
/// entry at `at` when present).
fn context_lines(entries: &[RoundEntry], at: usize) -> Vec<String> {
    let lo = at.saturating_sub(1);
    let hi = (at + 1).min(entries.len());
    entries[lo..hi].iter().map(|e| e.to_json_line()).collect()
}

/// A minimal JSON reader for the journal's own output: objects, strings,
/// numbers, booleans and null (arrays are not produced by the writer and
/// are rejected). Numbers keep their raw spelling so 64-bit integers
/// round-trip exactly.
mod json {
    /// Parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A number, raw token preserved.
        Num(String),
        /// A string, unescaped.
        Str(String),
        /// An object, insertion order preserved.
        Obj(Vec<(String, Json)>),
    }

    pub fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_str<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a str> {
        match get(obj, key) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    pub fn get_u64(obj: &[(String, Json)], key: &str) -> Option<u64> {
        match get(obj, key) {
            Some(Json::Num(raw)) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn get_f64(obj: &[(String, Json)], key: &str) -> Option<f64> {
        match get(obj, key) {
            Some(Json::Num(raw)) => raw.parse().ok(),
            _ => None,
        }
    }

    impl Json {
        pub fn as_object(&self) -> Option<&[(String, Json)]> {
            match self {
                Json::Obj(fields) => Some(fields),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'{') => parse_object(b, pos),
            Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
            Some(b'n') => parse_lit(b, pos, "null", Json::Null),
            Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
            Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let raw = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf8".to_string())?;
        if raw.parse::<f64>().is_err() {
            return Err(format!("bad number `{raw}` at byte {start}"));
        }
        Ok(Json::Num(raw.to_string()))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        debug_assert_eq!(b[*pos], b'"');
        *pos += 1;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint \\u{hex}"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        debug_assert_eq!(b[*pos], b'{');
        *pos += 1;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected object key at byte {}", *pos));
            }
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected `:` at byte {}", *pos));
            }
            *pos += 1;
            let value = parse_value(b, pos)?;
            fields.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => {
                    *pos += 1;
                }
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(round: u64, verdict: Verdict, action: Action) -> RoundEntry {
        RoundEntry {
            seq: 0,
            lane: 0,
            round,
            committed: round,
            sim_time: round as f64 * 10.0,
            d1: digest_words128(&[round as u32, 1]),
            d2: digest_words128(&[round as u32, if verdict == Verdict::Match { 1 } else { 2 }]),
            verdict,
            sched: "coschedule[v0,v1]".to_string(),
            action,
            rollforward: 0,
            fault: None,
            fault_id: None,
            fault_outcome: None,
        }
    }

    fn sample_journal() -> Journal {
        let header = JournalHeader::new("micro", "smt-prob", 2024, 8, 16)
            .with_meta("fault", "transient:mem:4:9@v2");
        let mut j = Journal::enabled(header);
        j.push(entry(1, Verdict::Match, Action::Commit));
        j.push(entry(2, Verdict::Match, Action::Checkpoint));
        let mut e = entry(3, Verdict::Mismatch, Action::Recover);
        e.rollforward = 2;
        e.fault = Some("transient:mem:4:9@v2".to_string());
        e.fault_id = Some(0);
        j.push(e);
        j.push(entry(4, Verdict::Match, Action::Commit));
        j
    }

    #[test]
    fn digester_matches_reference_values() {
        // Pin the algorithm: these values must match vds-checkpoint's
        // historical digests (it now delegates here).
        let d = digest_words128(&[1, 2, 3]);
        let mut inc = Digester128::new();
        inc.push_words(&[1, 2]);
        inc.push_word(3);
        assert_eq!(inc.finish(), d);
        assert_ne!(digest_words128(&[]), digest_words128(&[0]));
        assert_ne!(digest_words128(&[0]), digest_words128(&[0, 0]));
    }

    #[test]
    fn digest_hex_round_trips() {
        let d = digest_words128(&[7, 8, 9]);
        let hex = d.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(Digest128::parse_hex(&hex), Some(d));
        assert_eq!(Digest128::parse_hex("xyz"), None);
        assert_eq!(Digest128::parse_hex(&hex[..31]), None);
    }

    #[test]
    fn disabled_journal_ignores_pushes() {
        let mut j = Journal::disabled();
        j.push(entry(1, Verdict::Match, Action::Commit));
        assert!(j.is_empty());
        assert!(!j.is_enabled());
        assert_eq!(j.to_jsonl(), "");
    }

    #[test]
    fn jsonl_round_trips_losslessly() {
        let j = sample_journal();
        let text = j.to_jsonl();
        let back = Journal::from_jsonl(&text).expect("parse");
        assert_eq!(back.header(), j.header());
        assert_eq!(back.entries(), j.entries());
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn seq_is_gap_free_after_merge() {
        let mut a = sample_journal();
        let b = sample_journal();
        a.adopt(&b, 7);
        let seqs: Vec<u64> = a.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
        assert!(a.entries()[4..].iter().all(|e| e.lane == 7));
        assert!(a.entries()[..4].iter().all(|e| e.lane == 0));
    }

    #[test]
    fn divergence_counters() {
        let j = sample_journal();
        assert_eq!(j.divergences(), 1);
        assert_eq!(j.last_divergence_round(), Some(3));
        assert_eq!(
            j.summary_json(),
            format!(
                "{{\"rounds\":4,\"bytes\":{},\"divergences\":1,\"last_divergence\":3}}",
                j.to_jsonl().len()
            )
        );
    }

    #[test]
    fn identical_journals_do_not_diverge() {
        let j = sample_journal();
        assert_eq!(j.first_divergence(&j.clone()), None);
    }

    #[test]
    fn first_divergence_pinpoints_entry_and_field() {
        let a = sample_journal();
        let mut b = sample_journal();
        b.entries[2].d2 = digest_words128(&[999]);
        b.entries[2].verdict = Verdict::Match;
        let d = a.first_divergence(&b).expect("diverges");
        assert_eq!(d.index, 2);
        assert_eq!(d.round, 3);
        assert_eq!(d.field, "d2 (version 2 digest)");
        assert!(!d.context_a.is_empty());
        let report = d.report();
        assert!(report.contains("entry 2"));
        assert!(report.contains("d2"));
    }

    #[test]
    fn strict_prefix_reports_length_divergence() {
        let a = sample_journal();
        let mut b = sample_journal();
        b.entries.pop();
        let d = a.first_divergence(&b).expect("diverges");
        assert_eq!(d.index, 3);
        assert_eq!(d.field, "length");
        assert!(d.a.contains("4 entries"));
        assert!(d.b.contains("3 entries"));
    }

    #[test]
    fn header_mismatch_reported_first() {
        let a = sample_journal();
        let mut b = sample_journal();
        b.header.as_mut().unwrap().seed = 9999;
        b.entries[0].round = 42; // masked by the header divergence
        let d = a.first_divergence(&b).expect("diverges");
        assert_eq!(d.field, "header");
    }

    #[test]
    fn unsupported_schema_rejected() {
        let j = sample_journal();
        let text = j.to_jsonl().replace("\"schema\":2", "\"schema\":99");
        let err = Journal::from_jsonl(&text).unwrap_err();
        assert!(err.contains("schema 99"), "{err}");
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        assert!(Journal::from_jsonl("{\"seq\":0}")
            .unwrap_err()
            .contains("line 1"));
        assert!(Journal::from_jsonl("not json")
            .unwrap_err()
            .contains("line 1"));
    }

    #[test]
    fn tolerant_parse_recovers_only_a_torn_final_line() {
        let j = sample_journal();
        let text = j.to_jsonl();

        // Intact input: no warning, identical journal.
        let (back, warn) = Journal::from_jsonl_tolerant(&text).expect("intact");
        assert!(warn.is_none());
        assert_eq!(back.entries(), j.entries());

        // Torn final line (kill mid-append): drop it, warn, keep the rest.
        let torn = format!("{text}{{\"kind\":\"round\",\"seq\":9");
        let (back, warn) = Journal::from_jsonl_tolerant(&torn).expect("torn tail");
        let warn = warn.expect("warns about the drop");
        assert!(warn.contains("torn final journal line"), "{warn}");
        assert_eq!(back.len(), j.len());
        assert_eq!(back.entries(), j.entries());

        // Corruption before the end is not a tear — original error.
        let lines: Vec<&str> = text.lines().collect();
        let mut mid = lines.clone();
        mid[1] = "not json";
        let err = Journal::from_jsonl_tolerant(&mid.join("\n")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");

        // A torn header alone is not recoverable either: there is no
        // valid prefix to keep, so the original error surfaces.
        let half_header = &lines[0][..lines[0].len() / 2];
        let err = Journal::from_jsonl_tolerant(half_header).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn entries_before_header_are_refused() {
        // A v1 (or hand-edited) journal whose entries precede any header
        // is unversioned — refuse it rather than guess at its layout.
        let j = sample_journal();
        let text = j.to_jsonl();
        let headerless: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        let err = Journal::from_jsonl(&headerless).unwrap_err();
        assert!(err.contains("entry before header"), "{err}");
        // An empty input still parses (to a headerless, entry-free
        // journal) so callers keep their own "no journal header" wording.
        let empty = Journal::from_jsonl("").expect("empty parses");
        assert!(empty.header().is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn resolve_fault_stamps_outcome_on_the_injecting_entry() {
        let mut j = sample_journal();
        assert!(j.resolve_fault(0, "escaped"));
        assert!(!j.resolve_fault(7, "masked"));
        let e = &j.entries()[2];
        assert_eq!(e.fault_outcome.as_deref(), Some("escaped"));
        assert!(j.entries()[0].fault_outcome.is_none());
        // The stamped outcome survives a serialisation round trip.
        let back = Journal::from_jsonl(&j.to_jsonl()).expect("parse");
        assert_eq!(back.entries(), j.entries());
    }

    #[test]
    fn export_metrics_counts_rounds_bytes_divergences() {
        let j = sample_journal();
        let mut reg = Registry::new();
        j.export_metrics(&mut reg);
        assert_eq!(reg.counter("journal.rounds"), 4);
        assert_eq!(reg.counter("journal.bytes"), j.to_jsonl().len() as u64);
        assert_eq!(reg.counter("journal.divergences"), 1);
        assert_eq!(reg.gauge_value("journal.last_divergence_round"), Some(3.0));
        // disabled journals export nothing
        let mut reg2 = Registry::new();
        Journal::disabled().export_metrics(&mut reg2);
        assert!(reg2.is_empty());
    }

    #[test]
    fn meta_lookup_and_builder() {
        let h = JournalHeader::new("micro", "smt-prob", 1, 8, 10)
            .with_meta("fault", "none")
            .with_meta("trials", "5");
        assert_eq!(h.meta("fault"), Some("none"));
        assert_eq!(h.meta("trials"), Some("5"));
        assert_eq!(h.meta("missing"), None);
    }

    #[test]
    fn escaped_strings_round_trip() {
        let header = JournalHeader::new("micro", "smt\"prob\\x", 1, 2, 3)
            .with_meta("note", "line\nbreak\tand \"quotes\"");
        let mut j = Journal::enabled(header);
        let mut e = entry(1, Verdict::Match, Action::Commit);
        e.sched = "alt\\er\"nate".to_string();
        j.push(e);
        let back = Journal::from_jsonl(&j.to_jsonl()).expect("parse");
        assert_eq!(back, j);
    }
}
