//! Sim-time spans: well-nested time attribution with deterministic
//! exporters.
//!
//! A [`SpanSet`] records `(begin, end, component, name, tid, fields)`
//! intervals of *simulated* time in a bounded ring buffer, mirroring the
//! [`crate::Trace`] design (always-on, bounded memory, dropped counter).
//! Spans answer the question flat counters cannot: where inside a VDS
//! round does the time go — `round ⊃ compute ⊃ compare ⊃ checkpoint ⊃
//! recovery ⊃ roll-forward` — per hardware thread.
//!
//! Three deterministic exporters:
//!
//! * [`SpanSet::to_chrome_json`] — Chrome trace-event JSON (`ph:"B"/"E"`),
//!   loadable in `chrome://tracing` and Perfetto. One *pid* per component
//!   (backend), one *tid* per hardware thread.
//! * [`SpanSet::to_folded`] — folded-stack self-time lines in the format
//!   `flamegraph.pl` / `inferno` consume (`comp;outer;inner <self>`).
//! * [`SpanSet::rollup_into`] — per-phase `span.<comp>.<name>.total` /
//!   `.self` summaries folded into a metric registry.
//!
//! **Well-nestedness is enforced at export time.** Recording is free-form
//! (any begin/end order, merged shards, clamped ring contents); the
//! exporters run a deterministic sweep per `(component, tid)` lane that
//! clamps every child span into its parent, so every emitted `"E"`
//! matches the innermost open `"B"` and timestamps are non-decreasing per
//! tid — for *any* input. Content is deterministic for a fixed seed and
//! merge order, so export bytes are identical across runs and across
//! worker counts (see `vds-fault`'s logical shards).

use crate::registry::{fmt_f64, json_escape, Registry};
use crate::trace::Value;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Default span capacity for enabled recorders.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// One completed span of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Begin time (simulated units of the emitting backend).
    pub begin: f64,
    /// End time; always `>= begin` after recording.
    pub end: f64,
    /// Emitting component; becomes the Chrome trace *pid*.
    pub component: &'static str,
    /// Phase name, e.g. `"round"`, `"compute"`, `"recovery"`.
    pub name: &'static str,
    /// Hardware-thread lane; becomes the Chrome trace *tid*.
    pub tid: u32,
    /// Ordered key/value payload (Chrome trace `args`).
    pub fields: Vec<(&'static str, Value)>,
}

/// Token returned by [`SpanSet::begin_span`]; closing it completes the
/// span. Dropping a guard without closing leaves the span open — open
/// spans are not exported.
#[must_use = "a span guard must be closed with end_span, or the span is lost"]
#[derive(Debug)]
pub struct SpanGuard {
    pub(crate) id: u64,
}

impl SpanGuard {
    /// The guard handed out by a disabled recorder; closing it is a no-op.
    pub(crate) const INERT: SpanGuard = SpanGuard { id: u64::MAX };

    /// An inert guard: closing it is a no-op. This is what the
    /// `obs_span!` / `obs_span_on!` macros evaluate to when the recorder
    /// is inactive (or the `obs` feature is off).
    pub const fn inert() -> SpanGuard {
        SpanGuard { id: u64::MAX }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct OpenSpan {
    id: u64,
    begin: f64,
    component: &'static str,
    name: &'static str,
    tid: u32,
}

/// Bounded ring buffer of completed spans plus the stack of open ones.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSet {
    records: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
    open: Vec<OpenSpan>,
    next_id: u64,
}

/// The default set has the *default capacity*, not zero — a
/// `SpanSet::default()` used as a merge accumulator must not silently
/// drop everything pushed into it. Use [`SpanSet::with_capacity(0)`] to
/// disable retention explicitly.
impl Default for SpanSet {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

/// One step of the nesting sweep (see [`SpanSet::sweep`]).
enum SweepEv<'a> {
    Begin(&'a SpanRecord, f64),
    End(&'a SpanRecord, f64),
}

fn sane_time(t: f64) -> f64 {
    if t.is_finite() {
        t
    } else {
        0.0
    }
}

impl SpanSet {
    /// Span set keeping at most `capacity` completed spans (0 disables
    /// retention; opens/closes still balance, pushes just count as
    /// dropped).
    pub fn with_capacity(capacity: usize) -> Self {
        SpanSet {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            open: Vec::new(),
            next_id: 0,
        }
    }

    /// Append a completed span, evicting the oldest when full. Times are
    /// sanitized: non-finite begins become 0, ends clamp to `>= begin`.
    pub fn push(&mut self, mut record: SpanRecord) {
        record.begin = sane_time(record.begin);
        record.end = sane_time(record.end).max(record.begin);
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Open a span; returns the id to pass to [`SpanSet::end_span`].
    pub fn begin_span(
        &mut self,
        component: &'static str,
        name: &'static str,
        tid: u32,
        begin: f64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.open.push(OpenSpan {
            id,
            begin: sane_time(begin),
            component,
            name,
            tid,
        });
        id
    }

    /// Close the span with this id at time `end`, attaching `fields`.
    /// Still-open *children* on the same `(component, tid)` lane — spans
    /// opened after it and not yet closed — are auto-closed first at the
    /// same time, innermost first, so the completed set stays well
    /// ordered. Unknown ids are ignored (the guard was already closed).
    pub fn end_span(&mut self, id: u64, end: f64, fields: Vec<(&'static str, Value)>) {
        let Some(target) = self.open.iter().position(|o| o.id == id) else {
            return;
        };
        let key = (self.open[target].component, self.open[target].tid);
        // collect same-lane children above the target, innermost first
        let child_idxs: Vec<usize> = (target + 1..self.open.len())
            .rev()
            .filter(|&j| (self.open[j].component, self.open[j].tid) == key)
            .collect();
        for j in child_idxs {
            let o = self.open.remove(j);
            self.push(SpanRecord {
                begin: o.begin,
                end: sane_time(end),
                component: o.component,
                name: o.name,
                tid: o.tid,
                fields: Vec::new(),
            });
        }
        let o = self.open.remove(target);
        self.push(SpanRecord {
            begin: o.begin,
            end: sane_time(end),
            component: o.component,
            name: o.name,
            tid: o.tid,
            fields,
        });
    }

    /// Completed spans currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &SpanRecord> {
        self.records.iter()
    }

    /// Number of completed spans currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no completed spans are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of spans currently open.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Completed spans evicted (or discarded at capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append another set's *completed* spans (parents merge shards in a
    /// fixed order for bit-reproducible exports). Open spans do not
    /// travel.
    pub fn extend_from(&mut self, other: &SpanSet) {
        self.dropped += other.dropped;
        for r in other.records() {
            self.push(r.clone());
        }
    }

    /// Group completed spans by `(component, tid)` and order each lane by
    /// `(begin, -end, insertion)`, the order the nesting sweep needs.
    fn lanes(&self) -> BTreeMap<(&'static str, u32), Vec<&SpanRecord>> {
        let mut lanes: BTreeMap<(&'static str, u32), Vec<(usize, &SpanRecord)>> = BTreeMap::new();
        for (i, r) in self.records.iter().enumerate() {
            lanes.entry((r.component, r.tid)).or_default().push((i, r));
        }
        lanes
            .into_iter()
            .map(|(k, mut v)| {
                v.sort_by(|(ia, a), (ib, b)| {
                    a.begin
                        .total_cmp(&b.begin)
                        .then(b.end.total_cmp(&a.end))
                        .then(ia.cmp(ib))
                });
                (k, v.into_iter().map(|(_, r)| r).collect())
            })
            .collect()
    }

    /// Run the nesting sweep over one lane, emitting clamped begin/end
    /// events: children are clamped into their parents and timestamps are
    /// non-decreasing, for any input.
    fn sweep<'a>(lane: &[&'a SpanRecord], mut emit: impl FnMut(SweepEv<'a>)) {
        let mut stack: Vec<(&SpanRecord, f64)> = Vec::new();
        let mut clock = f64::NEG_INFINITY;
        for &r in lane {
            let b = r.begin.max(clock);
            while let Some(&(top, tend)) = stack.last() {
                if tend <= b {
                    let e = tend.max(clock);
                    emit(SweepEv::End(top, e));
                    clock = e;
                    stack.pop();
                } else {
                    break;
                }
            }
            let b = r.begin.max(clock);
            let mut e = r.end.max(b);
            if let Some(&(_, tend)) = stack.last() {
                e = e.min(tend);
            }
            emit(SweepEv::Begin(r, b));
            clock = b;
            stack.push((r, e));
        }
        while let Some((top, tend)) = stack.pop() {
            let e = tend.max(clock);
            emit(SweepEv::End(top, e));
            clock = e;
        }
    }

    /// Chrome trace-event JSON: `{"traceEvents":[...]}` with one event
    /// per line, `"M"` metadata naming each component (pid) and lane
    /// (tid), and well-nested `"B"`/`"E"` pairs per tid with
    /// non-decreasing timestamps. Deterministic bytes for deterministic
    /// content.
    pub fn to_chrome_json(&self) -> String {
        let lanes = self.lanes();
        let mut pids: BTreeMap<&'static str, usize> = BTreeMap::new();
        for (comp, _) in lanes.keys() {
            let next = pids.len() + 1;
            pids.entry(comp).or_insert(next);
        }
        let mut lines: Vec<String> = Vec::new();
        for (comp, pid) in &pids {
            lines.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(comp)
            ));
        }
        for (comp, tid) in lanes.keys() {
            let pid = pids[comp];
            lines.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"hw{tid}\"}}}}"
            ));
        }
        for ((comp, tid), lane) in &lanes {
            let pid = pids[comp];
            Self::sweep(lane, |ev| match ev {
                SweepEv::Begin(r, ts) => {
                    let mut line = format!(
                        "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\"cat\":\"{}\"",
                        fmt_f64(ts),
                        json_escape(r.name),
                        json_escape(comp)
                    );
                    if !r.fields.is_empty() {
                        line.push_str(",\"args\":{");
                        for (i, (k, v)) in r.fields.iter().enumerate() {
                            if i > 0 {
                                line.push(',');
                            }
                            let _ = write!(line, "\"{}\":{}", json_escape(k), v.to_json());
                        }
                        line.push('}');
                    }
                    line.push('}');
                    lines.push(line);
                }
                SweepEv::End(r, ts) => {
                    lines.push(format!(
                        "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{}\"}}",
                        fmt_f64(ts),
                        json_escape(r.name)
                    ));
                }
            });
        }
        let mut out = String::from("{\"traceEvents\":[");
        if !lines.is_empty() {
            out.push('\n');
            out.push_str(&lines.join(",\n"));
            out.push('\n');
        }
        let _ = write!(
            out,
            "],\"otherData\":{{\"spans\":{},\"dropped\":{}}}}}",
            self.records.len(),
            self.dropped
        );
        out.push('\n');
        out
    }

    /// Folded-stack self-time lines (`component;outer;inner <self>`),
    /// sorted, self time rounded to whole simulated units — pipe into
    /// `flamegraph.pl` or `inferno-flamegraph` for an SVG.
    pub fn to_folded(&self) -> String {
        let mut agg: BTreeMap<String, f64> = BTreeMap::new();
        for ((comp, _tid), lane) in self.lanes() {
            let mut frames: Vec<(String, f64, f64)> = Vec::new(); // (path, self, last)
            Self::sweep(&lane, |ev| match ev {
                SweepEv::Begin(r, ts) => {
                    let path = match frames.last_mut() {
                        Some(parent) => {
                            parent.1 += ts - parent.2;
                            parent.2 = ts;
                            format!("{};{}", parent.0, r.name)
                        }
                        None => format!("{comp};{}", r.name),
                    };
                    frames.push((path, 0.0, ts));
                }
                SweepEv::End(_, ts) => {
                    let (path, self_t, last) = frames.pop().expect("sweep is balanced");
                    *agg.entry(path).or_insert(0.0) += self_t + (ts - last);
                    if let Some(parent) = frames.last_mut() {
                        parent.2 = ts;
                    }
                }
            });
        }
        let mut out = String::new();
        for (path, t) in agg {
            let _ = writeln!(out, "{path} {}", t.max(0.0).round() as u64);
        }
        out
    }

    /// Fold per-phase rollups into a registry: for every completed span a
    /// `span.<component>.<name>.total` observation (end − begin) and a
    /// `span.<component>.<name>.self` observation (total minus time
    /// covered by nested children on the same lane).
    pub fn rollup_into(&self, registry: &mut Registry) {
        for ((comp, _tid), lane) in self.lanes() {
            let mut frames: Vec<(f64, f64, f64)> = Vec::new(); // (begin, self, last)
            Self::sweep(&lane, |ev| match ev {
                SweepEv::Begin(_, ts) => {
                    if let Some(parent) = frames.last_mut() {
                        parent.1 += ts - parent.2;
                        parent.2 = ts;
                    }
                    frames.push((ts, 0.0, ts));
                }
                SweepEv::End(r, ts) => {
                    let (begin, self_t, last) = frames.pop().expect("sweep is balanced");
                    registry.observe(&format!("span.{comp}.{}.total", r.name), ts - begin);
                    registry.observe(
                        &format!("span.{comp}.{}.self", r.name),
                        self_t + (ts - last),
                    );
                    if let Some(parent) = frames.last_mut() {
                        parent.2 = ts;
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(begin: f64, end: f64, name: &'static str, tid: u32) -> SpanRecord {
        SpanRecord {
            begin,
            end,
            component: "test",
            name,
            tid,
            fields: vec![],
        }
    }

    /// Parse the chrome JSON back into (ph, tid, ts, name) tuples and
    /// assert stack discipline + monotone timestamps per tid.
    fn assert_well_nested(json: &str) {
        let mut stacks: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
        let mut last_ts: BTreeMap<(String, String), f64> = BTreeMap::new();
        // crude line parser — span names in these tests never contain , or }
        let field = |line: &str, key: &str| -> Option<String> {
            let pat = format!("\"{key}\":");
            let at = line.find(&pat)? + pat.len();
            let rest = &line[at..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim_matches('"').to_string())
        };
        for line in json.lines() {
            let Some(ph) = field(line, "ph") else {
                continue;
            };
            if ph != "B" && ph != "E" {
                continue;
            }
            let key = (field(line, "pid").unwrap(), field(line, "tid").unwrap());
            let ts: f64 = field(line, "ts").unwrap().parse().unwrap();
            let name = field(line, "name").unwrap();
            let prev = last_ts.entry(key.clone()).or_insert(f64::NEG_INFINITY);
            assert!(ts >= *prev, "timestamps regress on {key:?}: {line}");
            *prev = ts;
            let stack = stacks.entry(key).or_default();
            if ph == "B" {
                stack.push(name);
            } else {
                let open = stack.pop().expect("E without open B");
                assert_eq!(open, name, "E does not match innermost B");
            }
        }
        for (k, s) in stacks {
            assert!(s.is_empty(), "unclosed spans on {k:?}: {s:?}");
        }
    }

    #[test]
    fn guards_nest_and_export() {
        let mut s = SpanSet::with_capacity(16);
        let outer = s.begin_span("test", "round", 0, 0.0);
        let inner = s.begin_span("test", "compute", 0, 1.0);
        s.end_span(inner, 5.0, vec![("k", 1u64.into())]);
        s.end_span(outer, 10.0, vec![]);
        assert_eq!(s.len(), 2);
        let json = s.to_chrome_json();
        assert_well_nested(&json);
        assert!(json.contains("\"name\":\"round\""));
        assert!(json.contains("\"args\":{\"k\":1}"));
    }

    #[test]
    fn close_auto_closes_same_lane_children_only() {
        let mut s = SpanSet::with_capacity(16);
        let outer = s.begin_span("test", "outer", 0, 0.0);
        let _leak = s.begin_span("test", "child", 0, 1.0);
        let other = s.begin_span("test", "other-lane", 1, 1.0);
        s.end_span(outer, 4.0, vec![]);
        // child auto-closed with outer; other lane untouched
        assert_eq!(s.len(), 2);
        assert_eq!(s.open_len(), 1);
        s.end_span(other, 9.0, vec![]);
        assert_eq!(s.len(), 3);
        assert_well_nested(&s.to_chrome_json());
    }

    #[test]
    fn ring_evicts_and_counts() {
        let mut s = SpanSet::with_capacity(2);
        for i in 0..5 {
            s.push(span(f64::from(i), f64::from(i) + 0.5, "x", 0));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let mut zero = SpanSet::with_capacity(0);
        zero.push(span(0.0, 1.0, "x", 0));
        assert!(zero.is_empty());
        assert_eq!(zero.dropped(), 1);
    }

    #[test]
    fn adversarial_overlaps_still_export_well_nested() {
        let mut s = SpanSet::with_capacity(32);
        s.push(span(0.0, 10.0, "a", 0));
        s.push(span(5.0, 15.0, "b", 0)); // overlaps, not nested
        s.push(span(2.0, 3.0, "c", 0));
        s.push(span(2.0, 30.0, "d", 0)); // same begin, longer than parent
        s.push(span(f64::NAN, f64::INFINITY, "e", 1));
        s.push(span(7.0, 1.0, "f", 1)); // inverted
        assert_well_nested(&s.to_chrome_json());
    }

    #[test]
    fn export_bytes_are_deterministic() {
        let build = || {
            let mut s = SpanSet::with_capacity(8);
            let a = s.begin_span("m", "round", 0, 0.0);
            let b = s.begin_span("m", "compare", 0, 3.0);
            s.end_span(b, 4.0, vec![]);
            s.end_span(a, 5.0, vec![("round", 1u64.into())]);
            s.push(span(0.0, 5.0, "pipeline", 1));
            s
        };
        assert_eq!(build().to_chrome_json(), build().to_chrome_json());
        assert_eq!(build().to_folded(), build().to_folded());
    }

    #[test]
    fn folded_attributes_self_time() {
        let mut s = SpanSet::with_capacity(8);
        let outer = s.begin_span("m", "round", 0, 0.0);
        let inner = s.begin_span("m", "compare", 0, 4.0);
        s.end_span(inner, 10.0, vec![]);
        s.end_span(outer, 10.0, vec![]);
        let folded = s.to_folded();
        assert!(folded.contains("m;round 4\n"), "{folded}");
        assert!(folded.contains("m;round;compare 6\n"), "{folded}");
    }

    #[test]
    fn rollup_observes_total_and_self() {
        let mut s = SpanSet::with_capacity(8);
        let outer = s.begin_span("m", "round", 0, 0.0);
        let inner = s.begin_span("m", "compare", 0, 4.0);
        s.end_span(inner, 10.0, vec![]);
        s.end_span(outer, 10.0, vec![]);
        let mut reg = Registry::new();
        s.rollup_into(&mut reg);
        let total = reg.summary("span.m.round.total").unwrap();
        assert_eq!(total.count(), 1);
        assert!((total.mean() - 10.0).abs() < 1e-12);
        let self_t = reg.summary("span.m.round.self").unwrap();
        assert!((self_t.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn extend_from_merges_completed_only() {
        let mut a = SpanSet::with_capacity(8);
        a.push(span(0.0, 1.0, "x", 0));
        let mut b = SpanSet::with_capacity(8);
        b.push(span(2.0, 3.0, "y", 0));
        let _open = b.begin_span("test", "open", 0, 4.0);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.open_len(), 0);
    }

    #[test]
    fn empty_set_exports_valid_json() {
        let s = SpanSet::with_capacity(4);
        let json = s.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"spans\":0"));
        assert_eq!(s.to_folded(), "");
    }
}
