#![warn(missing_docs)]

//! # vds-obs — the deterministic observability layer
//!
//! Zero-dependency metrics, tracing and host-time accounting for the
//! VDS-SMT reproduction. The paper's entire contribution is *performance
//! estimation*, so every backend must be able to say where simulated time
//! and host time go — cheaply, and reproducibly.
//!
//! Four pieces:
//!
//! * [`Registry`] — named counters, gauges, [`Summary`] streaming
//!   statistics (Welford mean/variance plus fixed-bucket percentiles)
//!   and first-class [`Histogram`]s (same log-bucket grid, exact
//!   order-invariant merges, Prometheus `_bucket` exposition), stored
//!   sorted so exports are deterministic. Host wall-clock timings live
//!   in a separate section that the deterministic exporters omit.
//! * [`conformance`] — the model-conformance layer: a
//!   [`ConformanceTracker`] prices the journal's per-round events with
//!   the paper's closed forms and streams windowed predicted-vs-measured
//!   G residuals into a bounded [`ResidualSeries`].
//! * [`forensics`] — fault-lifecycle forensics: a [`ForensicsTracker`]
//!   reconstructs every injected fault's injection → detection →
//!   recovery (or escape) chain from journal bytes, yielding
//!   detection-latency and coverage observables.
//! * [`alpha`] — α-attribution: differential cycle-accounting ledgers
//!   ([`PairLedger`]) that decompose measured SMT contention into
//!   per-cause stall deltas under an exact conservation invariant, with
//!   text/JSON/registry surfaces ([`AlphaReport`]).
//! * [`Trace`] — a bounded ring buffer of `(sim_time, component, event,
//!   fields)` records with a JSON-lines exporter.
//! * [`SpanSet`] — a bounded ring buffer of `(begin, end, component,
//!   name, tid, fields)` phase spans with three exporters: Chrome
//!   trace-event JSON ([`SpanSet::to_chrome_json`], loadable in
//!   Perfetto/`chrome://tracing`), folded stacks for flamegraph tools
//!   ([`SpanSet::to_folded`]), and per-phase self/total rollups into the
//!   registry ([`SpanSet::rollup_into`]).
//! * [`Journal`] — the execution flight recorder: one schema-versioned
//!   entry per simulated round (per-version state digests, comparator
//!   verdict, scheduler decision, recovery action, injected fault), with
//!   a JSONL codec and a binary-search first-divergence diff
//!   ([`Journal::first_divergence`]) behind `vds replay` / `vds audit`.
//! * [`Recorder`] — the concrete sink; a disabled recorder costs one
//!   branch per call.
//! * [`Record`] + [`NoopRecorder`] — the statically-dispatched facade
//!   ([`facade`]): engines are generic over `R: Record`, the `obs_*!`
//!   macros guard argument construction behind `is_active()`, and the
//!   zero-sized [`NoopRecorder`] monomorphizes instrumentation away
//!   entirely on uninstrumented runs. The `obs` cargo feature
//!   (default-on) compiles the macro bodies out wholesale; the journal
//!   and end-of-run exports stay available in every build.
//!
//! Live telemetry rides on top of the same registry: [`prom`] renders
//! Prometheus text exposition, [`serve`] adds a [`TelemetryHub`] +
//! zero-dependency HTTP [`TelemetryServer`] (`/metrics`, `/healthz`,
//! `/readyz`, `/trace`, `/progress`), and [`logging`] is the leveled
//! JSONL-on-stderr facade (`log_warn!` & friends, `VDS_LOG` /
//! `--log-level`).
//!
//! **Determinism contract:** for a fixed seed, the content of a
//! recorder's registry, trace, spans and journal — and therefore the
//! bytes of [`Registry::to_csv`] / [`Registry::to_jsonl`] /
//! [`Trace::to_jsonl`] / [`SpanSet::to_chrome_json`] /
//! [`SpanSet::to_folded`] / [`Journal::to_jsonl`] — are identical
//! across runs and across worker counts, provided parallel shards are
//! merged in a fixed order (see `vds-fault`'s logical shards). Host
//! wall-clock timings are the one exception, which is why they are
//! quarantined in their own export section.
//!
//! ```
//! use vds_obs::Recorder;
//!
//! let mut rec = Recorder::new();
//! rec.bump("core.rounds.committed");
//! rec.observe("core.recovery_time", 12.5);
//! rec.event(3.0, "core", "fault_detected", vec![("round", 3u64.into())]);
//! assert_eq!(rec.registry().counter("core.rounds.committed"), 1);
//! let csv = rec.registry().to_csv();
//! assert!(csv.contains("counter,core.rounds.committed,value,1"));
//! ```

pub mod alpha;
pub mod conformance;
pub mod facade;
pub mod forensics;
pub mod histogram;
pub mod journal;
pub mod json;
pub mod logging;
pub mod prom;
pub mod recorder;
pub mod registry;
pub mod serve;
pub mod span;
pub mod spsc;
pub mod summary;
pub mod trace;

pub use alpha::{AlphaReport, CycleSnapshot, PairLedger, STALL_KINDS};
pub use conformance::{
    ConformanceReport, ConformanceTracker, ResidualSeries, SchemeModel, WindowSample,
};
pub use facade::{NoopRecorder, Record};
pub use forensics::{EscapeRecord, FaultOutcome, FaultTrace, ForensicsReport, ForensicsTracker};
pub use histogram::Histogram;
pub use journal::{
    digest_words128, Action, Digest128, Digester128, Divergence, Journal, JournalHeader,
    RoundEntry, Verdict, JOURNAL_SCHEMA,
};
pub use json::{json_array, JsonObj, REPORT_SCHEMA};
pub use logging::Level;
pub use recorder::{Recorder, Stopwatch, DEFAULT_TRACE_CAPACITY};
pub use registry::Registry;
pub use serve::{TelemetryHub, TelemetryServer};
pub use span::{SpanGuard, SpanRecord, SpanSet, DEFAULT_SPAN_CAPACITY};
pub use spsc::{write_atomic, Consumer, JournalSink, Producer, SpscRing};
pub use summary::Summary;
pub use trace::{Trace, TraceRecord, Value};
