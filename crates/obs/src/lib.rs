#![warn(missing_docs)]

//! # vds-obs — the deterministic observability layer
//!
//! Zero-dependency metrics, tracing and host-time accounting for the
//! VDS-SMT reproduction. The paper's entire contribution is *performance
//! estimation*, so every backend must be able to say where simulated time
//! and host time go — cheaply, and reproducibly.
//!
//! Three pieces:
//!
//! * [`Registry`] — named counters, gauges and [`Summary`] streaming
//!   statistics (Welford mean/variance plus fixed-bucket percentiles),
//!   stored sorted so exports are deterministic. Host wall-clock timings
//!   live in a separate section that the deterministic exporters omit.
//! * [`Trace`] — a bounded ring buffer of `(sim_time, component, event,
//!   fields)` records with a JSON-lines exporter.
//! * [`Recorder`] — the handle instrumented code accepts; a disabled
//!   recorder costs one branch per call.
//!
//! **Determinism contract:** for a fixed seed, the content of a
//! recorder's registry and trace — and therefore the bytes of
//! [`Registry::to_csv`] / [`Registry::to_jsonl`] / [`Trace::to_jsonl`] —
//! are identical across runs and across worker counts, provided parallel
//! shards are merged in a fixed order (see `vds-fault`'s logical shards).
//! Host wall-clock timings are the one exception, which is why they are
//! quarantined in their own export section.
//!
//! ```
//! use vds_obs::Recorder;
//!
//! let mut rec = Recorder::new();
//! rec.bump("core.rounds.committed");
//! rec.observe("core.recovery_time", 12.5);
//! rec.event(3.0, "core", "fault_detected", vec![("round", 3u64.into())]);
//! assert_eq!(rec.registry().counter("core.rounds.committed"), 1);
//! let csv = rec.registry().to_csv();
//! assert!(csv.contains("counter,core.rounds.committed,value,1"));
//! ```

pub mod recorder;
pub mod registry;
pub mod summary;
pub mod trace;

pub use recorder::{Recorder, Stopwatch, DEFAULT_TRACE_CAPACITY};
pub use registry::Registry;
pub use summary::Summary;
pub use trace::{Record, Trace, Value};
