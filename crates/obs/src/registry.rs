//! The metrics registry: named counters, gauges and observation
//! summaries, with deterministic (sorted) content and exporters.

use crate::histogram::Histogram;
use crate::summary::Summary;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` for export: shortest round-trip representation, with a
/// fixed spelling for the non-finite values.
pub(crate) fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "nan".to_string()
    } else if x == f64::INFINITY {
        "inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        format!("{x}")
    }
}

/// Named metrics, kept sorted so exports are deterministic.
///
/// Host wall-clock timings live in a separate section: they are real
/// measurements and therefore *not* reproducible run-to-run, so the
/// default exporters omit them and [`Registry::to_csv_with_host`] /
/// [`Registry::host_summary`] surface them explicitly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    summaries: BTreeMap<String, Summary>,
    histograms: BTreeMap<String, Histogram>,
    host: BTreeMap<String, Summary>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the named counter (creating it at zero first).
    pub fn count(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Set the named gauge to `v` (last write wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Set the named gauge to the maximum of its current value and `v`.
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let e = self.gauges.entry(name.to_string()).or_insert(v);
        if v > *e {
            *e = v;
        }
    }

    /// Record one observation into the named summary.
    pub fn observe(&mut self, name: &str, x: f64) {
        self.summaries
            .entry(name.to_string())
            .or_default()
            .observe(x);
    }

    /// Fold an already-accumulated summary into the named summary.
    pub fn merge_summary(&mut self, name: &str, s: &Summary) {
        self.summaries.entry(name.to_string()).or_default().merge(s);
    }

    /// Record one observation into the named histogram (first-class
    /// log-bucket histogram: exact counts, order-invariant merge).
    pub fn observe_hist(&mut self, name: &str, x: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(x);
    }

    /// Fold an already-accumulated histogram into the named histogram.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Record a host wall-clock duration (seconds) under the given name.
    /// Host timings are excluded from the deterministic exports.
    pub fn observe_host(&mut self, name: &str, secs: f64) {
        self.host.entry(name.to_string()).or_default().observe(secs);
    }

    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Summary for a name, if any observations were recorded.
    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.summaries.get(name)
    }

    /// Histogram for a name, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Host-time summary for a name, if recorded.
    pub fn host_summary(&self, name: &str) -> Option<&Summary> {
        self.host.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate summaries in name order.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, &Summary)> {
        self.summaries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate host-time summaries in name order.
    pub fn host_summaries(&self) -> impl Iterator<Item = (&str, &Summary)> {
        self.host.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing (deterministic or host) has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.summaries.is_empty()
            && self.histograms.is_empty()
            && self.host.is_empty()
    }

    /// Merge another registry into this one: counters add, gauges take
    /// the maximum, summaries (and host timings) merge. Merge shards in a
    /// fixed order for bit-reproducible means/variances.
    pub fn merge(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(v);
            if v > *e {
                *e = v;
            }
        }
        for (k, v) in &other.summaries {
            self.summaries.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.host {
            self.host.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Prefix every metric name with `prefix.` and return the result
    /// (used to namespace a sub-component's registry before merging).
    pub fn prefixed(&self, prefix: &str) -> Registry {
        let pre = |k: &str| format!("{prefix}.{k}");
        Registry {
            counters: self.counters.iter().map(|(k, &v)| (pre(k), v)).collect(),
            gauges: self.gauges.iter().map(|(k, &v)| (pre(k), v)).collect(),
            summaries: self
                .summaries
                .iter()
                .map(|(k, v)| (pre(k), v.clone()))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (pre(k), v.clone()))
                .collect(),
            host: self.host.iter().map(|(k, v)| (pre(k), v.clone())).collect(),
        }
    }

    fn summary_rows(out: &mut String, kind: &str, name: &str, s: &Summary) {
        if s.count() == 0 {
            // An empty summary has no meaningful statistics; emit only the
            // count row so exports stay nan-free.
            let _ = writeln!(out, "{kind},{name},count,0");
            return;
        }
        let rows: [(&str, String); 7] = [
            ("count", s.count().to_string()),
            ("mean", fmt_f64(s.mean())),
            ("variance", fmt_f64(s.variance())),
            ("min", fmt_f64(s.min())),
            ("p50", fmt_f64(s.quantile(0.5).unwrap_or(f64::NAN))),
            ("p99", fmt_f64(s.quantile(0.99).unwrap_or(f64::NAN))),
            ("max", fmt_f64(s.max())),
        ];
        for (field, value) in rows {
            let _ = writeln!(out, "{kind},{name},{field},{value}");
        }
    }

    fn histogram_rows(out: &mut String, name: &str, h: &Histogram) {
        if h.count() == 0 {
            let _ = writeln!(out, "histogram,{name},count,0");
            return;
        }
        let rows: [(&str, String); 6] = [
            ("count", h.count().to_string()),
            ("sum", fmt_f64(h.sum())),
            ("min", fmt_f64(h.min())),
            ("p50", fmt_f64(h.quantile(0.5).unwrap_or(f64::NAN))),
            ("p99", fmt_f64(h.quantile(0.99).unwrap_or(f64::NAN))),
            ("max", fmt_f64(h.max())),
        ];
        for (field, value) in rows {
            let _ = writeln!(out, "histogram,{name},{field},{value}");
        }
        for (le, cum) in h.cumulative() {
            let _ = writeln!(out, "histogram,{name},le_{},{cum}", fmt_f64(le));
        }
        let _ = writeln!(out, "histogram,{name},le_inf,{}", h.count());
    }

    /// CSV export of the deterministic content (`kind,name,field,value`).
    /// Host wall-clock timings are excluded so a fixed-seed run exports
    /// byte-identical bytes regardless of worker count or machine.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter,{k},value,{v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge,{k},value,{}", fmt_f64(*v));
        }
        for (k, s) in &self.summaries {
            Self::summary_rows(&mut out, "summary", k, s);
        }
        for (k, h) in &self.histograms {
            Self::histogram_rows(&mut out, k, h);
        }
        out
    }

    /// [`Registry::to_csv`] plus the host wall-clock section (rows with
    /// kind `host`). Not reproducible run-to-run by nature.
    pub fn to_csv_with_host(&self) -> String {
        let mut out = self.to_csv();
        for (k, s) in &self.host {
            Self::summary_rows(&mut out, "host", k, s);
        }
        out
    }

    /// JSON-lines export of the deterministic content: one object per
    /// metric.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
                json_escape(k)
            );
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(k),
                json_number(*v)
            );
        }
        for (k, s) in &self.summaries {
            if s.count() == 0 {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"summary\",\"name\":\"{}\",\"count\":0}}",
                    json_escape(k)
                );
                continue;
            }
            let _ = writeln!(
                out,
                "{{\"kind\":\"summary\",\"name\":\"{}\",\"count\":{},\"mean\":{},\"variance\":{},\"min\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                json_escape(k),
                s.count(),
                json_number(s.mean()),
                json_number(s.variance()),
                json_number(s.min()),
                json_number(s.quantile(0.5).unwrap_or(f64::NAN)),
                json_number(s.quantile(0.99).unwrap_or(f64::NAN)),
                json_number(s.max()),
            );
        }
        for (k, h) in &self.histograms {
            if h.count() == 0 {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"histogram\",\"name\":\"{}\",\"count\":0}}",
                    json_escape(k)
                );
                continue;
            }
            let _ = writeln!(
                out,
                "{{\"kind\":\"histogram\",\"name\":\"{}\",{}}}",
                json_escape(k),
                histogram_json_body(h)
            );
        }
        out
    }

    /// One JSON object covering the deterministic content:
    /// `{"counters":{…},"gauges":{…},"summaries":{…},"histograms":{…}}`.
    /// This is the shared serializer behind `vds stats --json` and the
    /// telemetry server's `/progress` endpoint, so the two never drift
    /// apart.
    pub fn to_json_object(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), json_number(*v));
        }
        out.push_str("},\"summaries\":{");
        for (i, (k, s)) in self.summaries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if s.count() == 0 {
                let _ = write!(out, "\"{}\":{{\"count\":0}}", json_escape(k));
                continue;
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"mean\":{},\"variance\":{},\"min\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                json_escape(k),
                s.count(),
                json_number(s.mean()),
                json_number(s.variance()),
                json_number(s.min()),
                json_number(s.quantile(0.5).unwrap_or(f64::NAN)),
                json_number(s.quantile(0.99).unwrap_or(f64::NAN)),
                json_number(s.max()),
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if h.count() == 0 {
                let _ = write!(out, "\"{}\":{{\"count\":0}}", json_escape(k));
                continue;
            }
            let _ = write!(out, "\"{}\":{{{}}}", json_escape(k), histogram_json_body(h));
        }
        out.push_str("}}");
        out
    }
}

/// JSON has no inf/nan literals; encode them as strings.
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        format!("\"{}\"", fmt_f64(x))
    }
}

/// Shared JSON body of a non-empty histogram (no surrounding braces):
/// scalar statistics plus cumulative `[le, count]` bucket pairs.
fn histogram_json_body(h: &Histogram) -> String {
    let mut out = format!(
        "\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p99\":{},\"max\":{},\"buckets\":[",
        h.count(),
        json_number(h.sum()),
        json_number(h.mean()),
        json_number(h.min()),
        json_number(h.quantile(0.5).unwrap_or(f64::NAN)),
        json_number(h.quantile(0.99).unwrap_or(f64::NAN)),
        json_number(h.max()),
    );
    for (i, (le, cum)) in h.cumulative().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{cum}]", json_number(le));
    }
    out.push(']');
    out
}

/// Human-readable rendering: one line per metric, grouped by kind.
impl std::fmt::Display for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "  counter  {k:<44} {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "  gauge    {k:<44} {}", fmt_f64(*v))?;
        }
        for (k, s) in &self.summaries {
            writeln!(f, "  summary  {k:<44} {s}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(f, "  histogram {k:<43} {h}")?;
        }
        for (k, s) in &self.host {
            writeln!(f, "  host     {k:<44} {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_summaries() {
        let mut r = Registry::new();
        r.count("a.events", 3);
        r.count("a.events", 2);
        r.gauge("q.depth", 7.0);
        r.gauge_max("q.depth", 5.0);
        r.gauge_max("q.depth", 9.0);
        r.observe("lat", 1.0);
        r.observe("lat", 3.0);
        assert_eq!(r.counter("a.events"), 5);
        assert_eq!(r.gauge_value("q.depth"), Some(9.0));
        assert_eq!(r.summary("lat").unwrap().count(), 2);
        assert!((r.summary("lat").unwrap().mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn csv_is_sorted_and_deterministic() {
        let mut r = Registry::new();
        r.count("z.last", 1);
        r.count("a.first", 2);
        r.observe_host("wall", 0.123);
        let csv = r.to_csv();
        let a = csv.find("a.first").unwrap();
        let z = csv.find("z.last").unwrap();
        assert!(a < z);
        assert!(!csv.contains("wall"), "host section must not leak: {csv}");
        assert!(r.to_csv_with_host().contains("host,wall,count,1"));
        assert_eq!(csv, r.clone().to_csv());
    }

    #[test]
    fn empty_summary_exports_are_nan_free() {
        let mut a = Registry::new();
        a.observe("s", 1.0);
        let mut r = Registry::new();
        r.merge(&a.prefixed("x"));
        // Merging created summary entries; simulate one that stays empty.
        r.merge_summary("empty", &Summary::new());
        let csv = r.to_csv();
        assert!(csv.contains("summary,empty,count,0"), "csv: {csv}");
        assert!(!csv.to_lowercase().contains("nan"), "csv: {csv}");
        let jsonl = r.to_jsonl();
        assert!(
            jsonl.contains("{\"kind\":\"summary\",\"name\":\"empty\",\"count\":0}"),
            "jsonl: {jsonl}"
        );
        assert!(!jsonl.to_lowercase().contains("nan"), "jsonl: {jsonl}");
    }

    #[test]
    fn single_observation_summary_rows_report_the_value() {
        let mut r = Registry::new();
        r.observe("lat", 12.5);
        let csv = r.to_csv();
        assert!(csv.contains("summary,lat,p50,12.5"), "csv: {csv}");
        assert!(csv.contains("summary,lat,p99,12.5"), "csv: {csv}");
        assert!(!csv.to_lowercase().contains("nan"), "csv: {csv}");
    }

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = Registry::new();
        a.count("c", 1);
        a.gauge("g", 2.0);
        a.observe("s", 1.0);
        let mut b = Registry::new();
        b.count("c", 4);
        b.gauge("g", 1.0);
        b.observe("s", 3.0);
        b.observe("s2", 9.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.gauge_value("g"), Some(2.0));
        assert_eq!(a.summary("s").unwrap().count(), 2);
        assert_eq!(a.summary("s2").unwrap().count(), 1);
    }

    #[test]
    fn prefixed_namespaces_everything() {
        let mut r = Registry::new();
        r.count("x", 1);
        r.gauge("y", 2.0);
        r.observe("z", 3.0);
        let p = r.prefixed("sub");
        assert_eq!(p.counter("sub.x"), 1);
        assert_eq!(p.gauge_value("sub.y"), Some(2.0));
        assert!(p.summary("sub.z").is_some());
    }

    #[test]
    fn jsonl_renders_valid_shapes() {
        let mut r = Registry::new();
        r.count("c", 1);
        r.gauge("g", 1.5);
        r.observe("s", 2.0);
        let j = r.to_jsonl();
        assert!(j.contains("\"kind\":\"counter\""));
        assert!(j.contains("\"kind\":\"gauge\""));
        assert!(j.contains("\"kind\":\"summary\""));
        assert_eq!(j.lines().count(), 3);
    }

    #[test]
    fn histogram_kind_round_trips_through_every_exporter() {
        let mut r = Registry::new();
        r.observe_hist("resid", 0.5);
        r.observe_hist("resid", 1.0);
        r.observe_hist("resid", -0.25);
        r.merge_histogram("empty", &Histogram::new());
        let csv = r.to_csv();
        assert!(csv.contains("histogram,resid,count,3"), "csv: {csv}");
        assert!(csv.contains("histogram,resid,sum,1.25"), "csv: {csv}");
        assert!(csv.contains("histogram,resid,le_0,1"), "csv: {csv}");
        assert!(csv.contains("histogram,resid,le_0.5,2"), "csv: {csv}");
        assert!(csv.contains("histogram,resid,le_1,3"), "csv: {csv}");
        assert!(csv.contains("histogram,resid,le_inf,3"), "csv: {csv}");
        assert!(csv.contains("histogram,empty,count,0"), "csv: {csv}");
        assert!(!csv.to_lowercase().contains("nan"), "csv: {csv}");
        let jsonl = r.to_jsonl();
        assert!(
            jsonl.contains("{\"kind\":\"histogram\",\"name\":\"resid\",\"count\":3,\"sum\":1.25"),
            "jsonl: {jsonl}"
        );
        assert!(
            jsonl.contains("\"buckets\":[[0,1],[0.5,2],[1,3]]"),
            "jsonl: {jsonl}"
        );
        assert!(
            jsonl.contains("{\"kind\":\"histogram\",\"name\":\"empty\",\"count\":0}"),
            "jsonl: {jsonl}"
        );
        let j = r.to_json_object();
        assert!(
            j.contains("\"histograms\":{\"empty\":{\"count\":0},\"resid\":{"),
            "{j}"
        );
        assert!(j.ends_with("]}}}"), "{j}");
    }

    #[test]
    fn histograms_merge_and_prefix_like_other_kinds() {
        let mut a = Registry::new();
        a.observe_hist("h", 1.0);
        let mut b = Registry::new();
        b.observe_hist("h", 2.0);
        a.merge(&b);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        let p = a.prefixed("sub");
        assert_eq!(p.histogram("sub.h").unwrap().count(), 2);
        assert!(!p.is_empty());
        let only_hist = b.clone();
        assert!(
            !only_hist.is_empty(),
            "a histogram alone makes it non-empty"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_object_shape_and_determinism() {
        let mut r = Registry::new();
        r.count("b", 2);
        r.count("a", 1);
        r.gauge("g", f64::INFINITY);
        r.observe("s", 4.0);
        r.merge_summary("empty", &Summary::new());
        r.observe_host("wall", 0.5);
        let j = r.to_json_object();
        assert!(j.starts_with("{\"counters\":{\"a\":1,\"b\":2}"), "{j}");
        assert!(j.contains("\"gauges\":{\"g\":\"inf\"}"), "{j}");
        assert!(j.contains("\"empty\":{\"count\":0}"), "{j}");
        assert!(j.contains("\"s\":{\"count\":1,\"mean\":4,"), "{j}");
        assert!(!j.contains("wall"), "host section must not leak: {j}");
        assert_eq!(j, r.clone().to_json_object());
    }
}
