//! The [`Recorder`] handle: the single object components accept to emit
//! metrics and trace events.
//!
//! A recorder bundles a [`Registry`] and a [`Trace`] behind an enabled
//! flag, so instrumented code takes `&mut Recorder` unconditionally and a
//! disabled recorder costs one branch per call site. Recorders are plain
//! owned values: parallel code gives each shard its own recorder and
//! merges them in a fixed order, which keeps content deterministic for a
//! fixed seed regardless of worker count.

use crate::journal::{Journal, JournalHeader, RoundEntry};
use crate::registry::Registry;
use crate::span::{SpanGuard, SpanRecord, SpanSet};
use crate::trace::{Trace, TraceRecord, Value};
use std::time::Instant;

/// Default trace capacity for enabled recorders.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Metrics + trace + span + journal sink handed through the stack.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    enabled: bool,
    registry: Registry,
    trace: Trace,
    spans: SpanSet,
    journal: Journal,
}

impl Recorder {
    /// Enabled recorder with the default trace and span capacities.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Enabled recorder with an explicit trace capacity, mirrored onto
    /// the span ring (0 = metrics only).
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Self::with_capacities(capacity, capacity)
    }

    /// Enabled recorder with independent trace and span capacities
    /// (campaign shards keep spans but skip per-trial event traces).
    pub fn with_capacities(trace_capacity: usize, span_capacity: usize) -> Self {
        Recorder {
            enabled: true,
            registry: Registry::new(),
            trace: Trace::with_capacity(trace_capacity),
            spans: SpanSet::with_capacity(span_capacity),
            journal: Journal::disabled(),
        }
    }

    /// A recorder that ignores everything (for uninstrumented runs).
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            registry: Registry::new(),
            trace: Trace::with_capacity(0),
            spans: SpanSet::with_capacity(0),
            journal: Journal::disabled(),
        }
    }

    /// Whether this recorder keeps what it is given.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Alias of [`Recorder::is_enabled`] matching the facade's
    /// [`crate::Record::is_active`], so the `obs_*!` macros work on a
    /// concrete `Recorder` without importing the trait.
    pub fn is_active(&self) -> bool {
        self.enabled
    }

    /// Add `n` to a counter.
    pub fn count(&mut self, name: &str, n: u64) {
        if self.enabled {
            self.registry.count(name, n);
        }
    }

    /// Increment a counter by one.
    pub fn bump(&mut self, name: &str) {
        self.count(name, 1);
    }

    /// Set a gauge (last write wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        if self.enabled {
            self.registry.gauge(name, v);
        }
    }

    /// Raise a gauge to at least `v` (high-water marks).
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        if self.enabled {
            self.registry.gauge_max(name, v);
        }
    }

    /// Record a numeric observation into a streaming summary.
    pub fn observe(&mut self, name: &str, x: f64) {
        if self.enabled {
            self.registry.observe(name, x);
        }
    }

    /// Record one observation into the named first-class histogram.
    pub fn observe_hist(&mut self, name: &str, x: f64) {
        if self.enabled {
            self.registry.observe_hist(name, x);
        }
    }

    /// Emit a trace event at simulated time `sim_time`.
    pub fn event(
        &mut self,
        sim_time: f64,
        component: &'static str,
        event: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        if self.enabled {
            self.trace.push(TraceRecord {
                sim_time,
                component,
                event,
                fields,
            });
        }
    }

    /// Open a span at simulated time `begin` on lane (tid) 0. Close the
    /// returned guard with [`Recorder::end_span`].
    pub fn span(&mut self, component: &'static str, name: &'static str, begin: f64) -> SpanGuard {
        self.span_on(0, component, name, begin)
    }

    /// Open a span on an explicit hardware-thread lane.
    pub fn span_on(
        &mut self,
        tid: u32,
        component: &'static str,
        name: &'static str,
        begin: f64,
    ) -> SpanGuard {
        if !self.enabled {
            return SpanGuard::INERT;
        }
        SpanGuard {
            id: self.spans.begin_span(component, name, tid, begin),
        }
    }

    /// Close a span at simulated time `end`.
    pub fn end_span(&mut self, guard: SpanGuard, end: f64) {
        self.end_span_with(guard, end, Vec::new());
    }

    /// Close a span, attaching key/value fields (they become the Chrome
    /// trace event's `args`).
    pub fn end_span_with(
        &mut self,
        guard: SpanGuard,
        end: f64,
        fields: Vec<(&'static str, Value)>,
    ) {
        if self.enabled {
            self.spans.end_span(guard.id, end, fields);
        }
    }

    /// Record an already-completed span directly (timeline conversions).
    pub fn record_span(&mut self, record: SpanRecord) {
        if self.enabled {
            self.spans.push(record);
        }
    }

    /// Read access to the collected spans.
    pub fn spans(&self) -> &SpanSet {
        &self.spans
    }

    /// Fold per-phase `span.<component>.<name>.total` / `.self` summaries
    /// into this recorder's registry. Call once at the top level (after
    /// shard merging) so rollups are not double counted.
    pub fn rollup_spans(&mut self) {
        if self.enabled {
            self.spans.rollup_into(&mut self.registry);
        }
    }

    /// Time the host wall-clock duration of `f` into the registry's host
    /// section (excluded from deterministic exports).
    pub fn time_host<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.registry
            .observe_host(name, start.elapsed().as_secs_f64());
        out
    }

    /// Record an already-measured host duration in seconds.
    pub fn observe_host(&mut self, name: &str, secs: f64) {
        if self.enabled {
            self.registry.observe_host(name, secs);
        }
    }

    /// Read access to the collected metrics.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Read access to the collected trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Turn on the execution flight recorder for this recorder's run.
    /// No-op on a disabled recorder.
    pub fn enable_journal(&mut self, header: JournalHeader) {
        if self.enabled {
            self.journal = Journal::enabled(header);
        }
    }

    /// Whether journal entries are being kept.
    pub fn journal_enabled(&self) -> bool {
        self.enabled && self.journal.is_enabled()
    }

    /// Append one round entry to the journal (dropped unless
    /// [`Recorder::enable_journal`] was called).
    pub fn journal_push(&mut self, entry: RoundEntry) {
        if self.enabled {
            self.journal.push(entry);
        }
    }

    /// Stamp the terminal outcome (`masked` / `escaped`) onto the journal
    /// entry that injected fault `fault_id` (dropped unless the journal
    /// is enabled).
    pub fn journal_resolve_fault(&mut self, fault_id: u64, outcome: &str) {
        if self.enabled {
            self.journal.resolve_fault(fault_id, outcome);
        }
    }

    /// Read access to the flight-recorder journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Adopt another journal's entries under campaign lane `lane`
    /// (no-op unless this recorder's journal is enabled).
    pub fn adopt_journal(&mut self, other: &Journal, lane: u64) {
        if self.enabled {
            self.journal.adopt(other, lane);
        }
    }

    /// Fold `journal.rounds` / `journal.bytes` / `journal.divergences`
    /// (and the last-divergence gauge) into this recorder's registry.
    /// Call once at the top level, after shard merging, so the counters
    /// are not double counted.
    pub fn export_journal_metrics(&mut self) {
        if self.enabled {
            let journal = std::mem::take(&mut self.journal);
            journal.export_metrics(&mut self.registry);
            self.journal = journal;
        }
    }

    /// Consume the recorder, returning its registry, trace and spans.
    pub fn into_parts(self) -> (Registry, Trace, SpanSet) {
        (self.registry, self.trace, self.spans)
    }

    /// Merge another recorder's content into this one (counters add,
    /// gauges max, summaries merge, traces/spans/journal entries
    /// concatenate). Merge shards in a fixed order for
    /// bit-reproducibility.
    pub fn merge(&mut self, other: &Recorder) {
        if self.enabled {
            self.registry.merge(&other.registry);
            self.trace.extend_from(&other.trace);
            self.spans.extend_from(&other.spans);
            self.journal.extend_from(&other.journal);
        }
    }

    /// Merge only another recorder's completed spans (callers that merge
    /// registries with [`Recorder::merge_prefixed`] still want the spans).
    pub fn merge_spans(&mut self, other: &Recorder) {
        if self.enabled {
            self.spans.extend_from(&other.spans);
        }
    }

    /// Merge a registry's content into this recorder's registry as-is
    /// (counters add, gauges max, summaries merge; no prefixing).
    pub fn merge_registry(&mut self, other: &Registry) {
        if self.enabled {
            self.registry.merge(other);
        }
    }

    /// Merge with every metric name prefixed by `prefix.`.
    pub fn merge_prefixed(&mut self, other: &Registry, prefix: &str) {
        if self.enabled {
            self.registry.merge(&other.prefixed(prefix));
        }
    }

    /// Fold an already-accumulated summary into the named summary.
    pub fn merge_summary(&mut self, name: &str, s: &crate::summary::Summary) {
        if self.enabled {
            self.registry.merge_summary(name, s);
        }
    }
}

/// Wall-clock stopwatch for call sites where the closure form of
/// [`Recorder::time_host`] is awkward.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since `start`.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        r.bump("c");
        r.gauge("g", 1.0);
        r.observe("s", 2.0);
        r.event(0.0, "t", "e", vec![]);
        let out = r.time_host("h", || 42);
        assert_eq!(out, 42);
        assert!(r.registry().is_empty());
        assert!(r.trace().is_empty());
    }

    #[test]
    fn enabled_recorder_collects() {
        let mut r = Recorder::new();
        r.bump("c");
        r.count("c", 2);
        r.observe("s", 5.0);
        r.event(1.0, "t", "e", vec![("k", 7u64.into())]);
        assert_eq!(r.registry().counter("c"), 3);
        assert_eq!(r.trace().len(), 1);
    }

    #[test]
    fn merge_folds_both_parts() {
        let mut a = Recorder::new();
        a.bump("c");
        let mut b = Recorder::new();
        b.bump("c");
        b.event(2.0, "t", "e", vec![]);
        a.merge(&b);
        assert_eq!(a.registry().counter("c"), 2);
        assert_eq!(a.trace().len(), 1);
    }

    #[test]
    fn host_timing_lands_in_host_section() {
        let mut r = Recorder::new();
        r.time_host("phase", || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let s = r.registry().host_summary("phase").unwrap();
        assert_eq!(s.count(), 1);
        assert!(s.mean() > 0.0);
        assert!(!r.registry().to_csv().contains("phase"));
    }
}
