//! The [`Recorder`] handle: the single object components accept to emit
//! metrics and trace events.
//!
//! A recorder bundles a [`Registry`] and a [`Trace`] behind an enabled
//! flag, so instrumented code takes `&mut Recorder` unconditionally and a
//! disabled recorder costs one branch per call site. Recorders are plain
//! owned values: parallel code gives each shard its own recorder and
//! merges them in a fixed order, which keeps content deterministic for a
//! fixed seed regardless of worker count.

use crate::registry::Registry;
use crate::trace::{Record, Trace, Value};
use std::time::Instant;

/// Default trace capacity for enabled recorders.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Metrics + trace sink handed through the stack.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    enabled: bool,
    registry: Registry,
    trace: Trace,
}

impl Recorder {
    /// Enabled recorder with the default trace capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Enabled recorder with an explicit trace capacity (0 = metrics only).
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Recorder {
            enabled: true,
            registry: Registry::new(),
            trace: Trace::with_capacity(capacity),
        }
    }

    /// A recorder that ignores everything (for uninstrumented runs).
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            registry: Registry::new(),
            trace: Trace::with_capacity(0),
        }
    }

    /// Whether this recorder keeps what it is given.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Add `n` to a counter.
    pub fn count(&mut self, name: &str, n: u64) {
        if self.enabled {
            self.registry.count(name, n);
        }
    }

    /// Increment a counter by one.
    pub fn bump(&mut self, name: &str) {
        self.count(name, 1);
    }

    /// Set a gauge (last write wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        if self.enabled {
            self.registry.gauge(name, v);
        }
    }

    /// Raise a gauge to at least `v` (high-water marks).
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        if self.enabled {
            self.registry.gauge_max(name, v);
        }
    }

    /// Record a numeric observation into a streaming summary.
    pub fn observe(&mut self, name: &str, x: f64) {
        if self.enabled {
            self.registry.observe(name, x);
        }
    }

    /// Emit a trace event at simulated time `sim_time`.
    pub fn event(
        &mut self,
        sim_time: f64,
        component: &'static str,
        event: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        if self.enabled {
            self.trace.push(Record {
                sim_time,
                component,
                event,
                fields,
            });
        }
    }

    /// Time the host wall-clock duration of `f` into the registry's host
    /// section (excluded from deterministic exports).
    pub fn time_host<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.registry
            .observe_host(name, start.elapsed().as_secs_f64());
        out
    }

    /// Record an already-measured host duration in seconds.
    pub fn observe_host(&mut self, name: &str, secs: f64) {
        if self.enabled {
            self.registry.observe_host(name, secs);
        }
    }

    /// Read access to the collected metrics.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Read access to the collected trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consume the recorder, returning its registry and trace.
    pub fn into_parts(self) -> (Registry, Trace) {
        (self.registry, self.trace)
    }

    /// Merge another recorder's content into this one (counters add,
    /// gauges max, summaries merge, traces concatenate). Merge shards in
    /// a fixed order for bit-reproducibility.
    pub fn merge(&mut self, other: &Recorder) {
        if self.enabled {
            self.registry.merge(&other.registry);
            self.trace.extend_from(&other.trace);
        }
    }

    /// Merge with every metric name prefixed by `prefix.`.
    pub fn merge_prefixed(&mut self, other: &Registry, prefix: &str) {
        if self.enabled {
            self.registry.merge(&other.prefixed(prefix));
        }
    }

    /// Fold an already-accumulated summary into the named summary.
    pub fn merge_summary(&mut self, name: &str, s: &crate::summary::Summary) {
        if self.enabled {
            self.registry.merge_summary(name, s);
        }
    }
}

/// Wall-clock stopwatch for call sites where the closure form of
/// [`Recorder::time_host`] is awkward.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since `start`.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        r.bump("c");
        r.gauge("g", 1.0);
        r.observe("s", 2.0);
        r.event(0.0, "t", "e", vec![]);
        let out = r.time_host("h", || 42);
        assert_eq!(out, 42);
        assert!(r.registry().is_empty());
        assert!(r.trace().is_empty());
    }

    #[test]
    fn enabled_recorder_collects() {
        let mut r = Recorder::new();
        r.bump("c");
        r.count("c", 2);
        r.observe("s", 5.0);
        r.event(1.0, "t", "e", vec![("k", 7u64.into())]);
        assert_eq!(r.registry().counter("c"), 3);
        assert_eq!(r.trace().len(), 1);
    }

    #[test]
    fn merge_folds_both_parts() {
        let mut a = Recorder::new();
        a.bump("c");
        let mut b = Recorder::new();
        b.bump("c");
        b.event(2.0, "t", "e", vec![]);
        a.merge(&b);
        assert_eq!(a.registry().counter("c"), 2);
        assert_eq!(a.trace().len(), 1);
    }

    #[test]
    fn host_timing_lands_in_host_section() {
        let mut r = Recorder::new();
        r.time_host("phase", || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        let s = r.registry().host_summary("phase").unwrap();
        assert_eq!(s.count(), 1);
        assert!(s.mean() > 0.0);
        assert!(!r.registry().to_csv().contains("phase"));
    }
}
