//! The one JSON serializer every machine-readable report goes through.
//!
//! `vds stats --json`, `vds bench --json` / `BENCH_<n>.json` and the
//! telemetry server's `/progress` historically each hand-rolled their own
//! object assembly, and the three shapes drifted (field order, float
//! formatting, missing discriminators). [`JsonObj`] is the shared
//! builder: insertion-ordered fields, one escaping rule
//! ([`crate::registry::json_escape`]), one float policy (shortest
//! round-trip `Display`, non-finite → `null`), and a common envelope —
//! every report opens with `"schema":"vds.report.v1"` and a `"kind"`
//! discriminator so consumers can route on the first bytes of the line.
//!
//! The golden test in `crates/obs/tests/json_golden.rs` pins the exact
//! bytes of all three kinds.

use crate::registry::json_escape;
use std::fmt::Write as _;

/// The envelope schema identifier every report carries.
pub const REPORT_SCHEMA: &str = "vds.report.v1";

/// Insertion-ordered JSON object builder (compact rendering, no spaces).
#[derive(Debug, Clone)]
pub struct JsonObj {
    buf: String,
    empty: bool,
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> JsonObj {
        JsonObj {
            buf: String::from("{"),
            empty: true,
        }
    }

    /// A report envelope: an object opened with the shared
    /// `"schema":"vds.report.v1"` header and the given `"kind"`.
    pub fn report(kind: &str) -> JsonObj {
        JsonObj::new()
            .str("schema", REPORT_SCHEMA)
            .str("kind", kind)
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        let _ = write!(self.buf, "\"{}\":", json_escape(key));
    }

    /// Add a string field (escaped).
    pub fn str(mut self, key: &str, v: &str) -> JsonObj {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", json_escape(v));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, v: u64) -> JsonObj {
        self.key(key);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field: shortest round-trip rendering; JSON has no
    /// NaN/Infinity literals, so non-finite values become `null`.
    pub fn f64(mut self, key: &str, v: f64) -> JsonObj {
        self.key(key);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a float field with fixed decimal places (wall-clock style
    /// fields like `elapsed_secs` pin their width for readability).
    pub fn f64_fixed(mut self, key: &str, v: f64, places: usize) -> JsonObj {
        self.key(key);
        if v.is_finite() {
            let _ = write!(self.buf, "{v:.places$}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> JsonObj {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a pre-rendered JSON value verbatim (nested objects the caller
    /// already serialized deterministically, e.g.
    /// [`crate::Registry::to_json_object`] or a journal summary).
    pub fn raw(mut self, key: &str, v: &str) -> JsonObj {
        self.key(key);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return its bytes (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Render a slice of pre-rendered JSON values as an array.
pub fn json_array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_render_in_insertion_order() {
        let s = JsonObj::new()
            .str("b", "x")
            .u64("a", 7)
            .bool("ok", true)
            .f64("r", 1.5)
            .raw("nested", "{\"k\":1}")
            .finish();
        assert_eq!(
            s,
            "{\"b\":\"x\",\"a\":7,\"ok\":true,\"r\":1.5,\"nested\":{\"k\":1}}"
        );
    }

    #[test]
    fn envelope_carries_schema_and_kind() {
        let s = JsonObj::report("stats").str("verdict", "correct").finish();
        assert_eq!(
            s,
            "{\"schema\":\"vds.report.v1\",\"kind\":\"stats\",\"verdict\":\"correct\"}"
        );
    }

    #[test]
    fn floats_follow_one_policy() {
        let s = JsonObj::new()
            .f64("inf", f64::INFINITY)
            .f64("nan", f64::NAN)
            .f64("v", 0.25)
            .f64_fixed("w", 1.0 / 3.0, 3)
            .f64_fixed("bad", f64::NAN, 3)
            .finish();
        assert_eq!(
            s,
            "{\"inf\":null,\"nan\":null,\"v\":0.25,\"w\":0.333,\"bad\":null}"
        );
    }

    #[test]
    fn strings_and_keys_are_escaped() {
        let s = JsonObj::new().str("k\"ey", "a\\b\nc").finish();
        assert_eq!(s, "{\"k\\\"ey\":\"a\\\\b\\nc\"}");
    }

    #[test]
    fn arrays_join_rendered_items() {
        assert_eq!(json_array(&[]), "[]");
        assert_eq!(
            json_array(&["1".into(), "{\"a\":2}".into()]),
            "[1,{\"a\":2}]"
        );
    }
}
