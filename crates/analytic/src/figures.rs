//! Figures 4 and 5 — the `Ḡ_corr(α, β)` gain surfaces.
//!
//! The paper plots the expected recovery gain of the predictive scheme
//! (Eq. 13, computed from the *exact* equations (10)–(12) under the
//! normalisation `c = t' = βt`, s = 20) over `α ∈ [½, 1]`, `β ∈ [0, 1]`,
//! once for `p = 0.5` (Figure 4, "worst case — no strategy should be worse
//! than a random choice") and once for `p = 1.0` (Figure 5, best case).
//!
//! This module produces the same grids as plain data (`Vec`-based, so the
//! crate stays dependency-free); the bench harness wraps them in
//! `vds_desim::series::Surface` for rendering/CSV.

use crate::params::Params;
use crate::predictive::gbar_corr_exact;

/// One figure-grid evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct GainGrid {
    /// α sample points.
    pub alphas: Vec<f64>,
    /// β sample points.
    pub betas: Vec<f64>,
    /// Prediction accuracy the grid was computed for.
    pub p_correct: f64,
    /// Checkpoint interval used.
    pub s: u32,
    /// Row-major gains: `gain[ib * alphas.len() + ia]`.
    pub gain: Vec<f64>,
}

impl GainGrid {
    /// Gain at grid indices `(ia, ib)`.
    pub fn at(&self, ia: usize, ib: usize) -> f64 {
        self.gain[ib * self.alphas.len() + ia]
    }

    /// Gain at the grid point nearest `(alpha, beta)`.
    pub fn nearest(&self, alpha: f64, beta: f64) -> f64 {
        let ia = nearest(&self.alphas, alpha);
        let ib = nearest(&self.betas, beta);
        self.at(ia, ib)
    }

    /// Maximum gain on the grid.
    pub fn max(&self) -> f64 {
        self.gain.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum gain on the grid.
    pub fn min(&self) -> f64 {
        self.gain.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

fn nearest(grid: &[f64], v: f64) -> usize {
    let mut best = 0usize;
    let mut bestd = f64::INFINITY;
    for (i, &g) in grid.iter().enumerate() {
        let d = (g - v).abs();
        if d < bestd {
            bestd = d;
            best = i;
        }
    }
    best
}

fn gridpoints(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

/// Evaluate `Ḡ_corr(α, β)` on an `na × nb` grid over
/// `α ∈ [½, 1] × β ∈ [0, 1]` for accuracy `p_correct` and interval `s`.
pub fn gain_surface(p_correct: f64, s: u32, na: usize, nb: usize) -> GainGrid {
    let alphas = gridpoints(0.5, 1.0, na);
    let betas = gridpoints(0.0, 1.0, nb);
    let mut gain = Vec::with_capacity(na * nb);
    for &beta in &betas {
        for &alpha in &alphas {
            let params = Params::with_beta(alpha, beta, s);
            gain.push(gbar_corr_exact(&params, p_correct));
        }
    }
    GainGrid {
        alphas,
        betas,
        p_correct,
        s,
        gain,
    }
}

/// Figure 4: `Ḡ_corr(α, β)` for p = 0.5, s = 20, on the default 26×21 grid
/// (α step 0.02, β step 0.05).
pub fn figure4() -> GainGrid {
    gain_surface(0.5, 20, 26, 21)
}

/// Figure 5: `Ḡ_corr(α, β)` for p = 1.0, s = 20.
pub fn figure5() -> GainGrid {
    gain_surface(1.0, 20, 26, 21)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dimensions() {
        let g = figure4();
        assert_eq!(g.alphas.len(), 26);
        assert_eq!(g.betas.len(), 21);
        assert_eq!(g.gain.len(), 26 * 21);
        assert_eq!(g.p_correct, 0.5);
        assert_eq!(g.s, 20);
    }

    #[test]
    fn figure4_operating_point() {
        // At (α=0.65, β=0.1) Figure 4 should read ≈ 1.38 (the paper notes
        // s=20 is already close to the limit).
        let g = figure4();
        let v = g.nearest(0.65, 0.1);
        assert!((v - 1.38).abs() < 0.05, "figure4(0.65, 0.1) = {v}");
    }

    #[test]
    fn figure5_dominates_figure4() {
        // Perfect prediction can only help: pointwise ≥.
        let g4 = figure4();
        let g5 = figure5();
        for i in 0..g4.gain.len() {
            assert!(g5.gain[i] >= g4.gain[i] - 1e-12, "index {i}");
        }
    }

    #[test]
    fn surfaces_decrease_in_alpha() {
        // For fixed β the gain must fall as contention grows.
        let g = figure4();
        for ib in 0..g.betas.len() {
            for ia in 1..g.alphas.len() {
                assert!(g.at(ia, ib) <= g.at(ia - 1, ib) + 1e-12, "ia={ia} ib={ib}");
            }
        }
    }

    #[test]
    fn surfaces_increase_in_beta() {
        // Larger overheads on the conventional side favour the SMT system:
        // β raises T1_round (two context switches per round pair!) more
        // than the SMT times, so the gain grows with β.
        let g = figure5();
        for ia in 0..g.alphas.len() {
            for ib in 1..g.betas.len() {
                assert!(g.at(ia, ib) >= g.at(ia, ib - 1) - 1e-12, "ia={ia} ib={ib}");
            }
        }
    }

    #[test]
    fn corner_values_sane() {
        let g4 = figure4();
        // best corner (α=½, β=1): large gain; worst corner (α=1, β=0):
        // pure retry at serialised speed ~ 1/(2α)·(1+2p ln2)... bounded
        // below by ~0.85 for p=.5.
        assert!(g4.max() == g4.nearest(0.5, 1.0));
        assert!(g4.min() == g4.nearest(1.0, 0.0));
        assert!(g4.min() > 0.8 && g4.min() < 1.0);
        assert!(g4.max() > 1.5);
    }

    #[test]
    fn custom_grid_resolution() {
        let g = gain_surface(0.5, 20, 6, 5);
        assert_eq!(g.alphas, vec![0.5, 0.6, 0.7, 0.8, 0.9, 1.0]);
        assert_eq!(g.betas, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }
}
