//! §3.3 — recovery gains for the roll-forward schemes *with* fault
//! detection during roll-forward (Eqs. 6–8).
//!
//! After a mismatch at round `i`, thread 1 replays version 3 for `i` rounds
//! while thread 2 rolls forward. Let `P`, `Q` be the two candidate states
//! (the end-of-round-`i` states of versions 1 and 2; exactly one is
//! fault-free, but which is unknown until the vote).
//!
//! * **Deterministic** scheme: thread 2 runs `i/4` rounds of each version
//!   starting from each state (4 segments, `i` rounds total, one context
//!   switch). The two segments seeded by the fault-free state constitute
//!   guaranteed progress of `i/4` rounds.
//! * **Probabilistic** scheme: thread 2 picks one state `R ∈ {P, Q}` and
//!   runs both versions `i/2` rounds from it. If `R` was fault-free
//!   (probability `p`; `p = ½` for a random pick) the progress is `i/2`
//!   rounds, otherwise zero.
//!
//! Roll-forward never crosses the checkpoint horizon: intended progress `x`
//! becomes `min(x, s − i)`.
//!
//! The gain compares conventional correction time *plus* the conventional
//! cost of the rounds the SMT system is now ahead by, against the SMT
//! correction time:
//! `G(i) = (T1_corr + progress·T1_round) / THT2_corr`.

use crate::math::clamp_rollforward;
use crate::params::Params;
use crate::timing::{t1_corr, t1_round, tht2_corr};

/// Deterministic roll-forward progress after a fault at round `i`
/// (real-valued, per the paper's integrality simplification).
pub fn det_progress(p: &Params, i: u32) -> f64 {
    clamp_rollforward(f64::from(i) / 4.0, p.s, i)
}

/// Probabilistic roll-forward progress, *conditional on a correct pick*.
pub fn prob_progress(p: &Params, i: u32) -> f64 {
    clamp_rollforward(f64::from(i) / 2.0, p.s, i)
}

/// Eq. (6), exact: gain of the deterministic scheme for a fault at round
/// `i`.
pub fn g_det_exact(p: &Params, i: u32) -> f64 {
    (t1_corr(p, i) + det_progress(p, i) * t1_round(p)) / tht2_corr(p, i)
}

/// Eq. (6), approximate (`c, t' ≪ t`):
/// `3/(4α)` for `i ≤ 4s/5`, `(2s − i)/(2iα)` beyond.
pub fn g_det_approx(p: &Params, i: u32) -> f64 {
    let (i_f, s_f) = (f64::from(i), f64::from(p.s));
    if i_f <= 4.0 * s_f / 5.0 {
        3.0 / (4.0 * p.alpha)
    } else {
        (2.0 * s_f - i_f) / (2.0 * i_f * p.alpha)
    }
}

/// Average of Eq. (6) over `i = 1..s` (faults uniform over rounds), exact.
pub fn gbar_det_exact(p: &Params) -> f64 {
    (1..=p.s).map(|i| g_det_exact(p, i)).sum::<f64>() / f64::from(p.s)
}

/// Eq. (7): `Ḡ_det ≈ (1 + 2·ln(5/4)) / (2α) ≈ 0.7231/α`.
///
/// The deterministic scheme beats the conventional VDS whenever
/// `α < (1 + 2·ln(5/4))/2 ≈ 0.723` — "a medium utilization of the
/// processor suffices to gain".
pub fn gbar_det_approx(p: &Params) -> f64 {
    (1.0 + 2.0 * crate::math::consts::ln_5_4()) / (2.0 * p.alpha)
}

/// The α below which the deterministic scheme's average gain exceeds 1
/// (paper: ≈ 0.723).
pub fn det_alpha_threshold() -> f64 {
    (1.0 + 2.0 * crate::math::consts::ln_5_4()) / 2.0
}

/// Probabilistic-scheme gain for a fault at round `i` given pick-accuracy
/// `p_correct`, exact. A correct pick advances `min(i/2, s−i)` rounds, a
/// wrong pick advances nothing (but costs the same SMT time), so the
/// expected catch-up value scales by `p_correct`.
pub fn g_prob_exact(p: &Params, i: u32, p_correct: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_correct));
    (t1_corr(p, i) + p_correct * prob_progress(p, i) * t1_round(p)) / tht2_corr(p, i)
}

/// Average probabilistic gain over `i = 1..s`, exact.
pub fn gbar_prob_exact(p: &Params, p_correct: f64) -> f64 {
    (1..=p.s)
        .map(|i| g_prob_exact(p, i, p_correct))
        .sum::<f64>()
        / f64::from(p.s)
}

/// Eq. (8): `Ḡ_prob ≈ (1 + 2p·ln(3/2)) / (2α)` — "for p = 0.5, a random
/// choice, [Eqs. (7)] and [(8)] have approximately equal values".
pub fn gbar_prob_approx(p: &Params, p_correct: f64) -> f64 {
    (1.0 + 2.0 * p_correct * crate::math::consts::ln_3_2()) / (2.0 * p.alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Params {
        Params::paper_default()
    }

    #[test]
    fn progress_clamps_at_checkpoint_horizon() {
        let p = paper(); // s = 20
                         // deterministic: x = i/4; clamp kicks in for i > 4s/5 = 16
        assert_eq!(det_progress(&p, 8), 2.0);
        assert_eq!(det_progress(&p, 16), 4.0);
        assert_eq!(det_progress(&p, 18), 2.0); // s - i = 2 < 18/4
        assert_eq!(det_progress(&p, 20), 0.0);
        // probabilistic: x = i/2; clamp for i > 2s/3 ≈ 13.3
        assert_eq!(prob_progress(&p, 10), 5.0);
        assert_eq!(prob_progress(&p, 14), 6.0); // s - i = 6 < 7
        assert_eq!(prob_progress(&p, 20), 0.0);
    }

    #[test]
    fn det_approx_piecewise_boundary() {
        let p = paper();
        // below 4s/5 = 16 the approximation is constant 3/(4α)
        let g = 3.0 / (4.0 * p.alpha);
        assert_eq!(g_det_approx(&p, 1), g);
        assert_eq!(g_det_approx(&p, 16), g);
        // at i = s it degenerates to plain retry ratio 1/(2α)
        assert!((g_det_approx(&p, 20) - 1.0 / (2.0 * p.alpha)).abs() < 1e-12);
    }

    #[test]
    fn exact_approaches_approx_for_small_beta() {
        let p = Params::with_beta(0.65, 1e-9, 20);
        for i in 1..=20 {
            let e = g_det_exact(&p, i);
            let a = g_det_approx(&p, i);
            assert!((e - a).abs() < 1e-6, "i={i}: exact={e} approx={a}");
        }
    }

    #[test]
    fn eq7_average_value() {
        // Ḡ_det ≈ 0.7231/α; the paper's α-threshold for gain > 1 is 0.723.
        let thr = det_alpha_threshold();
        assert!((thr - 0.723).abs() < 5e-4, "threshold={thr}");
        let p = Params::with_beta(0.65, 0.0, 20);
        let approx = gbar_det_approx(&p);
        assert!((approx - 0.7231 / 0.65).abs() < 1e-3);
        // exact (with β = 0) agrees with the log-approximation to O(1/s)
        let exact = gbar_det_exact(&p);
        assert!(
            (exact - approx).abs() < 0.05,
            "exact={exact} approx={approx}"
        );
    }

    #[test]
    fn eq8_probabilistic_average() {
        let p = Params::with_beta(0.65, 0.0, 20);
        // p = 0.5: det and prob approximately equal (paper statement)
        let det = gbar_det_approx(&p);
        let prob = gbar_prob_approx(&p, 0.5);
        assert!(
            (det - prob).abs() / det < 0.03,
            "det={det} prob={prob} should be ~equal at p=0.5"
        );
        // p > 0.5: prob wins
        assert!(gbar_prob_approx(&p, 0.8) > det);
        assert!(gbar_prob_approx(&p, 1.0) > gbar_prob_approx(&p, 0.8));
    }

    #[test]
    fn exact_prob_average_matches_approx_at_beta_zero() {
        let p = Params::with_beta(0.6, 0.0, 40);
        for &pc in &[0.5, 0.75, 1.0] {
            let e = gbar_prob_exact(&p, pc);
            let a = gbar_prob_approx(&p, pc);
            assert!((e - a).abs() < 0.04, "pc={pc} exact={e} approx={a}");
        }
    }

    #[test]
    fn gain_monotone_decreasing_in_alpha() {
        for i in [1u32, 8, 15, 20] {
            let mut last = f64::INFINITY;
            for &a in &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
                let p = Params::with_beta(a, 0.1, 20);
                let g = g_det_exact(&p, i);
                assert!(g <= last + 1e-12, "not monotone at alpha={a}, i={i}");
                last = g;
            }
        }
    }

    #[test]
    fn perfect_overlap_always_gains() {
        // α = 0.5: SMT runs the retry at no extra wall cost versus one
        // version; every scheme must gain over the conventional processor.
        let p = Params::with_beta(0.5, 0.1, 20);
        assert!(gbar_det_exact(&p) > 1.0);
        assert!(gbar_prob_exact(&p, 0.5) > 1.0);
    }

    #[test]
    #[should_panic]
    fn prob_rejects_bad_probability() {
        g_prob_exact(&paper(), 5, 1.5);
    }
}
