#![warn(missing_docs)]

//! # vds-analytic — the paper's closed-form performance model
//!
//! Exact and approximate implementations of every equation in
//! Fechner/Keller/Sobe, *"Performance Estimation of Virtual Duplex Systems
//! on Simultaneous Multithreaded Processors"* (IPDPS 2004 workshops),
//! plus the §5 outlook extensions (more than two hardware threads, clock
//! scaling).
//!
//! ## Model recap
//!
//! A virtual duplex system (VDS) runs two diverse versions of a program in
//! *rounds* of length `t`, compares their states (cost `t'`) after each
//! round, and checkpoints every `s` rounds. On a mismatch at round `i`
//! (1 ≤ i ≤ s after the last checkpoint) a third version replays rounds
//! 1..i and a majority vote identifies the faulty version.
//!
//! * Conventional processor: versions alternate, each round pair costs
//!   `T1_round = 2(t+c) + t'` (Eq. 1); recovery costs
//!   `T1_corr = i·t + 2t'` (Eq. 2).
//! * 2-way SMT processor: versions run in parallel hardware threads; a
//!   round pair costs `THT2_round = 2αt + t'` (Eq. 3) where `α ∈ (½, 1]`
//!   models resource contention (α = 0.5 ⇒ perfect overlap, α = 1 ⇒ full
//!   serialisation; the Pentium 4 reportedly achieves α ≈ 0.65). During
//!   recovery the second thread *rolls forward* while the first replays,
//!   `THT2_corr = 2iαt + 2t'` (Eq. 5).
//!
//! Gains are ratios of conventional time (including the catch-up value of
//! any roll-forward progress, valued at `T1_round` per round) to SMT time.
//!
//! ## Module map
//!
//! * [`params`] — the parameter bundle `(t, c, t', α, s)` and the paper's
//!   normalisation `c = t' = βt` (Eq. 14).
//! * [`timing`] — Eqs. (1), (2), (3), (5) and the round-gain Eq. (4).
//! * [`rollforward`] — §3: deterministic (Eqs. 6–7) and probabilistic
//!   (Eq. 8) roll-forward with fault detection.
//! * [`predictive`] — §4: prediction-guided roll-forward without detection
//!   (Eqs. 9–13) and the `G_max` limit (the paper's headline 1.38).
//! * [`figures`] — the `Ḡ_corr(α, β)` surfaces of Figures 4 and 5 as plain
//!   grid evaluations.
//! * [`multithread`] — §5 outlook: ≥3 hardware threads and the
//!   clock-frequency-reduction trade.
//! * [`checkpointing`] — the §2.2 interval trade-off as a closed form
//!   (Young-style square-root law), validated against experiment E12.
//! * [`math`] — harmonic sums and the logarithmic tail approximations the
//!   paper uses (`Σ_{n+1}^{m} 1/i ≈ ln(m/n)`).
//!
//! Every quantity exists in an `_exact` form (sums over integer `i`, no
//! small-`c,t'` assumptions) and, where the paper states one, an `_approx`
//! form matching the printed formula. Unit tests pin both to the paper's
//! numeric claims: the 0.723 α-threshold (Eq. 7), the `(1+ln2)/2 ≈ 0.847`
//! threshold (§4.3), and `G_max ≈ 1.38` for `p=0.5, α=0.65, β=0.1`.
//!
//! ```
//! use vds_analytic::{predictive, rollforward, timing, Params};
//!
//! let p = Params::paper_default(); // α=0.65, β=0.1, s=20
//! assert!((timing::g_round_exact(&p) - 2.3 / 1.4).abs() < 1e-12);
//! assert!((rollforward::det_alpha_threshold() - 0.723).abs() < 5e-4);
//! assert!((predictive::g_max(0.65, 0.1, 0.5) - 1.38).abs() < 0.01);
//! ```

pub mod checkpointing;
pub mod figures;
pub mod math;
pub mod multithread;
pub mod params;
pub mod predictive;
pub mod rollforward;
pub mod schemes;
pub mod timing;

pub use params::Params;
