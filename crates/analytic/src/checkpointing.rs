//! Checkpoint-interval optimisation (the §2.2 trade-off, after
//! Ziv & Bruck and Young).
//!
//! The paper's design rule — *compare every round, checkpoint every `s`
//! rounds* — leaves `s` free. Writing a checkpoint costs `C` time units;
//! failing at round `i` of an interval costs a recovery (and sometimes a
//! roll-back of `i − 1` rounds). This module provides a closed-form
//! expected-overhead model and the optimal `s`, validated against the
//! stochastic engine in experiment E12.
//!
//! ## Model
//!
//! Let `R` be the cost of one round pair (`T1_round` or `THT2_round`),
//! `q` the probability that a given round suffers a corruption, and `C`
//! the checkpoint cost. Consider one interval of `s` rounds:
//!
//! * checkpoint overhead per useful round: `C / s`;
//! * a fault at round `i` (probability ≈ `q` per round) triggers a
//!   recovery of duration ≈ `i·R_retry`; averaged over `i` uniform in
//!   `1..=s` the expected replay is `(s+1)/2` rounds. A fraction of
//!   recoveries additionally roll back `i − 1 ≈ (s−1)/2` rounds of work.
//!
//! Ignoring second-order terms this yields the per-round overhead
//!
//! `V(s) = C/s + q·ρ·(s+1)/2 · R`
//!
//! where `ρ` folds the retry/rollback weights. Minimising over `s` gives
//! the Young-style square-root law
//!
//! `s* = sqrt(2C / (q·ρ·R))`.

use crate::params::Params;
use crate::timing::t1_round;

/// Weighting of the recovery work per fault, in round-pair equivalents.
///
/// `retry_weight` scales the replay cost (1.0 = replaying `i` rounds of
/// one version costs `i` single-version rounds ≈ `i·R/2` for the
/// conventional machine — we keep it in units of `R` for simplicity);
/// `rollback_prob` is the chance a recovery degenerates into a rollback
/// that loses the interval's work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryWeights {
    /// Replay cost multiplier (in units of round pairs).
    pub retry_weight: f64,
    /// Probability that a recovery ends in a rollback.
    pub rollback_prob: f64,
}

impl RecoveryWeights {
    /// Defaults matching the conventional stop-and-retry scheme with a
    /// modest second-fault probability.
    pub fn conventional() -> Self {
        RecoveryWeights {
            retry_weight: 0.5, // version 3 replays alone: i·t = i·R/2-ish
            rollback_prob: 0.1,
        }
    }

    /// Effective per-fault weight ρ used by the closed form.
    pub fn rho(&self) -> f64 {
        self.retry_weight + self.rollback_prob
    }
}

/// Expected overhead per useful round for checkpoint interval `s`:
/// `V(s) = C/s + q·ρ·(s+1)/2·R`.
pub fn expected_overhead_per_round(
    params: &Params,
    checkpoint_cost: f64,
    q: f64,
    weights: RecoveryWeights,
    s: u32,
) -> f64 {
    assert!(s >= 1);
    assert!((0.0..1.0).contains(&q));
    let r = t1_round(params);
    checkpoint_cost / f64::from(s) + q * weights.rho() * (f64::from(s) + 1.0) / 2.0 * r
}

/// The square-root-law optimum `s* = sqrt(2C / (q·ρ·R))`, clamped to at
/// least 1.
pub fn optimal_interval(
    params: &Params,
    checkpoint_cost: f64,
    q: f64,
    weights: RecoveryWeights,
) -> f64 {
    assert!(q > 0.0, "q = 0 means never checkpoint (s* = ∞)");
    let r = t1_round(params);
    (2.0 * checkpoint_cost / (q * weights.rho() * r))
        .sqrt()
        .max(1.0)
}

/// Integer `s` minimising the closed-form overhead (checks the floor and
/// ceiling of the continuous optimum).
pub fn optimal_interval_int(
    params: &Params,
    checkpoint_cost: f64,
    q: f64,
    weights: RecoveryWeights,
) -> u32 {
    let s_star = optimal_interval(params, checkpoint_cost, q, weights);
    let lo = (s_star.floor() as u32).max(1);
    let hi = lo + 1;
    let v = |s| expected_overhead_per_round(params, checkpoint_cost, q, weights, s);
    if v(lo) <= v(hi) {
        lo
    } else {
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::paper_default()
    }

    #[test]
    fn overhead_has_interior_minimum() {
        let w = RecoveryWeights::conventional();
        let v = |s| expected_overhead_per_round(&params(), 10.0, 0.02, w, s);
        let s_opt = optimal_interval_int(&params(), 10.0, 0.02, w);
        assert!(s_opt > 1);
        assert!(v(s_opt) <= v(1), "s=1 pays checkpoints every round");
        assert!(v(s_opt) <= v(512), "huge s pays replays/rollbacks");
        // local optimality
        assert!(v(s_opt) <= v(s_opt + 1) + 1e-12);
        if s_opt > 1 {
            assert!(v(s_opt) <= v(s_opt - 1) + 1e-12);
        }
    }

    #[test]
    fn square_root_law_scalings() {
        let w = RecoveryWeights::conventional();
        let s1 = optimal_interval(&params(), 10.0, 0.02, w);
        // 4× checkpoint cost → 2× interval
        let s2 = optimal_interval(&params(), 40.0, 0.02, w);
        assert!((s2 / s1 - 2.0).abs() < 1e-9);
        // 4× fault rate → half the interval
        let s3 = optimal_interval(&params(), 10.0, 0.08, w);
        assert!((s3 / s1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn higher_fault_rate_prefers_smaller_s() {
        let w = RecoveryWeights::conventional();
        let lo = optimal_interval_int(&params(), 10.0, 0.005, w);
        let hi = optimal_interval_int(&params(), 10.0, 0.08, w);
        assert!(hi < lo, "q=0.08 → s={hi}, q=0.005 → s={lo}");
    }

    #[test]
    fn matches_the_papers_regime() {
        // With disk-like checkpoint costs and the paper's implicit fault
        // rates, s ≈ 20 is a sensible interval — the closed form should
        // put the optimum in the tens, not 2 or 2000.
        let w = RecoveryWeights::conventional();
        let s = optimal_interval_int(&params(), 12.0, 0.01, w);
        assert!((5..=80).contains(&s), "s* = {s}");
    }

    #[test]
    #[should_panic(expected = "q = 0")]
    fn zero_fault_rate_rejected() {
        optimal_interval(&params(), 10.0, 0.0, RecoveryWeights::conventional());
    }
}
