//! Closed-form lookups keyed by scheme *name*.
//!
//! The engine crates own the `Scheme` enum; layers below them — the
//! conformance tracker in `vds-obs`, the sweep exporters — see schemes
//! only as the label recorded in journal headers and run reports. This
//! module centralizes the name → closed-form mapping so every consumer
//! prices a scheme identically: normal-round time (Eq. 1 / Eq. 3),
//! recovery time for a fault at in-interval round `i` (Eq. 2 / Eq. 5,
//! boosted variants via `α_k`), and the steady-state recovery gain ḡ
//! (Eqs. 7, 8, 13 and the boosted averages).

use crate::multithread::{boosted_corr_time, gbar_boost3_exact, gbar_boost5_exact};
use crate::params::Params;
use crate::predictive::gbar_corr_exact;
use crate::rollforward::{gbar_det_exact, gbar_prob_exact};
use crate::timing::{t1_corr, t1_round, tht2_corr, tht2_round};

/// Every scheme label the engines emit, in canonical order.
pub const SCHEME_NAMES: [&str; 6] = [
    "conventional",
    "smt-det",
    "smt-prob",
    "smt-pred",
    "smt-boost3",
    "smt-boost5",
];

/// Whether `name` is a known scheme label.
pub fn is_scheme_name(name: &str) -> bool {
    SCHEME_NAMES.contains(&name)
}

/// Whether the named scheme co-schedules both versions on one SMT core
/// (everything except the conventional two-processor duplex).
pub fn is_smt(name: &str) -> bool {
    name != "conventional"
}

/// Predicted duration of one fault-free round: `T1_round` (Eq. 1) for
/// the conventional duplex, `THT2_round` (Eq. 3) for every SMT scheme.
/// `None` for an unknown label.
pub fn round_time(name: &str, p: &Params) -> Option<f64> {
    if !is_scheme_name(name) {
        return None;
    }
    Some(if is_smt(name) {
        tht2_round(p)
    } else {
        t1_round(p)
    })
}

/// Predicted recovery time for a fault detected at in-interval round
/// `i`: `T1_corr` (Eq. 2), `THT2_corr` (Eq. 5), or the boosted
/// `i·k·α_k·t + 2t'`. `None` for an unknown label.
pub fn corr_time(name: &str, p: &Params, i: u32) -> Option<f64> {
    match name {
        "conventional" => Some(t1_corr(p, i)),
        "smt-det" | "smt-prob" | "smt-pred" => Some(tht2_corr(p, i)),
        "smt-boost3" => Some(boosted_corr_time(p, 3, i)),
        "smt-boost5" => Some(boosted_corr_time(p, 5, i)),
        _ => None,
    }
}

/// Steady-state expected per-round gain ḡ during recovery: Eq. 7
/// (deterministic), Eq. 8 (probabilistic), Eq. 13 (predictive), the
/// boosted averages, and `1.0` for the conventional duplex (its recovery
/// proceeds at conventional speed by definition). `p_correct` applies to
/// the schemes that guess (probabilistic, predictive, boost3). `None`
/// for an unknown label.
pub fn gbar(name: &str, p: &Params, p_correct: f64) -> Option<f64> {
    match name {
        "conventional" => Some(1.0),
        "smt-det" => Some(gbar_det_exact(p)),
        "smt-prob" => Some(gbar_prob_exact(p, p_correct)),
        "smt-pred" => Some(gbar_corr_exact(p, p_correct)),
        "smt-boost3" => Some(gbar_boost3_exact(p, p_correct)),
        "smt-boost5" => Some(gbar_boost5_exact(p)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_name_resolves() {
        let p = Params::paper_default();
        for name in SCHEME_NAMES {
            assert!(is_scheme_name(name));
            assert!(round_time(name, &p).unwrap() > 0.0, "{name}");
            assert!(corr_time(name, &p, 3).unwrap() > 0.0, "{name}");
            assert!(gbar(name, &p, 0.5).unwrap() > 0.0, "{name}");
        }
        for bad in ["", "smt", "SMT-DET", "boost3"] {
            assert!(round_time(bad, &p).is_none(), "{bad}");
            assert!(corr_time(bad, &p, 1).is_none(), "{bad}");
            assert!(gbar(bad, &p, 0.5).is_none(), "{bad}");
        }
    }

    #[test]
    fn lookups_agree_with_the_direct_forms() {
        let p = Params::paper_default();
        assert_eq!(round_time("conventional", &p), Some(t1_round(&p)));
        assert_eq!(round_time("smt-prob", &p), Some(tht2_round(&p)));
        assert_eq!(corr_time("smt-det", &p, 7), Some(tht2_corr(&p, 7)));
        assert_eq!(
            corr_time("smt-boost3", &p, 7),
            Some(boosted_corr_time(&p, 3, 7))
        );
        assert_eq!(gbar("smt-det", &p, 0.5), Some(gbar_det_exact(&p)));
        assert_eq!(gbar("smt-boost5", &p, 0.0), Some(gbar_boost5_exact(&p)));
    }
}
