//! §4 — prediction-guided roll-forward *without* fault detection during
//! roll-forward (Eqs. 9–13) and the `G_max` limit.
//!
//! If the VDS refrains from comparisons during roll-forward, thread 2 can
//! simply continue **one** version for `i` further rounds while thread 1
//! retries version 3. A fault-version predictor (crash evidence, fault
//! history — see `vds-predictor`) guesses which version is faulty with
//! probability `p` of being right:
//!
//! * correct guess → roll-forward of `min(i, s−i)` rounds survives the
//!   vote (Eqs. 9–10);
//! * wrong guess → the roll-forward is worthless and the SMT system merely
//!   matches a conventional retry (Eq. 11).

use crate::math::clamp_rollforward;
use crate::params::Params;
use crate::timing::{t1_corr, t1_round, tht2_corr};

/// Roll-forward progress of the predictive scheme when the guess is
/// correct: `min(i, s − i)` rounds.
pub fn hit_progress(p: &Params, i: u32) -> f64 {
    clamp_rollforward(f64::from(i), p.s, i)
}

/// Eqs. (9)–(10), exact: gain when the fault-free version was predicted
/// correctly.
///
/// For `i ≤ s/2` this expands to the paper's
/// `(3it + (2+i)t' + 2ic) / (2iαt + 2t')`, and for `i > s/2` to
/// `((2s−i)t + (2+s−i)t' + 2(s−i)c) / (2iαt + 2t')`.
pub fn g_hit_exact(p: &Params, i: u32) -> f64 {
    (t1_corr(p, i) + hit_progress(p, i) * t1_round(p)) / tht2_corr(p, i)
}

/// Eq. (10), approximate: `3/(2α)` for `i ≤ s/2`, `(2s/i − 1)/(2α)` beyond.
pub fn g_hit_approx(p: &Params, i: u32) -> f64 {
    let (i_f, s_f) = (f64::from(i), f64::from(p.s));
    if i_f <= s_f / 2.0 {
        3.0 / (2.0 * p.alpha)
    } else {
        (2.0 * s_f / i_f - 1.0) / (2.0 * p.alpha)
    }
}

/// Eq. (11), exact: the *loss* factor when the guess was wrong — the
/// roll-forward contributed nothing, so this is just
/// `T1_corr / THT2_corr = (it + 2t') / (2iαt + 2t')`.
pub fn l_miss_exact(p: &Params, i: u32) -> f64 {
    t1_corr(p, i) / tht2_corr(p, i)
}

/// Eq. (11), approximate: `1/(2α)` — "in the best case (α = ½) the
/// hyperthreaded processor loses nothing … in the worst case it loses a
/// factor of two".
pub fn l_miss_approx(p: &Params) -> f64 {
    1.0 / (2.0 * p.alpha)
}

/// Eq. (12), exact: expected gain for a fault at round `i` with prediction
/// accuracy `p_correct`:
/// `G_corr(i) = p·G_hit(i) + (1−p)·L_miss(i)`.
pub fn g_corr_exact(p: &Params, i: u32, p_correct: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_correct));
    p_correct * g_hit_exact(p, i) + (1.0 - p_correct) * l_miss_exact(p, i)
}

/// Eq. (12), approximate: `(2p+1)/(2α)` for `i ≤ s/2`,
/// `(2p(s/i − 1) + 1)/(2α)` beyond.
pub fn g_corr_approx(p: &Params, i: u32, p_correct: f64) -> f64 {
    let (i_f, s_f) = (f64::from(i), f64::from(p.s));
    if i_f <= s_f / 2.0 {
        (2.0 * p_correct + 1.0) / (2.0 * p.alpha)
    } else {
        (2.0 * p_correct * (s_f / i_f - 1.0) + 1.0) / (2.0 * p.alpha)
    }
}

/// Eq. (13), exact: `Ḡ_corr = (1/s) Σ_{i=1}^{s} G_corr(i)` using the exact
/// per-round gains. **This is the quantity plotted in Figures 4 and 5**
/// ("we obtain the figures not by using the approximated values … but by
/// using exact equations (10), (11), (12), (13), and (14)").
pub fn gbar_corr_exact(p: &Params, p_correct: f64) -> f64 {
    (1..=p.s)
        .map(|i| g_corr_exact(p, i, p_correct))
        .sum::<f64>()
        / f64::from(p.s)
}

/// Eq. (13), approximate: `Ḡ_corr ≈ (1 + 2p·ln2) / (2α)`.
pub fn gbar_corr_approx(p: &Params, p_correct: f64) -> f64 {
    (1.0 + 2.0 * p_correct * crate::math::consts::LN_2) / (2.0 * p.alpha)
}

/// Minimum prediction accuracy for the predictive scheme to gain
/// (`Ḡ_corr ≥ 1`): `p ≥ (α − ½)/ln2`. Zero when even random guessing
/// gains; can exceed 1 only for α beyond [`alpha_threshold_for_p`]\(1\).
pub fn p_threshold(alpha: f64) -> f64 {
    ((alpha - 0.5) / crate::math::consts::LN_2).max(0.0)
}

/// Largest α at which accuracy `p` still yields `Ḡ_corr ≥ 1`:
/// `α ≤ ½ + p·ln2`. For random guesses (p = ½) this is
/// `(1 + ln2)/2 ≈ 0.847`.
pub fn alpha_threshold_for_p(p_correct: f64) -> f64 {
    0.5 + p_correct * crate::math::consts::LN_2
}

/// The large-`s` limit of the exact Eq. (13) under the `c = t' = βt`
/// normalisation:
///
/// `G_max = lim_{s→∞} Ḡ_corr = (1 + (2 + 3β)·ln2·p) / (2α)`.
///
/// For β = 0.1 this is the paper's `(1 + (23·ln2/10)·p) / (2α)`; at
/// `p = 0.5, α = 0.65` it evaluates to ≈ 1.38 (the headline number), and
/// the paper notes `Ḡ_corr` is already very close to this limit at s = 20.
pub fn g_max(alpha: f64, beta: f64, p_correct: f64) -> f64 {
    (1.0 + (2.0 + 3.0 * beta) * crate::math::consts::LN_2 * p_correct) / (2.0 * alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Params {
        Params::paper_default()
    }

    #[test]
    fn eq10_exact_matches_papers_expansion() {
        let p = paper();
        let (t, tp, c, a) = (p.t, p.t_cmp, p.c, p.alpha);
        for i in 1..=p.s {
            let i_f = f64::from(i);
            let s_f = f64::from(p.s);
            let expect = if i_f <= s_f / 2.0 {
                (3.0 * i_f * t + (2.0 + i_f) * tp + 2.0 * i_f * c) / (2.0 * i_f * a * t + 2.0 * tp)
            } else {
                ((2.0 * s_f - i_f) * t + (2.0 + s_f - i_f) * tp + 2.0 * (s_f - i_f) * c)
                    / (2.0 * i_f * a * t + 2.0 * tp)
            };
            let got = g_hit_exact(&p, i);
            assert!((got - expect).abs() < 1e-12, "i={i}: {got} vs {expect}");
        }
    }

    #[test]
    fn eq10_approx_for_small_beta() {
        let p = Params::with_beta(0.7, 1e-9, 20);
        for i in 1..=20 {
            assert!(
                (g_hit_exact(&p, i) - g_hit_approx(&p, i)).abs() < 1e-6,
                "i={i}"
            );
        }
    }

    #[test]
    fn eq11_miss_bounds() {
        // best case α = ½ loses nothing, worst case α = 1 loses 2×
        let best = Params::with_beta(0.5, 0.0, 20);
        let worst = Params::with_beta(1.0, 0.0, 20);
        assert!((l_miss_approx(&best) - 1.0).abs() < 1e-12);
        assert!((l_miss_approx(&worst) - 0.5).abs() < 1e-12);
        for i in 1..=20 {
            assert!(l_miss_exact(&best, i) <= 1.0 + 1e-9);
            assert!(l_miss_exact(&worst, i) >= 0.5 - 1e-9);
        }
    }

    #[test]
    fn eq12_is_convex_combination() {
        let p = paper();
        for i in [1u32, 10, 20] {
            let hit = g_hit_exact(&p, i);
            let miss = l_miss_exact(&p, i);
            let mid = g_corr_exact(&p, i, 0.5);
            assert!((mid - 0.5 * (hit + miss)).abs() < 1e-12);
            assert_eq!(g_corr_exact(&p, i, 1.0), hit);
            assert_eq!(g_corr_exact(&p, i, 0.0), miss);
        }
    }

    #[test]
    fn eq13_approx_vs_exact_at_beta_zero() {
        for &pc in &[0.5, 0.75, 1.0] {
            let p = Params::with_beta(0.65, 0.0, 100);
            let e = gbar_corr_exact(&p, pc);
            let a = gbar_corr_approx(&p, pc);
            assert!((e - a).abs() < 0.02, "pc={pc}: exact={e} approx={a}");
        }
    }

    #[test]
    fn predictive_beats_detecting_schemes_for_p_at_least_half() {
        // Paper: Ḡ_corr > Ḡ_prob, Ḡ_det for p ≥ 0.5.
        let p = Params::with_beta(0.65, 0.0, 20);
        for &pc in &[0.5, 0.7, 1.0] {
            let corr = gbar_corr_approx(&p, pc);
            let prob = crate::rollforward::gbar_prob_approx(&p, pc);
            let det = crate::rollforward::gbar_det_approx(&p);
            assert!(corr > prob, "pc={pc}");
            assert!(corr > det, "pc={pc}");
        }
    }

    #[test]
    fn thresholds_match_paper() {
        // p ≥ (α − ½)/ln2
        assert!((p_threshold(0.65) - 0.15 / std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(p_threshold(0.5), 0.0); // "α = 0.5: we always gain"
                                           // α ≤ (1 + ln2)/2 ≈ 0.847 for random guessing
        let thr = alpha_threshold_for_p(0.5);
        assert!((thr - 0.8466).abs() < 1e-3, "thr={thr}");
    }

    #[test]
    fn g_max_headline_number() {
        // Paper: p = 0.5, α = 0.65, β = 0.1 ⇒ G_max ≈ 1.38.
        let g = g_max(0.65, 0.1, 0.5);
        assert!((g - 1.38).abs() < 0.01, "G_max={g}");
        // And the β = 0.1 coefficient is exactly 23·ln2/10.
        let g2 = (1.0 + 23.0 * std::f64::consts::LN_2 / 10.0 * 0.5) / (2.0 * 0.65);
        assert!((g - g2).abs() < 1e-12);
    }

    #[test]
    fn g_max_alpha_near_one_does_not_lose() {
        // Paper: even with <10% multithreading improvement (α ≈ 0.9+),
        // G_max ≈ 1.0 — "we still would not lose".
        let g = g_max(0.92, 0.1, 0.5);
        assert!(g > 0.97 && g < 1.2, "g={g}");
    }

    #[test]
    fn s20_is_close_to_the_limit() {
        // Paper: "beyond s = 20, Ḡ_corr is already very close to the
        // limit, independently of the values for α and β".
        for &(alpha, beta) in &[(0.5, 0.0), (0.65, 0.1), (0.9, 0.5), (1.0, 1.0)] {
            for &pc in &[0.5, 1.0] {
                let p20 = Params::with_beta(alpha, beta, 20);
                let g20 = gbar_corr_exact(&p20, pc);
                let lim = g_max(alpha, beta, pc);
                let rel = (g20 - lim).abs() / lim;
                // The finite-s correction carries O(β/i) terms, so the
                // extreme β = 1 corner converges more slowly; the paper's
                // "very close" claim is tightest at realistic β.
                let tol = if beta >= 1.0 { 0.15 } else { 0.08 };
                assert!(
                    rel < tol,
                    "alpha={alpha} beta={beta} p={pc}: {g20} vs {lim}"
                );
            }
        }
    }

    #[test]
    fn exact_gbar_converges_to_g_max() {
        let (alpha, beta, pc) = (0.65, 0.1, 0.5);
        let mut last_err = f64::INFINITY;
        for &s in &[10u32, 40, 160, 640] {
            let p = Params::with_beta(alpha, beta, s);
            let err = (gbar_corr_exact(&p, pc) - g_max(alpha, beta, pc)).abs();
            assert!(err < last_err, "s={s}: err={err} last={last_err}");
            last_err = err;
        }
        assert!(last_err < 2e-3);
    }
}
