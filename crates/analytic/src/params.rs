//! Model parameters.

/// Parameters of the VDS performance model.
///
/// All times are in the same (arbitrary) unit; only ratios matter for the
/// gains. The paper reduces unknowns via Eq. (14): `c = t' = β·t` with
/// `0 ≤ β ≤ 1` (β = 0: overhead negligible; β = 1: a context switch or a
/// comparison is as expensive as a whole round — called "unrealistic" in
/// the paper) and usually sets `t = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Time for one version to execute one round.
    pub t: f64,
    /// Context-switch time `c` (`c ≪ t` assumed by the approximations).
    pub c: f64,
    /// State-comparison time `t'` (`t' ≪ t` assumed by the approximations).
    pub t_cmp: f64,
    /// SMT contention factor `α ∈ [½, 1]`: two co-scheduled rounds take
    /// wall time `2αt`.
    pub alpha: f64,
    /// Checkpoint interval in rounds (`s ≥ 1`); the paper's figures use
    /// `s = 20`.
    pub s: u32,
}

impl Params {
    /// The paper's figure configuration: `t = 1`, `c = t' = β`,
    /// free `α`, given `s`.
    ///
    /// # Panics
    /// Panics if `alpha ∉ [0.5, 1]`, `beta ∉ [0, 1]` or `s == 0`.
    pub fn with_beta(alpha: f64, beta: f64, s: u32) -> Self {
        let p = Params {
            t: 1.0,
            c: beta,
            t_cmp: beta,
            alpha,
            s,
        };
        p.validate();
        p
    }

    /// The paper's headline operating point: α = 0.65 (Pentium 4),
    /// β = 0.1, s = 20.
    pub fn paper_default() -> Self {
        Self::with_beta(0.65, 0.1, 20)
    }

    /// Check invariants; called by constructors, public for custom builds.
    ///
    /// # Panics
    /// Panics on violated invariants, with a message naming the offender.
    pub fn validate(&self) {
        assert!(
            self.t > 0.0,
            "round time t must be positive, got {}",
            self.t
        );
        assert!(self.c >= 0.0, "context-switch time c must be >= 0");
        assert!(self.t_cmp >= 0.0, "comparison time t' must be >= 0");
        assert!(
            (0.5..=1.0).contains(&self.alpha),
            "alpha must be in [0.5, 1], got {}",
            self.alpha
        );
        assert!(self.s >= 1, "checkpoint interval s must be >= 1");
    }

    /// The β implied by the current `c` (paper normalisation `c = βt`).
    pub fn beta_from_c(&self) -> f64 {
        self.c / self.t
    }

    /// Return a copy with a different α (convenient for sweeps).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self.validate();
        self
    }

    /// Return a copy with a different checkpoint interval.
    pub fn with_s(mut self, s: u32) -> Self {
        self.s = s;
        self.validate();
        self
    }
}

impl Default for Params {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_headline_point() {
        let p = Params::paper_default();
        assert_eq!(p.alpha, 0.65);
        assert_eq!(p.c, 0.1);
        assert_eq!(p.t_cmp, 0.1);
        assert_eq!(p.s, 20);
        assert_eq!(p.t, 1.0);
    }

    #[test]
    fn with_beta_sets_both_overheads() {
        let p = Params::with_beta(0.7, 0.25, 10);
        assert_eq!(p.c, 0.25);
        assert_eq!(p.t_cmp, 0.25);
        assert_eq!(p.beta_from_c(), 0.25);
    }

    #[test]
    fn builders_preserve_other_fields() {
        let p = Params::paper_default().with_alpha(0.5).with_s(40);
        assert_eq!(p.alpha, 0.5);
        assert_eq!(p.s, 40);
        assert_eq!(p.c, 0.1);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_below_half() {
        Params::with_beta(0.4, 0.1, 20);
    }

    #[test]
    #[should_panic(expected = "s must be")]
    fn rejects_zero_s() {
        Params::with_beta(0.65, 0.1, 0);
    }
}
