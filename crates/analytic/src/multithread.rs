//! §5 outlook — more than two hardware threads, and the
//! clock-frequency-reduction trade.
//!
//! The paper sketches two "boosted" recovery variants for processors with
//! more hardware threads, both of which keep fault detection *during*
//! roll-forward (unlike the §4 predictive scheme):
//!
//! * **3-thread probabilistic**: versions 1 and 2 run `i` rounds each in
//!   two separate threads (from the chosen common state) while version 3
//!   retries in the third.
//! * **5-thread deterministic**: versions 1 and 2 run `i` rounds each
//!   starting from *both* candidate states (four roll-forward threads)
//!   while version 3 retries — guaranteed full progress.
//!
//! The paper gives no formulas for these; we derive them with the natural
//! generalisation of α to `k` co-scheduled threads and document the model
//! here (see `DESIGN.md` for the substitution note).
//!
//! ## The `α_k` contention model
//!
//! With `k` threads co-scheduled, `k` rounds of work complete in wall time
//! `k·α_k·t`, where `α_k = 1` means full serialisation and `α_k = 1/k`
//! perfect overlap. We interpolate from the measured 2-way factor `α₂` via
//! a machine "contention coefficient" `γ = 2α₂ − 1 ∈ [0, 1]`:
//!
//! `α_k = 1/k + γ·(1 − 1/k)`
//!
//! which is exact at both extremes and recovers `α₂` at `k = 2`. A real
//! machine saturates faster (shared issue width); callers can override
//! `alpha_k` with measurements from `vds-smtsim`.

use crate::math::{clamp_rollforward, consts::LN_2};
use crate::params::Params;
use crate::timing::{t1_corr, t1_round};

/// Generalised contention factor `α_k` interpolated from the 2-way `α₂`.
///
/// # Panics
/// Panics if `k == 0` or `alpha2 ∉ [0.5, 1]`.
pub fn alpha_k(alpha2: f64, k: u32) -> f64 {
    assert!(k >= 1, "need at least one thread");
    assert!((0.5..=1.0).contains(&alpha2), "alpha2 must be in [0.5, 1]");
    let gamma = 2.0 * alpha2 - 1.0;
    let inv_k = 1.0 / f64::from(k);
    inv_k + gamma * (1.0 - inv_k)
}

/// Wall time for `k` co-scheduled threads to execute one round each.
pub fn round_wall_time(p: &Params, k: u32) -> f64 {
    f64::from(k) * alpha_k(p.alpha, k) * p.t
}

/// Recovery time of a `k`-thread boosted scheme for a fault at round `i`:
/// all `k` threads run `i` rounds co-scheduled, then two comparisons.
pub fn boosted_corr_time(p: &Params, k: u32, i: u32) -> f64 {
    f64::from(i) * round_wall_time(p, k) + 2.0 * p.t_cmp
}

/// Exact gain of the 3-thread boosted probabilistic scheme at round `i`:
/// progress `min(i, s−i)` with probability `p_correct` (detection during
/// roll-forward is retained, so a wrong pick is discovered but useless).
pub fn g_boost3_exact(p: &Params, i: u32, p_correct: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_correct));
    let progress = clamp_rollforward(f64::from(i), p.s, i);
    (t1_corr(p, i) + p_correct * progress * t1_round(p)) / boosted_corr_time(p, 3, i)
}

/// Exact gain of the 5-thread boosted deterministic scheme at round `i`:
/// guaranteed progress `min(i, s−i)`.
pub fn g_boost5_exact(p: &Params, i: u32) -> f64 {
    let progress = clamp_rollforward(f64::from(i), p.s, i);
    (t1_corr(p, i) + progress * t1_round(p)) / boosted_corr_time(p, 5, i)
}

/// Average 3-thread boosted gain over `i = 1..s`.
pub fn gbar_boost3_exact(p: &Params, p_correct: f64) -> f64 {
    (1..=p.s)
        .map(|i| g_boost3_exact(p, i, p_correct))
        .sum::<f64>()
        / f64::from(p.s)
}

/// Average 5-thread boosted gain over `i = 1..s`.
pub fn gbar_boost5_exact(p: &Params) -> f64 {
    (1..=p.s).map(|i| g_boost5_exact(p, i)).sum::<f64>() / f64::from(p.s)
}

/// Approximate (`c, t' ≪ t`) averages, mirroring the 2-thread Eq. (13)
/// derivation with denominator `k·α_k` instead of `2α`:
/// `Ḡ_boost,k ≈ (1 + 2p·ln2) / (k·α_k)`.
pub fn gbar_boost_approx(p: &Params, k: u32, p_correct: f64) -> f64 {
    (1.0 + 2.0 * p_correct * LN_2) / (f64::from(k) * alpha_k(p.alpha, k))
}

/// §5 clock trade: the factor by which an SMT processor's clock may be
/// reduced while still matching the conventional VDS's *normal-processing*
/// rate ("a clock frequency reduced by a factor of at least 1/α").
///
/// Returns the frequency ratio `f_smt / f_conv` required for equality of
/// round times, i.e. `THT2_round(scaled) = T1_round`. With negligible
/// overheads this is exactly `α`.
pub fn equal_performance_clock_ratio(p: &Params) -> f64 {
    // All SMT activity stretches by 1/ratio; solve
    // (2αt + t') / ratio = 2(t+c) + t'.
    (2.0 * p.alpha * p.t + p.t_cmp) / (2.0 * (p.t + p.c) + p.t_cmp)
}

/// Crude dynamic-power ratio for the clock trade, assuming voltage scales
/// with frequency (`P ∝ f·V² ∝ f³`): running the SMT part at ratio `r`
/// costs `r³` of the conventional processor's dynamic power.
pub fn dynamic_power_ratio(clock_ratio: f64) -> f64 {
    clock_ratio.powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_k_extremes_and_midpoint() {
        // perfect machine: α₂ = ½ ⇒ α_k = 1/k
        assert!((alpha_k(0.5, 4) - 0.25).abs() < 1e-12);
        // serial machine: α₂ = 1 ⇒ α_k = 1
        assert!((alpha_k(1.0, 4) - 1.0).abs() < 1e-12);
        // recovers α₂ at k = 2
        assert!((alpha_k(0.65, 2) - 0.65).abs() < 1e-12);
        // single thread always α₁ = 1 (no co-run stretch)
        assert!((alpha_k(0.65, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_k_monotone_in_k_for_real_machines() {
        // For γ < 1 the per-thread efficiency improves with k in this
        // model (wall time grows sublinearly): k·α_k increasing, α_k
        // decreasing.
        let mut last_wall = 0.0;
        let mut last_alpha = 2.0;
        for k in 1..=8 {
            let a = alpha_k(0.65, k);
            let wall = f64::from(k) * a;
            assert!(wall > last_wall, "k={k}");
            assert!(a < last_alpha, "k={k}");
            last_wall = wall;
            last_alpha = a;
        }
    }

    #[test]
    fn boosted_gains_paper_point() {
        let p = Params::paper_default();
        // 3-thread probabilistic with random picks must beat the 2-thread
        // predictive random scheme in progress terms... but it pays 3-way
        // contention. Sanity: all gains positive and finite.
        let g3 = gbar_boost3_exact(&p, 0.5);
        let g5 = gbar_boost5_exact(&p);
        assert!(g3 > 0.5 && g3.is_finite());
        assert!(g5 > 0.5 && g5.is_finite());
        // With perfect prediction the 3-thread scheme beats its random self.
        assert!(gbar_boost3_exact(&p, 1.0) > g3);
    }

    #[test]
    fn boost5_guarantees_what_boost3_only_expects() {
        // At equal contention, deterministic 5-thread progress equals the
        // 3-thread scheme's progress with p = 1, but it pays 5-way
        // contention; with p = 1 the 3-thread variant must win.
        let p = Params::paper_default();
        assert!(gbar_boost3_exact(&p, 1.0) > gbar_boost5_exact(&p));
    }

    #[test]
    fn boost_approx_tracks_exact_at_beta_zero() {
        let p = Params::with_beta(0.65, 0.0, 100);
        let e = gbar_boost3_exact(&p, 0.5);
        let a = gbar_boost_approx(&p, 3, 0.5);
        assert!((e - a).abs() / a < 0.05, "exact={e} approx={a}");
    }

    #[test]
    fn clock_ratio_close_to_alpha() {
        let p = Params::with_beta(0.65, 0.0, 20);
        assert!((equal_performance_clock_ratio(&p) - 0.65).abs() < 1e-12);
        // with overheads the SMT side needs even less frequency
        let p2 = Params::paper_default();
        assert!(equal_performance_clock_ratio(&p2) < 0.65);
    }

    #[test]
    fn power_cubes() {
        assert!((dynamic_power_ratio(0.65) - 0.65f64.powi(3)).abs() < 1e-12);
        assert!(dynamic_power_ratio(0.65) < 0.3); // >70% dynamic power saved
    }
}
