//! Harmonic sums and the logarithmic tail approximations used by the paper.
//!
//! The averages over the fault round `i` reduce to partial harmonic sums
//! `Σ_{i=n+1}^{m} 1/i`, which the paper approximates by `ln(m/n)`
//! (ln 5/4, ln 3/2, ln 2 for the three schemes). We provide both the exact
//! sums and the approximations so tests can bound the approximation error.

/// Exact partial harmonic sum `Σ_{i=lo}^{hi} 1/i` (inclusive; 0 when
/// `lo > hi`).
pub fn harmonic_between(lo: u32, hi: u32) -> f64 {
    if lo > hi || lo == 0 {
        return 0.0;
    }
    (lo..=hi).map(|i| 1.0 / f64::from(i)).sum()
}

/// Exact harmonic number `H(n) = Σ_{i=1}^{n} 1/i`.
pub fn harmonic(n: u32) -> f64 {
    harmonic_between(1, n)
}

/// The paper's tail approximation: `Σ_{i=n+1}^{m} 1/i ≈ ln(m/n)`.
pub fn harmonic_tail_approx(n: u32, m: u32) -> f64 {
    assert!(n >= 1 && m >= n, "need 1 <= n <= m");
    (f64::from(m) / f64::from(n)).ln()
}

/// ln 2, ln(3/2), ln(5/4) — the three constants appearing in Eqs. (7), (8),
/// (13). Exposed so gain formulas read like the paper.
pub mod consts {
    /// `ln 2 ≈ 0.6931`.
    pub const LN_2: f64 = std::f64::consts::LN_2;
    /// `ln(3/2) ≈ 0.4055` (the paper rounds to 0.405).
    pub fn ln_3_2() -> f64 {
        1.5f64.ln()
    }
    /// `ln(5/4) ≈ 0.2231`.
    pub fn ln_5_4() -> f64 {
        1.25f64.ln()
    }
}

/// Clamp the roll-forward length at the checkpoint horizon: when the scheme
/// intends to advance `x` rounds after a fault at round `i` with checkpoint
/// interval `s`, it really advances `min(x, s − i)` rounds (real-valued,
/// following the paper's "we do not consider the detail that i/2 may not be
/// an integer").
pub fn clamp_rollforward(x: f64, s: u32, i: u32) -> f64 {
    debug_assert!(i >= 1 && i <= s);
    x.min(f64::from(s) - f64::from(i)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-15);
        assert_eq!(harmonic(0), 0.0);
    }

    #[test]
    fn between_is_difference_of_harmonics() {
        let a = harmonic_between(6, 10);
        let b = harmonic(10) - harmonic(5);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn empty_ranges_are_zero() {
        assert_eq!(harmonic_between(5, 4), 0.0);
        assert_eq!(harmonic_between(0, 10), 0.0);
    }

    #[test]
    fn tail_approx_converges() {
        // Σ_{i=n+1}^{2n} 1/i → ln 2; error is O(1/n).
        for &n in &[10u32, 100, 1000] {
            let exact = harmonic_between(n + 1, 2 * n);
            let err = (exact - consts::LN_2).abs();
            assert!(err < 1.0 / f64::from(n), "n={n} err={err}");
        }
    }

    #[test]
    #[allow(clippy::approx_constant)]
    fn paper_constants() {
        assert!((consts::ln_5_4() - 0.2231).abs() < 5e-4);
        assert!((consts::ln_3_2() - 0.4055).abs() < 5e-4);
        assert!((consts::LN_2 - 0.6931).abs() < 5e-4);
    }

    #[test]
    fn clamp_behaviour() {
        // fault early: full roll-forward
        assert_eq!(clamp_rollforward(5.0, 20, 4), 5.0);
        // fault late: clipped to the checkpoint horizon
        assert_eq!(clamp_rollforward(5.0, 20, 18), 2.0);
        // fault at the checkpoint: nothing to gain
        assert_eq!(clamp_rollforward(5.0, 20, 20), 0.0);
    }
}
