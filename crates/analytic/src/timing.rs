//! Round and recovery durations — Eqs. (1), (2), (3), (5) — and the
//! normal-processing gain, Eq. (4).

use crate::params::Params;

/// Eq. (1): one complete VDS round on a conventional processor.
///
/// Both versions run a round of length `t`, each preceded/followed by a
/// context switch `c`, and the states are compared (`t'`):
/// `T1_round = 2(t + c) + t'`.
pub fn t1_round(p: &Params) -> f64 {
    2.0 * (p.t + p.c) + p.t_cmp
}

/// Eq. (2): stop-and-retry correction on a conventional processor after a
/// fault detected at round `i`.
///
/// Version 3 replays `i` rounds from the checkpoint, then the majority vote
/// compares its state against both suspects: `T1_corr = i·t + 2t'`.
pub fn t1_corr(p: &Params, i: u32) -> f64 {
    f64::from(i) * p.t + 2.0 * p.t_cmp
}

/// Eq. (3): one complete VDS round on a 2-way SMT processor.
///
/// The two versions run in parallel hardware threads; no context switch is
/// needed and the pair of rounds completes in `2αt`:
/// `THT2_round = 2αt + t'`.
pub fn tht2_round(p: &Params) -> f64 {
    2.0 * p.alpha * p.t + p.t_cmp
}

/// Eq. (5): SMT recovery time for a fault detected at round `i`.
///
/// Thread 1 replays version 3 for `i` rounds while thread 2 rolls forward
/// for an equal wall time; the co-scheduled pair needs `2iαt`, then two
/// comparisons: `THT2_corr = 2iαt + 2t'`.
///
/// (The paper's footnote 3 notes the exact form would use `max(t', c)`
/// in place of `t'`; under the Eq.-14 normalisation `c = t'` the two
/// coincide, so we keep the main-text form.)
pub fn tht2_corr(p: &Params, i: u32) -> f64 {
    2.0 * f64::from(i) * p.alpha * p.t + 2.0 * p.t_cmp
}

/// Eq. (4), exact: normal-processing speedup of the SMT VDS,
/// `G_round = T1_round / THT2_round`.
pub fn g_round_exact(p: &Params) -> f64 {
    t1_round(p) / tht2_round(p)
}

/// Eq. (4), approximate (`c, t' ≪ t`): `G_round ≈ 1/α`.
pub fn g_round_approx(p: &Params) -> f64 {
    1.0 / p.alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(alpha: f64, beta: f64) -> Params {
        Params::with_beta(alpha, beta, 20)
    }

    #[test]
    fn eq1_t1_round() {
        let p = params(0.65, 0.1);
        // 2(1 + 0.1) + 0.1 = 2.3
        assert!((t1_round(&p) - 2.3).abs() < 1e-12);
    }

    #[test]
    fn eq2_t1_corr_scales_with_i() {
        let p = params(0.65, 0.1);
        assert!((t1_corr(&p, 1) - 1.2).abs() < 1e-12);
        assert!((t1_corr(&p, 10) - 10.2).abs() < 1e-12);
    }

    #[test]
    fn eq3_tht2_round() {
        let p = params(0.65, 0.1);
        // 2*0.65 + 0.1 = 1.4
        assert!((tht2_round(&p) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn eq5_tht2_corr() {
        let p = params(0.65, 0.1);
        // 2*10*0.65 + 0.2 = 13.2
        assert!((tht2_corr(&p, 10) - 13.2).abs() < 1e-12);
    }

    #[test]
    fn eq4_gain_approaches_inverse_alpha() {
        // With beta -> 0 the exact gain approaches 1/alpha.
        for &alpha in &[0.5, 0.65, 0.8, 1.0] {
            let p = params(alpha, 1e-9);
            assert!(
                (g_round_exact(&p) - 1.0 / alpha).abs() < 1e-6,
                "alpha={alpha}"
            );
            assert_eq!(g_round_approx(&p), 1.0 / alpha);
        }
    }

    #[test]
    fn gain_at_paper_point() {
        // alpha=0.65, beta=0.1: 2.3/1.4 ≈ 1.643 — the SMT VDS processes
        // rounds ~64% faster than the conventional one.
        let p = Params::paper_default();
        let g = g_round_exact(&p);
        assert!((g - 2.3 / 1.4).abs() < 1e-12);
        assert!(g > 1.6 && g < 1.7);
    }

    #[test]
    fn smt_round_never_slower_when_alpha_below_one() {
        for &beta in &[0.0, 0.1, 0.5, 1.0] {
            for &alpha in &[0.5, 0.65, 0.9, 1.0] {
                let p = params(alpha, beta);
                // 2αt + t' <= 2(t+c) + t' whenever α <= 1.
                assert!(tht2_round(&p) <= t1_round(&p) + 1e-12);
            }
        }
    }

    #[test]
    fn worst_case_alpha_one_still_saves_context_switches() {
        // α = 1: "apart from the context switch as slow as on the
        // conventional processor" — gain comes only from saved switches.
        let p = params(1.0, 0.1);
        let g = g_round_exact(&p);
        assert!(g > 1.0);
        assert!((g - 2.3 / 2.1).abs() < 1e-12);
    }
}
