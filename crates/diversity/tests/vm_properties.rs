//! Property tests for the VM diversity transforms.
//!
//! Two properties pin the whole point of diversifying the bytecode
//! workload:
//!
//! 1. **Equivalence** — for any seed program, any transform seed and any
//!    variant index, a fault-free co-run of base and variant produces
//!    identical per-round outputs and an identical final `Digest128`
//!    over the duplex comparison window (`r0..r3` + the persistent
//!    state window of data memory — the exact window
//!    `vds_core::vm_vds` digests).
//! 2. **Decorrelation** — a common-mode flip of one physical scratch
//!    register, injected identically into both members of a pair, stays
//!    masked on an identical pair (both copies corrupt the same way)
//!    but makes some diversified pair diverge: the permuted register
//!    map puts a different logical variable in the flipped register, so
//!    the state comparison catches what identical redundancy cannot.

use proptest::prelude::*;
use vds_diversity::vm::diversify_vm;
use vds_obs::{Digest128, Digester128};
use vds_vm::{run_round, FaultPlan, Outcome, Program, StateFlip, Vm};

/// Digest of the duplex comparison window, mirroring
/// `vds_core::vm_vds`: output registers plus the persistent state
/// window of data memory.
fn window_digest(vm: &Vm) -> Digest128 {
    let mut d = Digester128::new();
    d.push_words(&vm.output_regs());
    let w = vds_vm::STATE_WINDOW;
    d.push_words(&vm.mem[w.start..w.end]);
    d.finish()
}

/// Run `prog` for `rounds` rounds from the program's seeded memory,
/// optionally flipping the same fault every round, and return the final
/// window digest (None if any round failed to halt).
fn final_digest(
    prog: &Program,
    mem: Vec<u32>,
    rounds: u32,
    fault: Option<FaultPlan>,
) -> Option<Digest128> {
    let mut vm = Vm::with_mem(mem);
    for round in 1..=rounds {
        let r = run_round(&mut vm, prog, round, fault.as_ref());
        if r.outcome != Outcome::Halted {
            return None;
        }
    }
    Some(window_digest(&vm))
}

proptest! {
    // Property 1: every seeded transform is observation-equivalent on a
    // fault-free machine — identical outputs each round, identical
    // final digest.
    #[test]
    fn any_seeded_transform_preserves_outputs_and_digest(
        prog_idx in 0usize..4,
        variant in 1u32..8,
        tseed in any::<u64>(),
        mseed in any::<u64>(),
    ) {
        let sp = &vds_vm::SEED_PROGRAMS[prog_idx];
        let base = sp.assembled();
        let v = diversify_vm(&base, variant, tseed);
        let mem = sp.initial_dmem(mseed);
        let mut a = Vm::with_mem(mem.clone());
        let mut b = Vm::with_mem(mem);
        for round in 1..=6u32 {
            let ra = run_round(&mut a, &base, round, None);
            let rb = run_round(&mut b, &v, round, None);
            prop_assert_eq!(ra.outcome, Outcome::Halted);
            prop_assert_eq!(rb.outcome, Outcome::Halted);
            prop_assert_eq!(
                a.output_regs(), b.output_regs(),
                "{} variant {} round {}: outputs diverged fault-free",
                sp.name, variant, round
            );
            prop_assert_eq!(
                window_digest(&a), window_digest(&b),
                "{} variant {} round {}: digests diverged fault-free",
                sp.name, variant, round
            );
        }
    }

    // Property 2: a common-mode scratch-register flip is masked by
    // identical redundancy but caught by some diversified pair.
    #[test]
    fn some_register_fault_diverges_diversified_pairs_but_masks_identical_ones(
        prog_idx in 0usize..4,
        tseed in any::<u64>(),
    ) {
        let sp = &vds_vm::SEED_PROGRAMS[prog_idx];
        let base = sp.assembled();
        let mem = sp.initial_dmem(7);
        let rounds = 3u32;
        let clean = final_digest(&base, mem.clone(), rounds, None).expect("clean run halts");
        let mut found = false;
        'search: for reg in 4u16..8 {
            for bit in [0u8, 7, 13, 31] {
                for at_step in [5u64, 23, 61] {
                    let fault = FaultPlan { at_step, flip: StateFlip::Reg { index: reg, bit } };
                    // Identical pair, same flip in both copies: the VM is
                    // deterministic, so both corrupt identically and the
                    // comparison is blind to it — masked, by construction.
                    let da = final_digest(&base, mem.clone(), rounds, Some(fault));
                    let db = final_digest(&base, mem.clone(), rounds, Some(fault));
                    prop_assert_eq!(da, db, "identical copies must fail identically");
                    // Diversified pair, same physical flip: the scratch
                    // permutation maps the register to different logical
                    // variables, so the digests should part ways for at
                    // least one site.
                    for variant in 1..=3u32 {
                        let v = diversify_vm(&base, variant, tseed);
                        let dv = final_digest(&v, mem.clone(), rounds, Some(fault));
                        if dv != da && da.is_some() {
                            found = true;
                            break 'search;
                        }
                    }
                }
            }
        }
        prop_assert!(
            found,
            "{}: no scratch-register flip decorrelated any variant (seed {})",
            sp.name, tseed
        );
        // and the fault search never perturbed the clean baseline
        prop_assert_eq!(
            final_digest(&base, mem, rounds, None),
            Some(clean)
        );
    }
}
