//! The semantics-preserving transformations.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng as _;
use vds_smtsim::encode::encode;
use vds_smtsim::isa::{AluImmOp, AluOp, BranchCond, Instr, Reg};
use vds_smtsim::program::Program;

/// A semantics-preserving program transformation.
pub trait Transform {
    /// Transformation name, for reports.
    fn name(&self) -> &'static str;

    /// Apply to a program, drawing any randomness from `rng`.
    /// Must preserve the program's observable behaviour (output window
    /// contents and yield/halt sequence) on a fault-free machine.
    fn apply(&self, prog: &Program, rng: &mut SmallRng) -> Program;
}

fn decode_text(prog: &Program) -> Vec<Instr> {
    prog.decode_all()
        .unwrap_or_else(|(i, e)| panic!("cannot transform corrupt program (instr {i}: {e})"))
}

fn rebuild(prog: &Program, instrs: &[Instr]) -> Program {
    let mut out = prog.clone();
    out.text = instrs.iter().map(encode).collect();
    out
}

/// Consistently permute registers r1..r15 across the whole program.
/// r0 stays fixed (it is architecturally zero).
pub struct RegisterPermutation;

impl RegisterPermutation {
    fn remap(instr: &Instr, map: &[u8; 16]) -> Instr {
        let m = |r: Reg| Reg(map[r.idx()]);
        match *instr {
            Instr::Alu { op, rd, rs1, rs2 } => Instr::Alu {
                op,
                rd: m(rd),
                rs1: m(rs1),
                rs2: m(rs2),
            },
            Instr::AluImm { op, rd, rs1, imm } => Instr::AluImm {
                op,
                rd: m(rd),
                rs1: m(rs1),
                imm,
            },
            Instr::Lui { rd, imm } => Instr::Lui { rd: m(rd), imm },
            Instr::Mul { op, rd, rs1, rs2 } => Instr::Mul {
                op,
                rd: m(rd),
                rs1: m(rs1),
                rs2: m(rs2),
            },
            Instr::Ld { rd, rs1, imm } => Instr::Ld {
                rd: m(rd),
                rs1: m(rs1),
                imm,
            },
            Instr::St { rs2, rs1, imm } => Instr::St {
                rs2: m(rs2),
                rs1: m(rs1),
                imm,
            },
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => Instr::Branch {
                cond,
                rs1: m(rs1),
                rs2: m(rs2),
                target,
            },
            Instr::Jal { rd, target } => Instr::Jal { rd: m(rd), target },
            Instr::Jalr { rd, rs1, imm } => Instr::Jalr {
                rd: m(rd),
                rs1: m(rs1),
                imm,
            },
            other => other,
        }
    }
}

impl Transform for RegisterPermutation {
    fn name(&self) -> &'static str {
        "register-permutation"
    }

    fn apply(&self, prog: &Program, rng: &mut SmallRng) -> Program {
        let mut perm: Vec<u8> = (1..16).collect();
        perm.shuffle(rng);
        let mut map = [0u8; 16];
        for (i, &p) in perm.iter().enumerate() {
            map[i + 1] = p;
        }
        let instrs: Vec<Instr> = decode_text(prog)
            .iter()
            .map(|i| Self::remap(i, &map))
            .collect();
        rebuild(prog, &instrs)
    }
}

/// Swap the operands of commutative operations with probability `prob`
/// per eligible instruction: `add/and/or/xor/mul` (value-commutative) and
/// `beq/bne` (comparison-commutative).
pub struct CommutativeSwap {
    /// Per-instruction swap probability.
    pub prob: f64,
}

impl Transform for CommutativeSwap {
    fn name(&self) -> &'static str {
        "commutative-swap"
    }

    fn apply(&self, prog: &Program, rng: &mut SmallRng) -> Program {
        let instrs: Vec<Instr> = decode_text(prog)
            .iter()
            .map(|i| {
                if rng.gen::<f64>() >= self.prob {
                    return *i;
                }
                match *i {
                    Instr::Alu { op, rd, rs1, rs2 }
                        if matches!(op, AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor) =>
                    {
                        Instr::Alu {
                            op,
                            rd,
                            rs1: rs2,
                            rs2: rs1,
                        }
                    }
                    Instr::Mul {
                        op: vds_smtsim::isa::MulOp::Mul,
                        rd,
                        rs1,
                        rs2,
                    } => Instr::Mul {
                        op: vds_smtsim::isa::MulOp::Mul,
                        rd,
                        rs1: rs2,
                        rs2: rs1,
                    },
                    Instr::Branch {
                        cond,
                        rs1,
                        rs2,
                        target,
                    } if matches!(cond, BranchCond::Eq | BranchCond::Ne) => Instr::Branch {
                        cond,
                        rs1: rs2,
                        rs2: rs1,
                        target,
                    },
                    other => other,
                }
            })
            .collect();
        rebuild(prog, &instrs)
    }
}

/// Insert `nop`s before instructions with probability `density`,
/// remapping all static branch/jump targets. Dynamic (`jalr`) targets are
/// self-consistent because link values are produced in the transformed
/// layout.
pub struct NopPadding {
    /// Probability of inserting a `nop` before each instruction.
    pub density: f64,
}

impl Transform for NopPadding {
    fn name(&self) -> &'static str {
        "nop-padding"
    }

    fn apply(&self, prog: &Program, rng: &mut SmallRng) -> Program {
        let old = decode_text(prog);
        // decide insertions, build old-index → new-index map
        let mut new_index = Vec::with_capacity(old.len());
        let mut count = 0u32;
        let mut pad_before: Vec<bool> = Vec::with_capacity(old.len());
        for _ in &old {
            let pad = rng.gen::<f64>() < self.density;
            pad_before.push(pad);
            if pad {
                count += 1;
            }
            new_index.push(count);
            count += 1;
        }
        let map = |t: u32| -> u32 {
            // a target at/after the end maps past the end (traps either way)
            new_index.get(t as usize).copied().unwrap_or(count)
        };
        let mut out_instrs = Vec::with_capacity(count as usize);
        for (idx, i) in old.iter().enumerate() {
            if pad_before[idx] {
                out_instrs.push(Instr::Nop);
            }
            out_instrs.push(match *i {
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target: map(target),
                },
                Instr::Jal { rd, target } => Instr::Jal {
                    rd,
                    target: map(target),
                },
                other => other,
            });
        }
        let mut out = rebuild(prog, &out_instrs);
        out.entry = map(prog.entry);
        // text symbols move with their instructions; data symbols are
        // untouched (memory layout is preserved)
        for sym in out.symbols.values_mut() {
            if let vds_smtsim::program::Symbol::Text(t) = sym {
                *t = map(*t);
            }
        }
        out
    }
}

/// Systematic diversity in the Lovrić sense: change the *intermediate
/// values* a version computes, not just its schedule. Each selected
/// `addi rd, rs, K` becomes the pair
///
/// ```text
/// addi rd, rs, K+δ
/// addi rd, rd, −δ
/// ```
///
/// (wrapping arithmetic makes this exact for any δ). A stuck-at fault in
/// an ALU now corrupts the two versions **differently** — the base sees
/// `corrupt(x+K)`, the recoded version `corrupt(corrupt(x+K+δ) − δ)` —
/// which is what makes permanent hardware faults *detectable* by state
/// comparison. Branch/jump targets and text symbols are remapped exactly
/// as in [`NopPadding`].
pub struct ArithmeticRecoding {
    /// Per-`addi` rewrite probability.
    pub prob: f64,
    /// Maximum |δ| (δ drawn uniformly from `1..=max_delta`).
    pub max_delta: i32,
}

impl Transform for ArithmeticRecoding {
    fn name(&self) -> &'static str {
        "arithmetic-recoding"
    }

    fn apply(&self, prog: &Program, rng: &mut SmallRng) -> Program {
        assert!(self.max_delta >= 1);
        let old = decode_text(prog);
        // decide rewrites; compute the index map
        let mut rewrite: Vec<Option<i32>> = Vec::with_capacity(old.len());
        let mut new_index = Vec::with_capacity(old.len());
        let mut count = 0u32;
        for i in &old {
            let delta = match *i {
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    imm,
                    rd,
                    ..
                } if rd != Reg::ZERO => {
                    let d = rng.gen_range(1..=self.max_delta);
                    // both imm+d and -d must stay in the signed 16-bit range
                    if rng.gen::<f64>() < self.prob
                        && (vds_smtsim::isa::IMM_MIN..=vds_smtsim::isa::IMM_MAX)
                            .contains(&(imm + d))
                    {
                        Some(d)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            rewrite.push(delta);
            new_index.push(count);
            count += if delta.is_some() { 2 } else { 1 };
        }
        let map = |t: u32| -> u32 { new_index.get(t as usize).copied().unwrap_or(count) };
        let mut out_instrs = Vec::with_capacity(count as usize);
        for (idx, i) in old.iter().enumerate() {
            match (rewrite[idx], *i) {
                (
                    Some(d),
                    Instr::AluImm {
                        op: AluImmOp::Addi,
                        rd,
                        rs1,
                        imm,
                    },
                ) => {
                    out_instrs.push(Instr::AluImm {
                        op: AluImmOp::Addi,
                        rd,
                        rs1,
                        imm: imm + d,
                    });
                    out_instrs.push(Instr::AluImm {
                        op: AluImmOp::Addi,
                        rd,
                        rs1: rd,
                        imm: -d,
                    });
                }
                (
                    _,
                    Instr::Branch {
                        cond,
                        rs1,
                        rs2,
                        target,
                    },
                ) => out_instrs.push(Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target: map(target),
                }),
                (_, Instr::Jal { rd, target }) => out_instrs.push(Instr::Jal {
                    rd,
                    target: map(target),
                }),
                (_, other) => out_instrs.push(other),
            }
        }
        let mut out = rebuild(prog, &out_instrs);
        out.entry = map(prog.entry);
        for sym in out.symbols.values_mut() {
            if let vds_smtsim::program::Symbol::Text(t) = sym {
                *t = map(*t);
            }
        }
        out
    }
}

/// Rewrite register moves `addi rd, rs, 0` into the equivalent
/// `ori rd, rs, 0` (different opcode, same dataflow).
pub struct ImmediateRewrite;

impl Transform for ImmediateRewrite {
    fn name(&self) -> &'static str {
        "immediate-rewrite"
    }

    fn apply(&self, prog: &Program, _rng: &mut SmallRng) -> Program {
        let instrs: Vec<Instr> = decode_text(prog)
            .iter()
            .map(|i| match *i {
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd,
                    rs1,
                    imm: 0,
                } => Instr::AluImm {
                    op: AluImmOp::Ori,
                    rd,
                    rs1,
                    imm: 0,
                },
                other => other,
            })
            .collect();
        rebuild(prog, &instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vds_smtsim::asm::assemble;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1234)
    }

    fn prog(src: &str) -> Program {
        assemble(src).unwrap()
    }

    #[test]
    fn register_permutation_is_consistent() {
        let p = prog("addi r1, r0, 5\nadd r2, r1, r1\nst r2, 0(r0)\nhalt\n");
        let q = RegisterPermutation.apply(&p, &mut rng());
        let instrs = q.decode_all().unwrap();
        // all three uses of the (renamed) r1 must agree
        let Instr::AluImm { rd: new_r1, .. } = instrs[0] else {
            panic!()
        };
        let Instr::Alu {
            rd: new_r2,
            rs1,
            rs2,
            ..
        } = instrs[1]
        else {
            panic!()
        };
        assert_eq!(rs1, new_r1);
        assert_eq!(rs2, new_r1);
        let Instr::St {
            rs2: stored,
            rs1: base,
            ..
        } = instrs[2]
        else {
            panic!()
        };
        assert_eq!(stored, new_r2);
        assert_eq!(base, Reg::ZERO, "r0 must stay fixed");
    }

    #[test]
    fn register_permutation_never_moves_r0() {
        let p = prog("add r1, r0, r2\nbeq r0, r0, 0\nhalt\n");
        for seed in 0..20 {
            let mut r = SmallRng::seed_from_u64(seed);
            let q = RegisterPermutation.apply(&p, &mut r);
            match q.decode_all().unwrap()[0] {
                Instr::Alu { rs1, .. } => assert_eq!(rs1, Reg::ZERO),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn commutative_swap_only_touches_commutative_ops() {
        let p = prog("sub r1, r2, r3\nsra r4, r5, r6\nslt r7, r8, r9\nhalt\n");
        let q = CommutativeSwap { prob: 1.0 }.apply(&p, &mut rng());
        assert_eq!(p.text, q.text, "non-commutative ops untouched");
    }

    #[test]
    fn commutative_swap_flips_operands() {
        let p = prog("add r1, r2, r3\nbeq r4, r5, 0\nhalt\n");
        let q = CommutativeSwap { prob: 1.0 }.apply(&p, &mut rng());
        let is = q.decode_all().unwrap();
        assert_eq!(
            is[0],
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(3),
                rs2: Reg(2)
            }
        );
        match is[1] {
            Instr::Branch { rs1, rs2, .. } => {
                assert_eq!((rs1, rs2), (Reg(5), Reg(4)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn nop_padding_remaps_targets() {
        // a loop whose branch target must survive padding
        let p = prog(
            r#"
                addi r1, r0, 3
            loop:
                subi r1, r1, 1
                bne  r1, r0, loop
                halt
            "#,
        );
        for seed in 0..30 {
            let mut r = SmallRng::seed_from_u64(seed);
            let q = NopPadding { density: 0.5 }.apply(&p, &mut r);
            let is = q.decode_all().unwrap();
            // find the bne and check its target points at the subi
            let (bt, _) = is
                .iter()
                .enumerate()
                .find_map(|(k, i)| match i {
                    Instr::Branch { target, .. } => Some((*target, k)),
                    _ => None,
                })
                .expect("branch survives");
            assert!(
                matches!(
                    is[bt as usize],
                    Instr::AluImm {
                        op: AluImmOp::Addi,
                        imm: -1,
                        ..
                    }
                ),
                "seed {seed}: branch target {bt} is {:?}",
                is[bt as usize]
            );
        }
    }

    #[test]
    fn nop_padding_remaps_text_symbols() {
        let p = prog(
            r#"
                nop
            entry:
                addi r1, r0, 1
                halt
            .data
            buf: .word 9
            "#,
        );
        use vds_smtsim::program::Symbol;
        for seed in 0..20 {
            let mut r = SmallRng::seed_from_u64(seed);
            let q = NopPadding { density: 0.5 }.apply(&p, &mut r);
            let Some(Symbol::Text(t)) = q.symbol("entry") else {
                panic!()
            };
            assert!(
                matches!(
                    q.decode_all().unwrap()[t as usize],
                    Instr::AluImm {
                        op: AluImmOp::Addi,
                        imm: 1,
                        ..
                    }
                ),
                "seed {seed}"
            );
            assert_eq!(q.symbol("buf"), Some(Symbol::Data(0)), "data untouched");
        }
    }

    #[test]
    fn nop_padding_density_zero_is_identity() {
        let p = prog("addi r1, r0, 1\nhalt\n");
        let q = NopPadding { density: 0.0 }.apply(&p, &mut rng());
        assert_eq!(p.text, q.text);
    }

    #[test]
    fn arithmetic_recoding_preserves_results() {
        let p = prog(
            r#"
                addi r1, r0, 100
                addi r1, r1, -30
                subi r1, r1, 5
                st   r1, 0(r0)
                halt
            "#,
        );
        for seed in 0..20 {
            let mut r = SmallRng::seed_from_u64(seed);
            let q = ArithmeticRecoding {
                prob: 1.0,
                max_delta: 7,
            }
            .apply(&p, &mut r);
            assert!(q.text.len() > p.text.len(), "seed {seed}: recoded");
            // execute both and compare the stored result
            use vds_smtsim::core::{Core, CoreConfig, RunOutcome, ThreadId};
            let run = |pr: &Program| {
                let mut c = Core::new(CoreConfig::single_threaded());
                c.add_thread(pr, 8);
                assert_eq!(c.run_until_all_blocked(10_000), RunOutcome::AllHalted);
                c.thread(ThreadId(0)).dmem[0]
            };
            assert_eq!(run(&p), run(&q), "seed {seed}");
        }
    }

    #[test]
    fn arithmetic_recoding_remaps_loop_targets() {
        let p = prog(
            r#"
                addi r1, r0, 3
                addi r2, r0, 0
            loop:
                addi r2, r2, 10
                subi r1, r1, 1
                bne  r1, r0, loop
                st   r2, 0(r0)
                halt
            "#,
        );
        for seed in 0..20 {
            let mut r = SmallRng::seed_from_u64(seed);
            let q = ArithmeticRecoding {
                prob: 0.8,
                max_delta: 5,
            }
            .apply(&p, &mut r);
            use vds_smtsim::core::{Core, CoreConfig, RunOutcome, ThreadId};
            let mut c = Core::new(CoreConfig::single_threaded());
            c.add_thread(&q, 8);
            assert_eq!(
                c.run_until_all_blocked(10_000),
                RunOutcome::AllHalted,
                "seed {seed}"
            );
            assert_eq!(c.thread(ThreadId(0)).dmem[0], 30, "seed {seed}");
        }
    }

    #[test]
    fn arithmetic_recoding_desynchronises_stuck_at_corruption() {
        // The point of value diversity: under the SAME stuck-at ALU
        // fault, the base and a recoded version eventually compute
        // different (wrong) states — so comparison detects the permanent
        // fault. A single linear add chain often re-converges
        // (c(c(v+δ)−δ) = c(v) for many v), but a real mixing workload
        // amplifies any intermediate difference. We require divergence
        // for a majority of stuck bits within a few iterations.
        use vds_smtsim::core::{Core, CoreConfig, FuFault, RunOutcome, ThreadId};
        use vds_smtsim::isa::FuClass;
        // mini-mixer: nonlinear (shift+xor) loop over a counter
        let p = prog(
            r#"
                addi r1, r0, 17      ; h
                addi r2, r0, 40      ; iterations
            loop:
                addi r1, r1, 1
                srli r3, r1, 3
                xor  r1, r1, r3
                addi r1, r1, 5
                subi r2, r2, 1
                bne  r2, r0, loop
                st   r1, 0(r0)
                halt
            "#,
        );
        let mut r = SmallRng::seed_from_u64(3);
        let q = ArithmeticRecoding {
            prob: 1.0,
            max_delta: 7,
        }
        .apply(&p, &mut r);
        let run = |pr: &Program, fault: FuFault| {
            let mut c = Core::new(CoreConfig::single_threaded());
            c.add_thread(pr, 8);
            c.inject_fu_fault(fault);
            match c.run_until_all_blocked(100_000) {
                RunOutcome::AllHalted => Some(c.thread(ThreadId(0)).dmem[0]),
                _ => None, // trapped/hung: detectable either way
            }
        };
        let mut diverged = 0;
        let mut total = 0;
        for bit in 0..8u8 {
            for value in [true, false] {
                let fault = FuFault {
                    class: FuClass::Alu,
                    unit: 0,
                    bit,
                    value,
                };
                total += 1;
                if run(&p, fault) != run(&q, fault) {
                    diverged += 1;
                }
            }
        }
        // Identical versions desynchronise on exactly 0/16 of these
        // faults; recoding reaches ~6/16 on this kernel (measured) —
        // enough that repeated comparisons over many rounds detect the
        // fault with overwhelming probability. Require a conservative
        // floor so regressions are caught without over-fitting the RNG.
        assert!(
            diverged >= 4,
            "recoding desynchronised only {diverged}/{total} stuck-at faults"
        );
    }

    #[test]
    fn immediate_rewrite_changes_moves_only() {
        let p = prog("mv r1, r2\naddi r3, r4, 5\nhalt\n");
        let q = ImmediateRewrite.apply(&p, &mut rng());
        let is = q.decode_all().unwrap();
        assert_eq!(
            is[0],
            Instr::AluImm {
                op: AluImmOp::Ori,
                rd: Reg(1),
                rs1: Reg(2),
                imm: 0
            }
        );
        assert_eq!(
            is[1],
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg(3),
                rs1: Reg(4),
                imm: 5
            }
        );
    }
}
