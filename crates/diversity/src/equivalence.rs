//! Co-execution equivalence checking.
//!
//! A transformation is only admissible if the transformed version is
//! observationally equivalent to the original on a fault-free machine:
//! same number of rounds (yields), same output-window contents after
//! every round, same final outcome. This module runs the two versions
//! side by side and checks exactly that — it is both the unit-test oracle
//! for `transform` and a user-facing validator for custom versions.

use std::ops::Range;
use vds_smtsim::core::{Core, CoreConfig, RunOutcome, ThreadId};
use vds_smtsim::program::Program;

/// Why two versions were found inequivalent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivError {
    /// Output windows differ after the given (1-based) round.
    WindowMismatch {
        /// Round at which the mismatch appeared (`0` = final state after
        /// halting).
        round: u32,
        /// First differing word address.
        addr: u32,
        /// Value in version A.
        a: u32,
        /// Value in version B.
        b: u32,
    },
    /// One version yielded while the other halted (round structures
    /// differ).
    RoundStructure {
        /// Rounds completed before the divergence.
        round: u32,
    },
    /// A version trapped or exhausted its cycle budget.
    Execution {
        /// Which version (0 = A, 1 = B).
        version: u8,
        /// Human-readable description.
        what: String,
    },
}

impl std::fmt::Display for EquivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivError::WindowMismatch { round, addr, a, b } => write!(
                f,
                "output mismatch after round {round} at word {addr}: {a:#x} vs {b:#x}"
            ),
            EquivError::RoundStructure { round } => {
                write!(f, "round structure diverged after round {round}")
            }
            EquivError::Execution { version, what } => {
                write!(
                    f,
                    "version {} failed: {what}",
                    ['A', 'B'][*version as usize]
                )
            }
        }
    }
}

struct Runner {
    core: Core,
    tid: ThreadId,
}

impl Runner {
    fn new(prog: &Program, dmem_words: usize) -> Self {
        let mut core = Core::new(CoreConfig::single_threaded());
        let tid = core.add_thread(prog, dmem_words);
        Runner { core, tid }
    }

    /// Run to the next yield (`Ok(true)`), halt (`Ok(false)`) or failure.
    fn next_round(&mut self, budget: u64) -> Result<bool, String> {
        match self.core.run_until_all_blocked(budget) {
            RunOutcome::AllYielded => Ok(true),
            RunOutcome::AllHalted => Ok(false),
            RunOutcome::Trapped(_, t) => Err(format!("trap {t:?}")),
            RunOutcome::CycleBudgetExhausted => Err("cycle budget exhausted".into()),
        }
    }

    fn window(&self, w: &Range<u32>) -> Vec<u32> {
        let d = &self.core.thread(self.tid).dmem;
        let lo = (w.start as usize).min(d.len());
        let hi = (w.end as usize).min(d.len());
        d[lo..hi].to_vec()
    }

    fn resume(&mut self) {
        self.core.resume(self.tid);
    }
}

/// Check that programs `a` and `b` are observationally equivalent over
/// the given output window. Returns the number of rounds both completed.
pub fn check_equivalence(
    a: &Program,
    b: &Program,
    dmem_words: usize,
    window: Range<u32>,
    budget_per_round: u64,
) -> Result<u32, EquivError> {
    let mut ra = Runner::new(a, dmem_words);
    let mut rb = Runner::new(b, dmem_words);
    let mut round = 0u32;
    loop {
        let ya = ra
            .next_round(budget_per_round)
            .map_err(|what| EquivError::Execution { version: 0, what })?;
        let yb = rb
            .next_round(budget_per_round)
            .map_err(|what| EquivError::Execution { version: 1, what })?;
        if ya != yb {
            return Err(EquivError::RoundStructure { round });
        }
        if ya {
            round += 1;
        }
        let wa = ra.window(&window);
        let wb = rb.window(&window);
        if let Some(i) = (0..wa.len().min(wb.len())).find(|&i| wa[i] != wb[i]) {
            return Err(EquivError::WindowMismatch {
                round: if ya { round } else { 0 },
                addr: window.start + i as u32,
                a: wa[i],
                b: wb[i],
            });
        }
        if !ya {
            return Ok(round);
        }
        ra.resume();
        rb.resume();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversify;
    use crate::transform::{NopPadding, RegisterPermutation, Transform};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vds_smtsim::asm::assemble;
    use vds_smtsim::kernels;

    const BUDGET: u64 = 50_000_000;

    #[test]
    fn identical_programs_are_equivalent() {
        let k = kernels::vecsum(16, 2);
        let p = k.program();
        let rounds =
            check_equivalence(&p, &p, k.dmem_words, k.out_addr..k.out_addr + 1, BUDGET).unwrap();
        assert_eq!(rounds, 2);
    }

    #[test]
    fn different_computations_are_caught() {
        let a = assemble("addi r1, r0, 1\nst r1, 0(r0)\nyield\nhalt\n").unwrap();
        let b = assemble("addi r1, r0, 2\nst r1, 0(r0)\nyield\nhalt\n").unwrap();
        match check_equivalence(&a, &b, 8, 0..1, BUDGET) {
            Err(EquivError::WindowMismatch {
                addr: 0,
                a: 1,
                b: 2,
                ..
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn round_structure_divergence_is_caught() {
        let a = assemble("yield\nhalt\n").unwrap();
        let b = assemble("yield\nyield\nhalt\n").unwrap();
        match check_equivalence(&a, &b, 4, 0..1, BUDGET) {
            Err(EquivError::RoundStructure { round: 1 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trapping_version_reported() {
        let a = assemble("yield\nhalt\n").unwrap();
        let b = assemble("li r1, 999\nld r2, 0(r1)\nyield\nhalt\n").unwrap();
        match check_equivalence(&a, &b, 4, 0..1, BUDGET) {
            Err(EquivError::Execution { version: 1, .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    // The central contract: every transform preserves every suite
    // kernel's observable behaviour.

    #[test]
    fn register_permutation_preserves_all_kernels() {
        for k in kernels::suite(2) {
            let base = k.program();
            let mut rng = SmallRng::seed_from_u64(11);
            let v = RegisterPermutation.apply(&base, &mut rng);
            check_equivalence(&base, &v, k.dmem_words, k.out_addr..k.out_addr + 1, BUDGET)
                .unwrap_or_else(|e| panic!("kernel {}: {e}", k.name));
        }
    }

    #[test]
    fn nop_padding_preserves_all_kernels() {
        for k in kernels::suite(2) {
            let base = k.program();
            let mut rng = SmallRng::seed_from_u64(13);
            let v = NopPadding { density: 0.25 }.apply(&base, &mut rng);
            check_equivalence(&base, &v, k.dmem_words, k.out_addr..k.out_addr + 1, BUDGET)
                .unwrap_or_else(|e| panic!("kernel {}: {e}", k.name));
        }
    }

    #[test]
    fn full_pipeline_preserves_all_kernels_for_three_versions() {
        for k in kernels::suite(1) {
            let base = k.program();
            for idx in 1..=3u32 {
                let v = diversify(&base, idx, 4242);
                check_equivalence(&base, &v, k.dmem_words, k.out_addr..k.out_addr + 1, BUDGET)
                    .unwrap_or_else(|e| panic!("kernel {} version {idx}: {e}", k.name));
            }
        }
    }

    #[test]
    fn diverse_versions_schedule_work_differently() {
        // The point of diversity: the machine is *exercised* differently
        // even though the outputs agree. NopPadding adds retired
        // instructions and (typically) cycles.
        let k = kernels::crc(64, 1);
        let base = k.program();
        let mut rng = SmallRng::seed_from_u64(5);
        let v1 = NopPadding { density: 0.5 }.apply(&base, &mut rng);
        assert!(v1.text.len() > base.text.len(), "padding inserted nops");
        let run = |p: &vds_smtsim::program::Program| {
            let mut c = vds_smtsim::core::Core::new(CoreConfig::single_threaded());
            let t = c.add_thread(p, k.dmem_words);
            loop {
                match c.run_until_all_blocked(BUDGET) {
                    RunOutcome::AllYielded => c.resume(t),
                    RunOutcome::AllHalted => break,
                    other => panic!("{other:?}"),
                }
            }
            (c.cycles(), c.thread(t).counters.retired)
        };
        let (cyc0, ret0) = run(&base);
        let (cyc1, ret1) = run(&v1);
        assert!(ret1 > ret0, "padded version retires more instructions");
        assert!(cyc1 >= cyc0, "padding cannot speed the program up");
    }
}
