#![warn(missing_docs)]

//! # vds-diversity — automatic generation of diverse program versions
//!
//! The paper's VDS runs *diverse* versions: "the versions show both design
//! diversity and systematic diversity to be able to recover from transient
//! as well as from many permanent hardware faults", and cites Jochim's
//! automatically generated virtual duplex systems. This crate implements
//! that generator for the `vds-smtsim` ISA: semantics-preserving program
//! transformations that change *how* the hardware is exercised —
//!
//! * [`transform::RegisterPermutation`] — consistently renames registers
//!   (r0 stays fixed), so a transient flip of a given physical register
//!   corrupts different variables in different versions;
//! * [`transform::CommutativeSwap`] — swaps operands of commutative
//!   operations (`add`, `and`, `or`, `xor`, `mul`, `beq`, `bne`), changing
//!   operand routing;
//! * [`transform::NopPadding`] — inserts `nop`s (with branch-target
//!   fix-up), shifting every subsequent instruction's issue slot and
//!   functional-unit assignment — the property that makes a *permanent*
//!   fault in one functional unit corrupt diverse versions differently;
//! * [`transform::ImmediateRewrite`] — rewrites `addi rd, rs, 0` moves to
//!   `ori` form, exercising different decoder paths;
//! * [`transform::ArithmeticRecoding`] — the *systematic* diversity of
//!   Lovrić: recodes `addi` constants through an offset-and-correct pair
//!   so the versions compute different **intermediate values** — the
//!   property that makes a stuck-at fault in a shared functional unit
//!   corrupt the versions differently (value-preserving transforms alone
//!   cannot achieve this).
//!
//! [`diversify`] composes them into the canonical version pipeline, and
//! [`equivalence`] *proves* (by co-execution) that a transformed version
//! computes the same output window as the original on a fault-free
//! machine — the correctness contract every transform must meet, enforced
//! by property tests.
//!
//! The [`vm`] module carries the same idea to the `vds-vm` bytecode
//! workload: scratch-register renaming, commutative operand swaps, a
//! literal-pool permutation and safe instruction reordering, composed by
//! [`vm::diversify_vm`] and proved by [`vm::check_vm_equivalence`].

pub mod equivalence;
pub mod transform;
pub mod vm;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use transform::{
    ArithmeticRecoding, CommutativeSwap, ImmediateRewrite, NopPadding, RegisterPermutation,
    Transform,
};
use vds_smtsim::program::Program;

/// Generate version `index` of a base program. Version 0 is the base
/// itself; higher indices apply increasingly different (but always
/// semantics-preserving) transformation pipelines, deterministically
/// derived from `seed`.
pub fn diversify(base: &Program, index: u32, seed: u64) -> Program {
    if index == 0 {
        return base.clone();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(index)).wrapping_mul(0x9E37_79B9));
    let mut prog = base.clone();
    // every non-base version gets a register permutation…
    prog = RegisterPermutation.apply(&prog, &mut rng);
    // …operand swaps…
    prog = CommutativeSwap { prob: 0.7 }.apply(&prog, &mut rng);
    // …and value diversity (different δ per version — this is what makes
    // permanent stuck-at faults corrupt the versions differently)
    prog = ArithmeticRecoding {
        prob: 0.5,
        max_delta: 7,
    }
    .apply(&prog, &mut rng);
    // odd versions additionally get schedule perturbation, even ones the
    // immediate rewrite — so version 1 and version 2 differ from the base
    // *and* from each other
    if index % 2 == 1 {
        prog = NopPadding { density: 0.12 }.apply(&prog, &mut rng);
    } else {
        prog = ImmediateRewrite.apply(&prog, &mut rng);
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_smtsim::kernels;

    #[test]
    fn version_zero_is_identity() {
        let base = kernels::vecsum(16, 1).program();
        assert_eq!(diversify(&base, 0, 42).text, base.text);
    }

    #[test]
    fn versions_differ_from_base_and_each_other() {
        let base = kernels::crc(32, 1).program();
        let v1 = diversify(&base, 1, 42);
        let v2 = diversify(&base, 2, 42);
        assert_ne!(v1.text, base.text);
        assert_ne!(v2.text, base.text);
        assert_ne!(v1.text, v2.text);
        assert_ne!(v1.text_digest(), v2.text_digest());
    }

    #[test]
    fn diversification_is_deterministic() {
        let base = kernels::bsort(8, 1).program();
        assert_eq!(diversify(&base, 1, 7).text, diversify(&base, 1, 7).text);
        assert_ne!(
            diversify(&base, 1, 7).text,
            diversify(&base, 1, 8).text,
            "different seeds give different versions"
        );
    }

    #[test]
    fn all_suite_kernels_survive_diversification() {
        // equivalence is checked exhaustively in `equivalence::tests`;
        // here we only require the pipeline not to produce garbage
        for k in kernels::suite(1) {
            let base = k.program();
            for idx in 1..=3 {
                let v = diversify(&base, idx, 99);
                assert!(
                    v.decode_all().is_ok(),
                    "kernel {} version {idx} has undecodable text",
                    k.name
                );
            }
        }
    }
}
