//! Diversity for the bytecode-VM workload (`vds-vm`).
//!
//! The register-window ABI pins `r0..r3` (outputs, digested), `r8..r11`
//! (call arguments/returns) and leaves `r4..r7` as pure intra-frame
//! scratch — so a consistent renaming of the scratch set, operand swaps
//! on commutative ALU ops, a literal-pool permutation and reordering of
//! adjacent independent instructions are all observationally invisible
//! on a clean run, while changing *which physical register or pool slot
//! holds which value at any instant*. That is exactly the structural
//! decorrelation a VDS wants: a transient flip of one physical
//! register/pool word corrupts different variables in the two variants,
//! so state comparison catches it, while identical copies would fail
//! identically and mask it.
//!
//! Transform admissibility rules (the contract the property tests
//! enforce via [`check_vm_equivalence`]):
//!
//! 1. only scratch registers `r4..r7` may be renamed, and the renaming
//!    must be applied uniformly to every instruction;
//! 2. operand swaps are restricted to [`vds_vm::AluOp::commutes`] ops;
//! 3. literal-pool permutations must rewrite every `lit` index;
//! 4. instruction reordering may only swap adjacent pairs inside a
//!    basic block (the second instruction must not be a branch target)
//!    with disjoint register footprints, and never moves a store across
//!    another memory access.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng as _;
use rand::SeedableRng;
use vds_vm::{run_round, Instr, Outcome, Program, Vm};

/// A semantics-preserving transformation of a VM [`Program`].
pub trait VmTransform {
    /// Transformation name, for reports.
    fn name(&self) -> &'static str;

    /// Apply to a program, drawing any randomness from `rng`. Must
    /// preserve observable behavior (per-round output registers, data
    /// memory, and halt/trap structure) on a fault-free machine.
    fn apply(&self, prog: &Program, rng: &mut SmallRng) -> Program;
}

/// First scratch register name the ABI lets us rename.
const SCRATCH_LO: u8 = 4;
/// One past the last scratch register name.
const SCRATCH_HI: u8 = 8;

/// Consistently permute the scratch registers `r4..r7` across the whole
/// program. Output (`r0..r3`) and argument (`r8..r11`) registers stay
/// fixed — they are the ABI surface the digest and the window shift
/// depend on.
pub struct ScratchRegPermutation;

impl ScratchRegPermutation {
    fn remap_reg(r: u8, map: &[u8; 4]) -> u8 {
        if (SCRATCH_LO..SCRATCH_HI).contains(&r) {
            map[usize::from(r - SCRATCH_LO)]
        } else {
            r
        }
    }

    fn remap(instr: Instr, map: &[u8; 4]) -> Instr {
        let m = |r: u8| Self::remap_reg(r, map);
        match instr {
            Instr::LoadLit { d, idx } => Instr::LoadLit { d: m(d), idx },
            Instr::Mov { d, s } => Instr::Mov { d: m(d), s: m(s) },
            Instr::Alu { op, d, a, b } => Instr::Alu {
                op,
                d: m(d),
                a: m(a),
                b: m(b),
            },
            Instr::CmpLt { d, a, b } => Instr::CmpLt {
                d: m(d),
                a: m(a),
                b: m(b),
            },
            Instr::CmpEq { d, a, b } => Instr::CmpEq {
                d: m(d),
                a: m(a),
                b: m(b),
            },
            Instr::Jnz { s, target } => Instr::Jnz { s: m(s), target },
            Instr::Jz { s, target } => Instr::Jz { s: m(s), target },
            Instr::Ld { d, a } => Instr::Ld { d: m(d), a: m(a) },
            Instr::St { a, s } => Instr::St { a: m(a), s: m(s) },
            other => other,
        }
    }
}

impl VmTransform for ScratchRegPermutation {
    fn name(&self) -> &'static str {
        "scratch-reg-permutation"
    }

    fn apply(&self, prog: &Program, rng: &mut SmallRng) -> Program {
        let mut map = [4u8, 5, 6, 7];
        map.shuffle(rng);
        let mut out = prog.clone();
        out.code = prog.code.iter().map(|&i| Self::remap(i, &map)).collect();
        out
    }
}

/// Swap the operands of commutative ALU operations
/// (`add/mul/xor/and/or`) with probability `prob` per instruction.
pub struct VmCommutativeSwap {
    /// Per-instruction swap probability.
    pub prob: f64,
}

impl VmTransform for VmCommutativeSwap {
    fn name(&self) -> &'static str {
        "vm-commutative-swap"
    }

    fn apply(&self, prog: &Program, rng: &mut SmallRng) -> Program {
        let mut out = prog.clone();
        out.code = prog
            .code
            .iter()
            .map(|&i| match i {
                Instr::Alu { op, d, a, b } if op.commutes() && rng.gen::<f64>() < self.prob => {
                    Instr::Alu { op, d, a: b, b: a }
                }
                other => other,
            })
            .collect();
        out
    }
}

/// Permute the literal pool and rewrite every `lit` index accordingly,
/// so a bit flip in a given pool word corrupts a *different constant*
/// in each variant.
pub struct LiteralPoolPermutation;

impl VmTransform for LiteralPoolPermutation {
    fn name(&self) -> &'static str {
        "literal-pool-permutation"
    }

    fn apply(&self, prog: &Program, rng: &mut SmallRng) -> Program {
        let n = prog.lits.len();
        let mut order: Vec<u16> = (0..n as u16).collect();
        order.shuffle(rng);
        // order[new] = old; invert to map old -> new
        let mut new_of_old = vec![0u16; n];
        for (new, &old) in order.iter().enumerate() {
            new_of_old[usize::from(old)] = new as u16;
        }
        let mut out = prog.clone();
        out.lits = order
            .iter()
            .map(|&old| prog.lits[usize::from(old)])
            .collect();
        out.code = prog
            .code
            .iter()
            .map(|&i| match i {
                Instr::LoadLit { d, idx } => Instr::LoadLit {
                    d,
                    idx: new_of_old[usize::from(idx)],
                },
                other => other,
            })
            .collect();
        out
    }
}

/// Swap adjacent independent instructions inside basic blocks with
/// probability `prob` per eligible pair — schedule diversity without any
/// dataflow change.
pub struct SafeReorder {
    /// Per-pair swap probability.
    pub prob: f64,
}

/// Register footprint of one instruction: (reads, writes). `None` marks
/// control flow, which never reorders.
fn footprint(i: Instr) -> Option<(Vec<u8>, Vec<u8>, MemEffect)> {
    Some(match i {
        Instr::LoadLit { d, .. } => (vec![], vec![d], MemEffect::None),
        Instr::Mov { d, s } => (vec![s], vec![d], MemEffect::None),
        Instr::Alu { d, a, b, .. } | Instr::CmpLt { d, a, b } | Instr::CmpEq { d, a, b } => {
            (vec![a, b], vec![d], MemEffect::None)
        }
        Instr::Ld { d, a } => (vec![a], vec![d], MemEffect::Read),
        Instr::St { a, s } => (vec![a, s], vec![], MemEffect::Write),
        _ => return None,
    })
}

/// Memory behavior of an instruction, for reorder legality.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MemEffect {
    /// Touches no memory.
    None,
    /// Reads memory (`ld`).
    Read,
    /// Writes memory (`st`).
    Write,
}

impl SafeReorder {
    fn independent(a: Instr, b: Instr) -> bool {
        let (Some((ra, wa, ma)), Some((rb, wb, mb))) = (footprint(a), footprint(b)) else {
            return false;
        };
        // no register hazard in either direction
        let reg_ok = wa.iter().all(|r| !rb.contains(r) && !wb.contains(r))
            && wb.iter().all(|r| !ra.contains(r));
        // a store never moves across another memory access
        let mem_ok = !(ma == MemEffect::Write && mb != MemEffect::None
            || mb == MemEffect::Write && ma != MemEffect::None);
        reg_ok && mem_ok
    }

    fn leaders(prog: &Program) -> Vec<bool> {
        let mut leader = vec![false; prog.code.len() + 1];
        leader[0] = true;
        for (pc, &i) in prog.code.iter().enumerate() {
            match i {
                Instr::Jmp { target }
                | Instr::Jnz { target, .. }
                | Instr::Jz { target, .. }
                | Instr::Call { target } => {
                    if usize::from(target) < leader.len() {
                        leader[usize::from(target)] = true;
                    }
                    if pc + 1 < leader.len() {
                        leader[pc + 1] = true;
                    }
                }
                Instr::Ret | Instr::Halt if pc + 1 < leader.len() => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }
        leader
    }
}

impl VmTransform for SafeReorder {
    fn name(&self) -> &'static str {
        "safe-reorder"
    }

    fn apply(&self, prog: &Program, rng: &mut SmallRng) -> Program {
        let leader = Self::leaders(prog);
        let mut out = prog.clone();
        let mut i = 0;
        while i + 1 < out.code.len() {
            let (a, b) = (out.code[i], out.code[i + 1]);
            // the second slot must not be a branch target: entering the
            // block mid-pair would skip one of the two instructions
            if !leader[i + 1] && Self::independent(a, b) && rng.gen::<f64>() < self.prob {
                out.code.swap(i, i + 1);
                i += 2; // never overlap swapped pairs
            } else {
                i += 1;
            }
        }
        out
    }
}

/// Generate variant `index` of a VM program. Variant 0 is the base
/// itself; higher indices compose the full transform pipeline with
/// per-index randomness, mirroring [`crate::diversify`] for the
/// `vds-smtsim` ISA.
#[must_use]
pub fn diversify_vm(base: &Program, index: u32, seed: u64) -> Program {
    if index == 0 {
        return base.clone();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(index)).wrapping_mul(0x9E37_79B9));
    let mut prog = ScratchRegPermutation.apply(base, &mut rng);
    prog = VmCommutativeSwap { prob: 0.7 }.apply(&prog, &mut rng);
    prog = LiteralPoolPermutation.apply(&prog, &mut rng);
    prog = SafeReorder { prob: 0.5 }.apply(&prog, &mut rng);
    prog
}

/// Why two VM variants were found inequivalent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmEquivError {
    /// 1-based round at which behavior diverged.
    pub round: u32,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl std::fmt::Display for VmEquivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "round {}: {}", self.round, self.detail)
    }
}

/// Co-execute two programs from the same initial data memory for
/// `rounds` rounds and require identical observable behavior after
/// every round: same outcome, same output registers, same full data
/// memory. This is the admissibility oracle for every VM transform.
pub fn check_vm_equivalence(
    a: &Program,
    b: &Program,
    initial_mem: &[u32],
    rounds: u32,
) -> Result<(), VmEquivError> {
    let mut va = Vm::with_mem(initial_mem.to_vec());
    let mut vb = Vm::with_mem(initial_mem.to_vec());
    for round in 1..=rounds {
        let ra = run_round(&mut va, a, round, None);
        let rb = run_round(&mut vb, b, round, None);
        if ra.outcome != rb.outcome {
            return Err(VmEquivError {
                round,
                detail: format!("outcome {:?} vs {:?}", ra.outcome, rb.outcome),
            });
        }
        if ra.outcome != Outcome::Halted {
            return Err(VmEquivError {
                round,
                detail: format!("both variants failed to halt: {:?}", ra.outcome),
            });
        }
        if va.output_regs() != vb.output_regs() {
            return Err(VmEquivError {
                round,
                detail: format!(
                    "output registers {:?} vs {:?}",
                    va.output_regs(),
                    vb.output_regs()
                ),
            });
        }
        if let Some(addr) = (0..va.mem.len()).find(|&w| va.mem[w] != vb.mem[w]) {
            return Err(VmEquivError {
                round,
                detail: format!("dmem[{addr}]: {:#x} vs {:#x}", va.mem[addr], vb.mem[addr]),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_vm::SEED_PROGRAMS;

    #[test]
    fn variant_zero_is_identity() {
        let base = vds_vm::seed_program("checksum").unwrap().assembled();
        let v0 = diversify_vm(&base, 0, 42);
        assert_eq!(v0, base);
    }

    #[test]
    fn variants_differ_from_base_and_each_other() {
        for p in SEED_PROGRAMS {
            let base = p.assembled();
            let v1 = diversify_vm(&base, 1, 42);
            let v2 = diversify_vm(&base, 2, 42);
            assert_ne!(v1.code, base.code, "{}", p.name);
            assert_ne!(v2.code, base.code, "{}", p.name);
            assert_ne!(v1.code, v2.code, "{}", p.name);
        }
    }

    #[test]
    fn diversification_is_deterministic() {
        let base = vds_vm::seed_program("sort").unwrap().assembled();
        assert_eq!(diversify_vm(&base, 1, 7), diversify_vm(&base, 1, 7));
        assert_ne!(
            diversify_vm(&base, 1, 7).code,
            diversify_vm(&base, 1, 8).code,
            "different seeds give different variants"
        );
    }

    #[test]
    fn every_variant_of_every_seed_program_is_equivalent() {
        for p in SEED_PROGRAMS {
            let base = p.assembled();
            let mem = p.initial_dmem(11);
            for idx in 1..=3u32 {
                let v = diversify_vm(&base, idx, 99);
                check_vm_equivalence(&base, &v, &mem, 8).unwrap_or_else(|e| {
                    panic!("{} variant {idx}: {e}", p.name);
                });
            }
        }
    }

    #[test]
    fn literal_pool_permutation_rewrites_indexes() {
        let base = vds_vm::seed_program("matmul").unwrap().assembled();
        let mut rng = SmallRng::seed_from_u64(5);
        let q = LiteralPoolPermutation.apply(&base, &mut rng);
        assert_ne!(q.lits, base.lits, "pool order changed");
        let mut a: Vec<u32> = base.lits.clone();
        let mut b: Vec<u32> = q.lits.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "same pool contents");
        check_vm_equivalence(&base, &q, &base_mem(), 4).unwrap();
    }

    #[test]
    fn scratch_permutation_never_touches_the_abi_surface() {
        let base = vds_vm::seed_program("checksum").unwrap().assembled();
        for seed in 0..10 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let q = ScratchRegPermutation.apply(&base, &mut rng);
            for (i, (&x, &y)) in base.code.iter().zip(q.code.iter()).enumerate() {
                let regs = |ins: Instr| -> Vec<u8> {
                    match ins {
                        Instr::LoadLit { d, .. } => vec![d],
                        Instr::Mov { d, s } => vec![d, s],
                        Instr::Alu { d, a, b, .. }
                        | Instr::CmpLt { d, a, b }
                        | Instr::CmpEq { d, a, b } => vec![d, a, b],
                        Instr::Jnz { s, .. } | Instr::Jz { s, .. } => vec![s],
                        Instr::Ld { d, a } => vec![d, a],
                        Instr::St { a, s } => vec![a, s],
                        _ => vec![],
                    }
                };
                for (rx, ry) in regs(x).iter().zip(regs(y).iter()) {
                    if *rx < 4 || *rx >= 8 {
                        assert_eq!(rx, ry, "instr {i}: ABI register renamed");
                    }
                }
            }
        }
    }

    fn base_mem() -> Vec<u32> {
        vds_vm::seed_program("matmul").unwrap().initial_dmem(1)
    }
}
