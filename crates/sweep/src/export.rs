//! Heatmap exports and the resume journal.
//!
//! Both exports serialise the index-ordered result vector, so their bytes
//! depend only on the grid and base seed — never on `--workers` or
//! completion order:
//!
//! * **CSV** — one row per cell with coordinates and measured metrics
//!   (`g_round`, availability, roll-forward hit rate, …); a heatmap is a
//!   pivot of two coordinate columns against a metric column.
//! * **JSONL** — the same rows as one JSON object per line.
//!
//! The **resume journal** is the crash-tolerant variant: a header line
//! fingerprinting the grid ([`GridSpec::canonical`] hashed with
//! [`Digest128`]) followed by CSV rows appended in *completion* order as
//! cells finish. A killed sweep restarts with `--resume`: rows whose
//! coordinates match the grid are reused verbatim, a torn final line
//! (kill mid-write) is dropped, and a journal from a different grid is
//! rejected by the fingerprint before any row is trusted.

use std::collections::BTreeMap;
use vds_core::Scheme;
use vds_obs::{Digest128, Digester128};

use crate::engine::CellResult;
use crate::grid::{Backend, Cell, GridSpec};

/// Column order of every CSV row (also the JSONL field order).
pub const CSV_HEADER: &str = "index,backend,scheme,alpha,s,q,rounds,seed,\
committed_rounds,total_time,throughput,g_round,availability,\
rf_hits,rf_misses,rf_discards,rf_hit_rate,detections,rollbacks,shutdown,\
predicted_g,residual,coverage,mean_detect_latency,measured_alpha,dominant_stall";

/// The measured-only column set: [`CSV_HEADER`] without the trailing
/// derived conformance columns (`predicted_g,residual`). This is the
/// layout the bench suite attaches to E15/E16 — their attachment bytes
/// feed the deterministic `report.data_bytes` counter that the
/// `vds bench --check` work-unit gate pins, so the figure artefact must
/// stay byte-stable while the full sweep exports grow columns.
pub const MEASURED_CSV_HEADER: &str = "index,backend,scheme,alpha,s,q,rounds,seed,\
committed_rounds,total_time,throughput,g_round,availability,\
rf_hits,rf_misses,rf_discards,rf_hit_rate,detections,rollbacks,shutdown";

/// The measured columns of one row (no trailing newline). Floats use
/// Rust's shortest round-trip `Display`, so parsing a row back yields
/// bit-identical values.
fn measured_csv_row(r: &CellResult) -> String {
    let c = &r.cell;
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        c.index,
        c.backend.name(),
        c.scheme.name(),
        c.alpha,
        c.s,
        c.q,
        c.rounds,
        c.seed,
        r.committed_rounds,
        r.total_time,
        r.throughput,
        r.g_round,
        r.availability,
        r.rf_hits,
        r.rf_misses,
        r.rf_discards,
        r.rf_hit_rate,
        r.detections,
        r.rollbacks,
        u8::from(r.shutdown)
    )
}

/// One full CSV row (no trailing newline): the measured columns plus the
/// derived conformance and fault-forensics columns.
pub fn csv_row(r: &CellResult) -> String {
    format!(
        "{},{},{},{},{},{},{}",
        measured_csv_row(r),
        r.predicted_g,
        r.residual,
        r.coverage,
        r.mean_detect_latency,
        r.measured_alpha,
        r.dominant_stall
    )
}

/// Full CSV document: header plus one row per cell in index order.
pub fn to_csv(results: &[CellResult]) -> String {
    let mut out = String::with_capacity(64 * (results.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in results {
        out.push_str(&csv_row(r));
        out.push('\n');
    }
    out
}

/// CSV document restricted to [`MEASURED_CSV_HEADER`]'s columns — the
/// byte-pinned figure artefact for the bench suite (see the header
/// constant for why). Everything else should use [`to_csv`].
pub fn to_measured_csv(results: &[CellResult]) -> String {
    let mut out = String::with_capacity(64 * (results.len() + 1));
    out.push_str(MEASURED_CSV_HEADER);
    out.push('\n');
    for r in results {
        out.push_str(&measured_csv_row(r));
        out.push('\n');
    }
    out
}

/// One JSON object per line, same fields and order as the CSV.
pub fn to_jsonl(results: &[CellResult]) -> String {
    let mut out = String::with_capacity(192 * results.len());
    for r in results {
        let c = &r.cell;
        out.push_str(&format!(
            "{{\"index\":{},\"backend\":\"{}\",\"scheme\":\"{}\",\"alpha\":{},\
             \"s\":{},\"q\":{},\"rounds\":{},\"seed\":{},\"committed_rounds\":{},\
             \"total_time\":{},\"throughput\":{},\"g_round\":{},\"availability\":{},\
             \"rf_hits\":{},\"rf_misses\":{},\"rf_discards\":{},\"rf_hit_rate\":{},\
             \"detections\":{},\"rollbacks\":{},\"shutdown\":{},\
             \"predicted_g\":{},\"residual\":{},\
             \"coverage\":{},\"mean_detect_latency\":{},\
             \"measured_alpha\":{},\"dominant_stall\":\"{}\"}}\n",
            c.index,
            c.backend.name(),
            c.scheme.name(),
            json_f64(c.alpha),
            c.s,
            json_f64(c.q),
            c.rounds,
            c.seed,
            r.committed_rounds,
            json_f64(r.total_time),
            json_f64(r.throughput),
            json_f64(r.g_round),
            json_f64(r.availability),
            r.rf_hits,
            r.rf_misses,
            r.rf_discards,
            json_f64(r.rf_hit_rate),
            r.detections,
            r.rollbacks,
            r.shutdown,
            json_f64(r.predicted_g),
            json_f64(r.residual),
            json_f64(r.coverage),
            json_f64(r.mean_detect_latency),
            json_f64(r.measured_alpha),
            r.dominant_stall
        ));
    }
    out
}

/// JSON has no NaN/Infinity literals; results should never produce them,
/// but a reader must not choke if one slips through.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Fingerprint of the grid a journal belongs to: [`Digest128`] over the
/// canonical spec rendering (axes, backend, rounds, base seed — not
/// worker count, which must not matter).
pub fn grid_digest(spec: &GridSpec) -> Digest128 {
    let mut d = Digester128::new();
    d.push_bytes(spec.canonical().as_bytes());
    d.finish()
}

/// First line of a resume journal for `spec` (with trailing newline).
pub fn journal_header(spec: &GridSpec) -> String {
    // v4: rows carry the measured_alpha / dominant_stall α-attribution
    // columns after the v3 forensics columns; older journals (20-, 22-
    // or 24-column rows) are rejected by the version check below rather
    // than mis-parsed
    format!("#vds-sweep-journal v4 grid={}\n", grid_digest(spec))
}

/// Parse a resume journal against the grid it claims to belong to.
///
/// Returns completed cells keyed by index. Fails if the header or the
/// grid fingerprint mismatch (resuming under a different grid would
/// silently splice unrelated measurements). A malformed **last** line is
/// tolerated — that is what a kill mid-append leaves behind — but a
/// malformed interior line, or a row whose coordinates disagree with the
/// grid's cell at that index, is an error.
pub fn parse_journal(text: &str, spec: &GridSpec) -> Result<BTreeMap<u64, CellResult>, String> {
    let expected = journal_header(spec);
    let mut lines = text.lines();
    match lines.next() {
        Some(first) if first == expected.trim_end() => {}
        Some(first) if first.starts_with("#vds-sweep-journal") => {
            return Err(format!(
                "journal belongs to a different grid or format version \
                 (header `{first}`, this grid is `{}`)",
                expected.trim_end()
            ));
        }
        _ => return Err("not a vds-sweep journal (missing header line)".into()),
    }
    let cells = spec.cells();
    let rows: Vec<&str> = lines.filter(|l| !l.trim().is_empty()).collect();
    let mut done = BTreeMap::new();
    for (i, line) in rows.iter().enumerate() {
        match parse_row(line, &cells) {
            Ok(res) => {
                done.insert(res.cell.index, res);
            }
            Err(e) if i + 1 == rows.len() => {
                // torn final line from a kill mid-write: drop it, the
                // cell just re-runs
                vds_obs::log_warn!(
                    "sweep.journal",
                    "dropping torn final journal line ({e}): {line}"
                );
            }
            Err(e) => return Err(format!("journal line {}: {e}", i + 2)),
        }
    }
    Ok(done)
}

/// Parse one CSV row back into a [`CellResult`], cross-checking every
/// coordinate against the grid's cell at that index.
pub fn parse_row(line: &str, cells: &[Cell]) -> Result<CellResult, String> {
    let f: Vec<&str> = line.split(',').collect();
    let ncols = CSV_HEADER.split(',').count();
    if f.len() != ncols {
        return Err(format!("expected {ncols} fields, got {}", f.len()));
    }
    fn num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
        v.parse().map_err(|_| format!("bad {what} `{v}`"))
    }
    let index: u64 = num(f[0], "index")?;
    let cell = cells
        .get(usize::try_from(index).map_err(|_| "index overflow".to_string())?)
        .ok_or_else(|| format!("index {index} outside the grid"))?;
    let backend = Backend::parse(f[1])?;
    let scheme = Scheme::ALL
        .iter()
        .copied()
        .find(|s| s.name() == f[2])
        .ok_or_else(|| format!("unknown scheme `{}`", f[2]))?;
    let row_cell = Cell {
        index,
        alpha: num(f[3], "alpha")?,
        s: num(f[4], "s")?,
        scheme,
        q: num(f[5], "q")?,
        backend,
        rounds: num(f[6], "rounds")?,
        seed: num(f[7], "seed")?,
        // the program axis has no CSV column: the journal fingerprint
        // already pins it grid-wide, and the seed cross-check below
        // (derived from the program-bearing key) catches a swap
        program: cell.program.clone(),
    };
    if row_cell != *cell {
        return Err(format!(
            "row coordinates `{}` disagree with the grid's cell {index} `{}`",
            row_cell.key(),
            cell.key()
        ));
    }
    Ok(CellResult {
        cell: row_cell,
        committed_rounds: num(f[8], "committed_rounds")?,
        total_time: num(f[9], "total_time")?,
        throughput: num(f[10], "throughput")?,
        g_round: num(f[11], "g_round")?,
        availability: num(f[12], "availability")?,
        rf_hits: num(f[13], "rf_hits")?,
        rf_misses: num(f[14], "rf_misses")?,
        rf_discards: num(f[15], "rf_discards")?,
        rf_hit_rate: num(f[16], "rf_hit_rate")?,
        detections: num(f[17], "detections")?,
        rollbacks: num(f[18], "rollbacks")?,
        shutdown: match f[19] {
            "0" => false,
            "1" => true,
            other => return Err(format!("bad shutdown flag `{other}`")),
        },
        predicted_g: num(f[20], "predicted_g")?,
        residual: num(f[21], "residual")?,
        coverage: num(f[22], "coverage")?,
        mean_detect_latency: num(f[23], "mean_detect_latency")?,
        measured_alpha: num(f[24], "measured_alpha")?,
        dominant_stall: f[25].to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sweep;

    fn grid() -> GridSpec {
        GridSpec::parse_inline("alpha=0.6,0.8;s=10;scheme=smt-det,smt-prob;q=0,0.05;rounds=100")
            .unwrap()
    }

    #[test]
    fn measured_csv_is_the_full_csv_minus_the_conformance_columns() {
        assert_eq!(
            CSV_HEADER,
            format!(
                "{MEASURED_CSV_HEADER},predicted_g,residual,coverage,mean_detect_latency,\
                 measured_alpha,dominant_stall"
            )
        );
        let g = grid();
        let out = run_sweep(&g, 1, None, &BTreeMap::new(), None);
        let full = to_csv(&out.results);
        let measured = to_measured_csv(&out.results);
        for (f, m) in full.lines().zip(measured.lines()) {
            assert!(f.starts_with(m), "`{f}` does not extend `{m}`");
        }
        assert_eq!(full.lines().count(), measured.lines().count());
    }

    #[test]
    fn csv_rows_round_trip_bit_exactly() {
        let g = grid();
        let out = run_sweep(&g, 2, None, &BTreeMap::new(), None);
        let cells = g.cells();
        for r in &out.results {
            let back = parse_row(&csv_row(r), &cells).unwrap();
            assert_eq!(&back, r, "row `{}`", csv_row(r));
        }
        let csv = to_csv(&out.results);
        assert!(csv.starts_with(CSV_HEADER));
        assert_eq!(csv.lines().count(), out.results.len() + 1);
        let jsonl = to_jsonl(&out.results);
        assert_eq!(jsonl.lines().count(), out.results.len());
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn journal_resumes_and_rejects_foreign_grids() {
        let g = grid();
        let out = run_sweep(&g, 1, None, &BTreeMap::new(), None);
        // a journal holding the first 3 cells, in scrambled completion order
        let mut text = journal_header(&g);
        for r in out.results.iter().take(3).rev() {
            text.push_str(&csv_row(r));
            text.push('\n');
        }
        let done = parse_journal(&text, &g).unwrap();
        assert_eq!(done.len(), 3);
        assert_eq!(done[&0], out.results[0]);

        // torn final line (kill mid-append) is dropped, earlier rows kept
        let torn = format!("{text}4,abstract,smt-det,0.6,10,0.05,100,99");
        let done = parse_journal(&torn, &g).unwrap();
        assert_eq!(done.len(), 3);

        // malformed interior line is an error, not silently skipped
        let bad = format!(
            "{}garbage\n{}\n",
            journal_header(&g),
            csv_row(&out.results[0])
        );
        assert!(parse_journal(&bad, &g).is_err());

        // a different grid (other seed) is rejected up front
        let mut other = g.clone();
        other.base_seed = 77;
        let err = parse_journal(&text, &other).unwrap_err();
        assert!(err.contains("different grid"), "{err}");

        // not a journal at all
        assert!(parse_journal("index,backend\n", &g).is_err());
    }

    #[test]
    fn journal_row_with_wrong_coordinates_is_rejected() {
        let g = grid();
        let out = run_sweep(&g, 1, None, &BTreeMap::new(), None);
        let mut row = csv_row(&out.results[0]);
        // same index, tampered alpha column
        row = row.replacen("0.6", "0.8", 1);
        let text = format!("{}{row}\nnot-a-row", journal_header(&g));
        // interior tampered row errors even though a torn tail follows
        assert!(parse_journal(&text, &g).is_err());
    }
}
