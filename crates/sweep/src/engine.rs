//! The work-stealing sweep executor.
//!
//! Cells are the work units: a shared atomic cursor hands each worker the
//! next unclaimed cell (work stealing — a slow cell never blocks the
//! rest), results land in per-cell slots and merge **in cell-index
//! order**, so every export is byte-identical for any `--workers` count.
//! The determinism contract is the same one `vds_fault::campaign` and the
//! flight-recorder journal pin: threads decide *who* computes a cell,
//! never what it contains or where it lands.
//!
//! Two hot-path economies ride along:
//!
//! * the conventional reference run behind every cell's `G_round` is
//!   **memoized** per `(backend, s, q, rounds)` — all α values and all
//!   schemes at one grid point share a single baseline execution;
//! * the engines' window digests use the batched
//!   [`vds_obs::Digester128::push_words`] loop (state stays in registers
//!   across the slice) and hash in place instead of copying data memory.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use vds_analytic::Params;
use vds_core::abstract_vds::{self, AbstractConfig};
use vds_core::micro_vds::{run_micro, MicroConfig, MicroFault};
use vds_core::vm_vds::{run_vm_duplex, VmConfig, VmFault};
use vds_core::{FaultModel, RunReport, Scheme, Victim};
use vds_desim::rng::child_seed;
use vds_fault::campaign::CampaignMonitor;
use vds_fault::model::{FaultKind, FaultSite};
use vds_fault::vm::VmFaultSite;
use vds_obs::Registry;

use crate::grid::{Backend, Cell, GridSpec};

/// The paper's figure overhead ratio `β = c/t = t'/t` used for every
/// abstract-backend cell (the grid varies α, s, scheme and q; β stays at
/// the figures' value).
pub const BETA: f64 = 0.1;

/// Measured outcome of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell's coordinates.
    pub cell: Cell,
    /// Rounds committed (should equal `cell.rounds` unless a fail-safe
    /// shutdown ended the mission early).
    pub committed_rounds: u64,
    /// Total simulated wall time.
    pub total_time: f64,
    /// Committed rounds per simulated time unit.
    pub throughput: f64,
    /// Throughput relative to the memoized conventional reference at the
    /// same `(backend, s, q, rounds)` — the measured counterpart of
    /// Eq. (4)'s `G_round ≈ 1/α`.
    pub g_round: f64,
    /// Fraction of wall time spent in normal processing.
    pub availability: f64,
    /// Roll-forward windows whose progress survived.
    pub rf_hits: u64,
    /// Roll-forward windows that picked the faulty state.
    pub rf_misses: u64,
    /// Roll-forward windows discarded by a detection mid-window.
    pub rf_discards: u64,
    /// `hits / (hits + misses + discards)`; 0 when no window was ever
    /// attempted (zero-intent windows at i < 4 don't count as attempts).
    pub rf_hit_rate: f64,
    /// Mismatch/trap detections.
    pub detections: u64,
    /// Rollbacks (vote failures + processor stops).
    pub rollbacks: u64,
    /// Whether the cell ended in a fail-safe shutdown.
    pub shutdown: bool,
    /// Closed-form phase-blend prediction of `g_round` at this cell's
    /// coordinates: normal time at Eq. 4's `G_round`, recovery time at
    /// the scheme's steady-state `ḡ`, checkpoint time at parity.
    pub predicted_g: f64,
    /// `g_round − predicted_g`: the cell's model-conformance residual
    /// (what the E15/E16 heatmaps plot as model error).
    pub residual: f64,
    /// Fault coverage: detected over injected (1.0 for fault-free cells).
    pub coverage: f64,
    /// Mean detection latency in rounds over the cell's detected faults
    /// (0 when nothing was detected).
    pub mean_detect_latency: f64,
    /// The α the attribution ledger measures on the micro core (one
    /// matmul self-pair per sweep — every cell of a run shares it, so the
    /// column lets a heatmap compare the grid's parametric α axis against
    /// what the simulated pipeline actually exhibits).
    pub measured_alpha: f64,
    /// The stall cause the ledger attributes the most co-run excess
    /// cycles to (`icache`/`dcache`/`fu`/`width`/`branch`, or `none`).
    pub dominant_stall: String,
}

impl CellResult {
    fn from_report(cell: Cell, r: &RunReport, baseline_throughput: f64) -> CellResult {
        let throughput = r.throughput();
        let attempts = r.rollforward_hits + r.rollforward_misses + r.rollforward_discards;
        let g_round = if baseline_throughput > 0.0 {
            throughput / baseline_throughput
        } else {
            0.0
        };
        let predicted_g = predicted_gain(&cell, r);
        CellResult {
            cell,
            committed_rounds: r.committed_rounds,
            total_time: r.total_time,
            throughput,
            g_round,
            availability: if r.total_time > 0.0 {
                r.time_normal / r.total_time
            } else {
                0.0
            },
            rf_hits: r.rollforward_hits,
            rf_misses: r.rollforward_misses,
            rf_discards: r.rollforward_discards,
            rf_hit_rate: if attempts > 0 {
                r.rollforward_hits as f64 / attempts as f64
            } else {
                0.0
            },
            detections: r.detections,
            rollbacks: r.rollbacks,
            shutdown: r.shutdown,
            predicted_g,
            residual: g_round - predicted_g,
            coverage: r.coverage(),
            mean_detect_latency: r.mean_detect_latency_rounds(),
            measured_alpha: 0.0,
            dominant_stall: String::new(),
        }
    }
}

/// Measure the sweep's α-attribution stamp once: a matmul self-pair
/// ledger on the default micro core. Deterministic and independent of
/// the grid, so every cell of a run (and any worker count) carries the
/// same two values. The suite kernels cannot trap, so the `expect` is
/// unreachable in practice.
fn measured_alpha_stamp() -> (f64, String) {
    let cfg = vds_smtsim::core::CoreConfig::default();
    let k = vds_smtsim::kernels::matmul(6, 1);
    let ledger =
        vds_smtsim::alpha::measure_ledger(&cfg, &k, &k).expect("suite kernels run to completion");
    (ledger.alpha, ledger.dominant_stall().to_string())
}

/// Closed-form phase-blend prediction of a cell's measured `g_round`:
/// the run's normal time valued at Eq. 4's `G_round`, recovery time at
/// the scheme's steady-state `ḡ` (Eqs. 7/8/13, boosted averages, with
/// the abstract engine's default `p = 0.5`), checkpoint time at parity.
/// The phase fractions are ratios, so the blend applies to the micro
/// backend's cycle-denominated report unchanged.
fn predicted_gain(cell: &Cell, r: &RunReport) -> f64 {
    if r.total_time <= 0.0 {
        return 0.0;
    }
    let p = Params::with_beta(cell.alpha, BETA, cell.s);
    let name = cell.scheme.name();
    let g_round = if vds_analytic::schemes::is_smt(name) {
        vds_analytic::timing::g_round_exact(&p)
    } else {
        1.0
    };
    let gbar = vds_analytic::schemes::gbar(name, &p, 0.5).unwrap_or(1.0);
    (r.time_normal * g_round + r.time_recovery * gbar + r.time_checkpoint) / r.total_time
}

/// Completed sweep: every cell's result in index order plus the canonical
/// `sweep.*` metrics registry (both byte-stable across worker counts).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// One result per cell, in grid (index) order.
    pub results: Vec<CellResult>,
    /// Canonical metrics: totals, per-scheme cell counts and G_round /
    /// availability / hit-rate summaries, assembled in index order.
    pub registry: Registry,
    /// Cells reused from a resume journal.
    pub resumed: u64,
    /// Baseline lookups served from the memo instead of re-executing the
    /// conventional reference.
    pub baseline_memo_hits: u64,
}

/// Execute one cell on its backend.
fn execute(cell: &Cell) -> RunReport {
    match cell.backend {
        Backend::Abstract => {
            let params = Params::with_beta(cell.alpha, BETA, cell.s);
            let cfg = AbstractConfig::new(params, cell.scheme);
            let fm = if cell.q > 0.0 {
                FaultModel::PerRound { q: cell.q }
            } else {
                FaultModel::None
            };
            abstract_vds::run(&cfg, fm, cell.rounds, cell.seed)
        }
        Backend::Micro => {
            let mut cfg = MicroConfig::new(cell.scheme, cell.s);
            cfg.seed = cell.seed;
            // keep the baked-in round budget ahead of the target plus
            // recovery replays
            cfg.workload_rounds = cfg.workload_rounds.max(
                u32::try_from(cell.rounds)
                    .unwrap_or(u32::MAX)
                    .saturating_mul(2)
                    + 64,
            );
            // The micro platform injects placed one-shot faults rather
            // than a per-round Bernoulli draw; q > 0 selects one
            // seed-derived transient memory fault per mission.
            let fault = if cell.q > 0.0 {
                let at = 1 + (cell.seed % u64::from(cell.s)) as u32;
                let victim = if cell.seed & 1 == 0 {
                    Victim::V1
                } else {
                    Victim::V2
                };
                Some(MicroFault {
                    at_round: at,
                    victim,
                    kind: FaultKind::Transient(FaultSite::Memory { addr: 4, bit: 9 }),
                })
            } else {
                None
            };
            run_micro(&cfg, fault, cell.rounds)
        }
        Backend::Vm => {
            let mut cfg = VmConfig::new(&cell.program);
            cfg.scheme = cell.scheme;
            cfg.s = cell.s;
            cfg.seed = cell.seed;
            // Like the micro platform: q > 0 selects one seed-derived
            // placed fault per mission — a live-register flip, the site
            // class every seed program detects or masks (never escapes).
            let fault = if cell.q > 0.0 {
                Some(VmFault {
                    at_round: 1 + (cell.seed % u64::from(cell.s)) as u32,
                    victim: if cell.seed & 1 == 0 {
                        Victim::V1
                    } else {
                        Victim::V2
                    },
                    site: VmFaultSite::Reg { index: 1, bit: 5 },
                })
            } else {
                None
            };
            run_vm_duplex(&cfg, fault, cell.rounds)
        }
    }
}

/// Memoized conventional reference throughputs, keyed by
/// [`Cell::baseline_key`]. The first worker to need a key computes it
/// (under a per-key [`OnceLock`], so others block on that key only);
/// everyone else reuses the value. The computed number depends only on
/// the key and the base seed — never on which worker got there first.
struct BaselineCache {
    map: Mutex<BTreeMap<String, Arc<OnceLock<f64>>>>,
    hits: AtomicU64,
}

impl BaselineCache {
    fn new() -> Self {
        BaselineCache {
            map: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
        }
    }

    fn conventional_throughput(&self, cell: &Cell, base_seed: u64) -> f64 {
        let key = cell.baseline_key();
        let slot = {
            let mut m = self.map.lock().unwrap();
            match m.get(&key) {
                Some(s) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(s)
                }
                None => {
                    let s = Arc::new(OnceLock::new());
                    m.insert(key, Arc::clone(&s));
                    s
                }
            }
        };
        *slot.get_or_init(|| {
            let mut b = cell.clone();
            b.scheme = Scheme::Conventional;
            // α does not enter conventional timing; pin it so the
            // reference is literally the same run for every α row
            b.alpha = 0.65;
            b.seed = child_seed(base_seed, &format!("baseline|{}", b.baseline_key()));
            execute(&b).throughput()
        })
    }
}

/// The per-cell metric delta streamed to a monitor as the cell finishes
/// (merged commutatively into a live hub; the canonical registry is
/// rebuilt in index order afterwards and matches the converged stream).
fn cell_registry(r: &CellResult, resumed: bool) -> Registry {
    let mut reg = Registry::new();
    reg.count("sweep.cells_done", 1);
    if resumed {
        reg.count("sweep.cells_resumed", 1);
    }
    accumulate_cell(&mut reg, r);
    reg
}

fn accumulate_cell(reg: &mut Registry, r: &CellResult) {
    reg.count(&format!("sweep.cells.scheme.{}", r.cell.scheme.name()), 1);
    reg.count("sweep.detections", r.detections);
    reg.count("sweep.rollbacks", r.rollbacks);
    reg.count("sweep.rollforward_hits", r.rf_hits);
    reg.count("sweep.rollforward_misses", r.rf_misses);
    reg.count("sweep.rollforward_discards", r.rf_discards);
    if r.shutdown {
        reg.count("sweep.shutdowns", 1);
    }
    reg.observe("sweep.g_round", r.g_round);
    reg.observe("sweep.availability", r.availability);
    if r.rf_hits + r.rf_misses + r.rf_discards > 0 {
        reg.observe("sweep.hit_rate", r.rf_hit_rate);
    }
    // first-class histogram of per-cell model error (gauges/histograms
    // only — counters feed bench work-unit accounting)
    reg.observe_hist("sweep.conformance.residual_abs", r.residual.abs());
    // fault-forensics observables, summaries only for the same reason
    reg.observe("sweep.faults.coverage", r.coverage);
    reg.observe_hist("sweep.faults.detect_latency_rounds", r.mean_detect_latency);
    // the measured-α stamp is one value per sweep — a gauge (last write
    // wins, every cell writes the same number), never a counter
    reg.gauge("sweep.alpha.measured", r.measured_alpha);
}

/// Run the sweep across `workers` threads.
///
/// * `resume` — previously completed cells (from
///   [`crate::export::parse_journal`]); they are reused verbatim, not
///   re-executed.
/// * `monitor` — read-only progress tap (one `trial_done` +
///   `shard_done(delta)` per cell, completion order). Canonical outputs
///   are byte-identical with or without a monitor.
/// * `on_cell` — called for every **newly computed** cell in completion
///   order; the CLI appends the resume-journal row here so a killed sweep
///   can pick up where it left off.
///
/// # Panics
/// Panics if `spec` fails [`GridSpec::validate`].
pub fn run_sweep(
    spec: &GridSpec,
    workers: usize,
    monitor: Option<&dyn CampaignMonitor>,
    resume: &BTreeMap<u64, CellResult>,
    on_cell: Option<&(dyn Fn(&CellResult) + Sync)>,
) -> SweepOutcome {
    spec.validate().expect("validated grid");
    let cells = spec.cells();
    let workers = workers.max(1).min(cells.len().max(1));
    let slots: Vec<Mutex<Option<CellResult>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicU64::new(0);
    let resumed = AtomicU64::new(0);
    let baseline = BaselineCache::new();
    // one α-attribution measurement per sweep, taken up front on this
    // thread so the stamp never depends on worker scheduling
    let (measured_alpha, dominant_stall) = measured_alpha_stamp();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed) as usize;
                if k >= cells.len() {
                    break;
                }
                let cell = &cells[k];
                let (res, was_resumed) = match resume.get(&cell.index) {
                    Some(prev) => {
                        resumed.fetch_add(1, Ordering::Relaxed);
                        (prev.clone(), true)
                    }
                    None => {
                        let conv = baseline.conventional_throughput(cell, spec.base_seed);
                        let report = execute(cell);
                        let mut res = CellResult::from_report(cell.clone(), &report, conv);
                        res.measured_alpha = measured_alpha;
                        res.dominant_stall = dominant_stall.clone();
                        (res, false)
                    }
                };
                if !was_resumed {
                    if let Some(cb) = on_cell {
                        cb(&res);
                    }
                }
                if let Some(m) = monitor {
                    m.trial_done();
                    m.shard_done(&cell_registry(&res, was_resumed));
                }
                *slots[k].lock().unwrap() = Some(res);
            });
        }
    });
    let results: Vec<CellResult> = slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every cell completes"))
        .collect();
    let resumed = resumed.into_inner();
    let baseline_memo_hits = baseline.hits.into_inner();
    // canonical registry, rebuilt single-threaded in index order
    let mut registry = Registry::new();
    registry.count("sweep.cells_total", cells.len() as u64);
    registry.count("sweep.cells_done", cells.len() as u64);
    registry.count("sweep.cells_resumed", resumed);
    registry.count("sweep.baseline_memo_hits", baseline_memo_hits);
    for r in &results {
        accumulate_cell(&mut registry, r);
    }
    SweepOutcome {
        results,
        registry,
        resumed,
        baseline_memo_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> GridSpec {
        GridSpec::parse_inline(
            "alpha=0.55,0.75;s=10,20;scheme=conventional,smt-det,smt-prob;q=0,0.02;rounds=200",
        )
        .unwrap()
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let g = small_grid();
        let a = run_sweep(&g, 1, None, &BTreeMap::new(), None);
        let b = run_sweep(&g, 8, None, &BTreeMap::new(), None);
        assert_eq!(a.results, b.results);
        assert_eq!(a.registry, b.registry);
        assert_eq!(
            a.registry.to_csv(),
            b.registry.to_csv(),
            "registry export must be byte-identical across worker counts"
        );
        assert_eq!(a.results.len(), 2 * 2 * 3 * 2);
    }

    #[test]
    fn fault_free_smt_cells_approach_one_over_alpha() {
        let g =
            GridSpec::parse_inline("alpha=0.55,0.95;s=20;scheme=smt-det;q=0;rounds=400").unwrap();
        let out = run_sweep(&g, 2, None, &BTreeMap::new(), None);
        for r in &out.results {
            // Eq. (4): G_round = T1/THT2 ≈ 1/α, exact form with β = 0.1
            let p = Params::with_beta(r.cell.alpha, BETA, r.cell.s);
            let expect = vds_analytic::timing::g_round_exact(&p);
            assert!(
                (r.g_round - expect).abs() < 1e-6,
                "alpha={} got {} want {expect}",
                r.cell.alpha,
                r.g_round
            );
            assert!(r.availability > 0.9);
            assert_eq!(r.detections, 0);
        }
    }

    #[test]
    fn conformance_residuals_vanish_fault_free_and_stay_finite_with_faults() {
        let g = GridSpec::parse_inline(
            "alpha=0.55,0.75;s=20;scheme=conventional,smt-det,smt-prob;q=0,0.02;rounds=400",
        )
        .unwrap();
        let out = run_sweep(&g, 2, None, &BTreeMap::new(), None);
        for r in &out.results {
            assert!(r.predicted_g > 0.0, "{}", r.cell.key());
            assert!(r.residual.is_finite(), "{}", r.cell.key());
            assert!(
                (r.residual - (r.g_round - r.predicted_g)).abs() < 1e-15,
                "{}",
                r.cell.key()
            );
            if r.cell.q == 0.0 {
                // fault-free: the blend collapses to G_round (or 1.0 for
                // the conventional reference) and the residual vanishes
                assert!(
                    r.residual.abs() < 1e-6,
                    "{}: residual {}",
                    r.cell.key(),
                    r.residual
                );
            } else {
                assert!(r.residual.abs() < 0.5, "{}: {}", r.cell.key(), r.residual);
            }
        }
        // per-cell |residual| lands in the registry's histogram
        let h = out
            .registry
            .histogram("sweep.conformance.residual_abs")
            .unwrap();
        assert_eq!(h.count(), out.results.len() as u64);
    }

    #[test]
    fn baseline_memo_shares_the_conventional_reference() {
        let g = small_grid();
        let out = run_sweep(&g, 4, None, &BTreeMap::new(), None);
        // distinct (s, q) pairs = 4 baselines; every other lookup is a hit
        let distinct = 2 * 2;
        assert_eq!(
            out.baseline_memo_hits,
            out.results.len() as u64 - distinct,
            "memo hits must be exact and worker-invariant"
        );
        assert_eq!(
            out.registry.counter("sweep.baseline_memo_hits"),
            out.baseline_memo_hits
        );
    }

    #[test]
    fn resume_reuses_cells_verbatim() {
        let g = small_grid();
        let full = run_sweep(&g, 2, None, &BTreeMap::new(), None);
        // pretend the first half was journaled before a kill
        let half: BTreeMap<u64, CellResult> = full
            .results
            .iter()
            .take(full.results.len() / 2)
            .map(|r| (r.cell.index, r.clone()))
            .collect();
        let computed = Mutex::new(0u64);
        let resumed_run = run_sweep(
            &g,
            3,
            None,
            &half,
            Some(&|_r: &CellResult| {
                *computed.lock().unwrap() += 1;
            }),
        );
        assert_eq!(resumed_run.results, full.results);
        assert_eq!(resumed_run.resumed, half.len() as u64);
        assert_eq!(
            *computed.lock().unwrap(),
            full.results.len() as u64 - half.len() as u64,
            "on_cell fires only for newly computed cells"
        );
        // totals match; only the resumed counter differs
        assert_eq!(
            resumed_run.registry.counter("sweep.cells_done"),
            full.registry.counter("sweep.cells_done")
        );
        assert_eq!(
            resumed_run.registry.counter("sweep.cells_resumed"),
            half.len() as u64
        );
    }

    #[test]
    fn micro_backend_cells_run_and_detect() {
        let g = GridSpec::parse_inline(
            "backend=micro;alpha=0.65;s=10;scheme=smt-det,smt-prob;q=0,0.5;rounds=20",
        )
        .unwrap();
        let out = run_sweep(&g, 2, None, &BTreeMap::new(), None);
        assert_eq!(out.results.len(), 4);
        for r in &out.results {
            assert_eq!(r.committed_rounds, 20, "{}", r.cell.key());
            if r.cell.q > 0.0 {
                assert_eq!(r.detections, 1, "{}", r.cell.key());
                // the placed state-word fault is caught in its own round
                assert!((r.coverage - 1.0).abs() < 1e-12, "{}", r.cell.key());
                assert_eq!(r.mean_detect_latency, 0.0, "{}", r.cell.key());
            } else {
                assert_eq!(r.detections, 0, "{}", r.cell.key());
                // nothing injected: vacuous full coverage
                assert!((r.coverage - 1.0).abs() < 1e-12, "{}", r.cell.key());
            }
            assert!(r.g_round > 1.0, "SMT beats conventional: {}", r.cell.key());
        }
    }

    #[test]
    fn vm_backend_cells_run_detect_and_beat_the_serial_baseline() {
        let g = GridSpec::parse_inline(
            "backend=vm;program=strhash;alpha=0.65;s=8;scheme=smt-det,smt-prob;q=0,0.5;rounds=24",
        )
        .unwrap();
        let out = run_sweep(&g, 2, None, &BTreeMap::new(), None);
        assert_eq!(out.results.len(), 4);
        for r in &out.results {
            assert_eq!(r.committed_rounds, 24, "{}", r.cell.key());
            assert!(!r.shutdown, "{}", r.cell.key());
            if r.cell.q > 0.0 {
                // one placed live-register flip: all-or-nothing coverage
                // (detected same round, or erased by the register reset)
                assert!(
                    r.coverage == 0.0 || r.coverage == 1.0,
                    "{}: coverage {}",
                    r.cell.key(),
                    r.coverage
                );
                assert_eq!(r.detections > 0, r.coverage == 1.0, "{}", r.cell.key());
            } else {
                assert_eq!(r.detections, 0, "{}", r.cell.key());
            }
            assert!(
                r.g_round > 1.0,
                "co-scheduled variants beat the serial conventional duplex: {} g={}",
                r.cell.key(),
                r.g_round
            );
        }
        // worker invariance holds for the vm backend too
        let again = run_sweep(&g, 7, None, &BTreeMap::new(), None);
        assert_eq!(out.results, again.results);
    }

    #[test]
    fn monitor_stream_converges_to_the_canonical_registry() {
        use vds_fault::campaign::HubMonitor;
        use vds_obs::TelemetryHub;
        let g = small_grid();
        let hub = TelemetryHub::new();
        let monitor = HubMonitor::new(Arc::clone(&hub));
        hub.begin_campaign("sweep", g.cell_count(), g.cell_count());
        let out = run_sweep(&g, 3, Some(&monitor), &BTreeMap::new(), None);
        let live = hub.registry_snapshot();
        assert_eq!(
            live.counter("sweep.cells_done"),
            out.registry.counter("sweep.cells_done")
        );
        assert_eq!(
            live.counter("sweep.detections"),
            out.registry.counter("sweep.detections")
        );
        let progress = hub.progress_json();
        assert!(progress.contains("\"phase\":\"sweep\""), "{progress}");
        assert!(
            progress.contains(&format!("\"trials_done\":{}", g.cell_count())),
            "{progress}"
        );
    }
}
