//! # vds-sweep — deterministic parallel parameter sweeps
//!
//! The paper's results are curves and surfaces over a handful of axes:
//! SMT stretch `α`, checkpoint distance `s`, recovery scheme, fault rate
//! `q`. This crate turns "run the model over a grid of those axes" into
//! one declarative, parallel, **byte-deterministic** operation:
//!
//! 1. [`grid`] — a [`GridSpec`] (inline `alpha=0.55,0.65;s=10,20;...`
//!    syntax or a minimal TOML file) expands into row-major [`Cell`]s,
//!    each with an RNG seed derived from its *coordinates* via
//!    `vds_desim::rng::child_seed`, never from position or scheduling.
//! 2. [`engine`] — [`run_sweep`] executes the cells across worker
//!    threads with a work-stealing cursor; results merge in index order,
//!    the conventional reference behind every `G_round` is memoized per
//!    `(backend, s, q, rounds)`, and a canonical `sweep.*`
//!    [`vds_obs::Registry`] is rebuilt single-threaded at the end.
//! 3. [`export`] — CSV / JSONL heatmap exports of the index-ordered
//!    results, plus a fingerprinted resume journal appended in
//!    completion order so a killed sweep restarts without repeating
//!    finished cells.
//!
//! The determinism contract, stated once and tested in all three
//! modules: **for a fixed grid and base seed, every exported byte is
//! identical for any worker count, with or without a telemetry monitor,
//! and across kill/resume boundaries.** Threads only ever decide *who*
//! computes a cell — never what it contains or where it lands.

pub mod engine;
pub mod export;
pub mod grid;

pub use engine::{run_sweep, CellResult, SweepOutcome};
pub use export::{
    csv_row, journal_header, parse_journal, to_csv, to_jsonl, to_measured_csv, CSV_HEADER,
    MEASURED_CSV_HEADER,
};
pub use grid::{Backend, Cell, GridSpec};
