//! Declarative parameter grids.
//!
//! A [`GridSpec`] names the axes the paper's study varies — SMT stretch
//! `α`, checkpoint distance `s`, recovery scheme, per-round fault rate
//! `q` — plus the backend, mission length and base seed. [`GridSpec::cells`]
//! expands it into the row-major cross product; every [`Cell`] derives its
//! RNG seed from the *coordinates*, never from worker or completion order,
//! which is what makes the whole sweep worker-count invariant (and lets a
//! resumed sweep reuse any previously completed cell verbatim).
//!
//! Two input syntaxes parse to the same spec:
//!
//! * the inline form `alpha=0.55,0.65;s=10,20;scheme=smt-det,smt-prob`
//!   (semicolon-separated `key=v1,v2,...` pairs), and
//! * a minimal TOML file (`key = value` / `key = [v1, v2]`, `#` comments,
//!   quoted strings) — hand-rolled here because the build environment has
//!   no crates.io access.

use vds_core::Scheme;
use vds_desim::rng::child_seed;

/// Which engine executes a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The abstract-timing engine (`vds_core::abstract_vds`): α is a free
    /// model parameter, all six schemes run.
    Abstract,
    /// The cycle-level micro platform (`vds_core::micro_vds`): α emerges
    /// from pipeline contention (the declared α is carried through to the
    /// exports but not consumed), and `smt-boost5` is not available.
    Micro,
    /// The bytecode-VM platform (`vds_core::vm_vds`): a real seed program
    /// runs as two diversified variants, time is counted in interpreted
    /// instructions, and the declared α is carried through but not
    /// consumed (the measured stretch emerges from the variants' step
    /// counts).
    Vm,
}

impl Backend {
    /// Canonical name used in specs and exports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Abstract => "abstract",
            Backend::Micro => "micro",
            Backend::Vm => "vm",
        }
    }

    /// Parse a canonical name.
    pub fn parse(s: &str) -> Result<Backend, String> {
        match s {
            "abstract" => Ok(Backend::Abstract),
            "micro" => Ok(Backend::Micro),
            "vm" => Ok(Backend::Vm),
            other => Err(format!("unknown backend `{other}` (abstract|micro|vm)")),
        }
    }
}

/// A declarative parameter grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// SMT stretch values (abstract backend only; `α ∈ [0.5, 1]`).
    pub alphas: Vec<f64>,
    /// Checkpoint distances.
    pub s_values: Vec<u32>,
    /// Recovery schemes.
    pub schemes: Vec<Scheme>,
    /// Per-round fault probabilities (`0` = fault-free).
    pub qs: Vec<f64>,
    /// Executing engine.
    pub backend: Backend,
    /// Committed rounds per cell.
    pub rounds: u64,
    /// Base seed every per-cell seed derives from.
    pub base_seed: u64,
    /// Seed-program name — consumed by the [`Backend::Vm`] backend only
    /// (see [`vds_vm::SEED_PROGRAMS`]).
    pub program: String,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            alphas: vec![0.65],
            s_values: vec![20],
            schemes: Scheme::ALL.to_vec(),
            qs: vec![0.01],
            backend: Backend::Abstract,
            rounds: 2_000,
            base_seed: 1,
            program: "checksum".to_string(),
        }
    }
}

/// One point of the expanded grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in the row-major expansion (stable across worker counts).
    pub index: u64,
    /// SMT stretch α.
    pub alpha: f64,
    /// Checkpoint distance s.
    pub s: u32,
    /// Recovery scheme.
    pub scheme: Scheme,
    /// Per-round fault probability q.
    pub q: f64,
    /// Executing engine.
    pub backend: Backend,
    /// Committed rounds to run for.
    pub rounds: u64,
    /// Derived RNG seed (see [`Cell::key`]).
    pub seed: u64,
    /// Seed-program name ([`Backend::Vm`] cells only; empty otherwise).
    pub program: String,
}

impl Cell {
    /// Canonical coordinate string. The per-cell seed is
    /// `child_seed(base, key)`, so it depends on *what* the cell is, not
    /// where in the grid (or on which worker) it runs: reordering or
    /// extending the grid never changes an existing cell's results.
    pub fn key(&self) -> String {
        let mut k = format!(
            "a{}|s{}|{}|q{}|{}|r{}",
            self.alpha,
            self.s,
            self.scheme.name(),
            self.q,
            self.backend.name(),
            self.rounds
        );
        // the program axis exists only on the VM backend; keeping it out
        // of every other key preserves historical seeds byte-for-byte
        if self.backend == Backend::Vm {
            k.push('|');
            k.push_str(&self.program);
        }
        k
    }

    /// Coordinates shared by every cell that differs only in scheme/α —
    /// the memoization key for the conventional reference run (G_round's
    /// denominator), which none of those axes affect.
    pub fn baseline_key(&self) -> String {
        let mut k = format!(
            "s{}|q{}|{}|r{}",
            self.s,
            self.q,
            self.backend.name(),
            self.rounds
        );
        if self.backend == Backend::Vm {
            k.push('|');
            k.push_str(&self.program);
        }
        k
    }
}

impl GridSpec {
    /// Validate axis values; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.alphas.is_empty()
            || self.s_values.is_empty()
            || self.schemes.is_empty()
            || self.qs.is_empty()
        {
            return Err("every grid axis needs at least one value".into());
        }
        for &a in &self.alphas {
            if !(0.5..=1.0).contains(&a) {
                return Err(format!("alpha {a} outside [0.5, 1]"));
            }
        }
        for &s in &self.s_values {
            if s == 0 {
                return Err("s must be >= 1".into());
            }
        }
        for &q in &self.qs {
            if !(0.0..1.0).contains(&q) {
                return Err(format!("q {q} outside [0, 1)"));
            }
        }
        if self.rounds == 0 {
            return Err("rounds must be >= 1".into());
        }
        if self.backend == Backend::Micro && self.schemes.contains(&Scheme::SmtBoosted5) {
            return Err("smt-boost5 runs on the abstract backend only".into());
        }
        if self.backend == Backend::Vm && vds_vm::seed_program(&self.program).is_none() {
            let known: Vec<&str> = vds_vm::SEED_PROGRAMS.iter().map(|p| p.name).collect();
            return Err(format!(
                "unknown seed program `{}` (known: {})",
                self.program,
                known.join(", ")
            ));
        }
        Ok(())
    }

    /// Number of cells the expansion produces.
    pub fn cell_count(&self) -> u64 {
        (self.alphas.len() * self.s_values.len() * self.schemes.len() * self.qs.len()) as u64
    }

    /// Row-major expansion: α outermost, then s, scheme, q. The order is
    /// part of the export contract (CSV rows appear in it).
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::with_capacity(self.cell_count() as usize);
        for &alpha in &self.alphas {
            for &s in &self.s_values {
                for &scheme in &self.schemes {
                    for &q in &self.qs {
                        let mut c = Cell {
                            index: out.len() as u64,
                            alpha,
                            s,
                            scheme,
                            q,
                            backend: self.backend,
                            rounds: self.rounds,
                            seed: 0,
                            program: if self.backend == Backend::Vm {
                                self.program.clone()
                            } else {
                                String::new()
                            },
                        };
                        c.seed = child_seed(self.base_seed, &c.key());
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Canonical one-line rendering (also the inline-spec syntax), used
    /// to fingerprint a sweep journal against the grid it belongs to.
    pub fn canonical(&self) -> String {
        let join_f = |v: &[f64]| v.iter().map(f64::to_string).collect::<Vec<_>>().join(",");
        let mut out = format!(
            "alpha={};s={};scheme={};q={};backend={};rounds={};seed={}",
            join_f(&self.alphas),
            self.s_values
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(","),
            self.schemes
                .iter()
                .map(|s| s.name().to_string())
                .collect::<Vec<_>>()
                .join(","),
            join_f(&self.qs),
            self.backend.name(),
            self.rounds,
            self.base_seed
        );
        // only VM grids carry the axis, so pre-VM journals fingerprint
        // identically under old and new builds
        if self.backend == Backend::Vm {
            out.push_str(";program=");
            out.push_str(&self.program);
        }
        out
    }

    /// Parse either syntax: a path to an existing file is read as TOML,
    /// anything else as the inline `key=v,v;key=v` form.
    pub fn parse_arg(arg: &str) -> Result<GridSpec, String> {
        if std::path::Path::new(arg).is_file() {
            let text = std::fs::read_to_string(arg)
                .map_err(|e| format!("cannot read grid file `{arg}`: {e}"))?;
            Self::parse_toml(&text)
        } else {
            Self::parse_inline(arg)
        }
    }

    /// Parse the inline `alpha=0.55,0.65;s=10,20;...` form. Unset keys
    /// keep their [`GridSpec::default`] values.
    pub fn parse_inline(spec: &str) -> Result<GridSpec, String> {
        let mut g = GridSpec::default();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, vals) = part
                .split_once('=')
                .ok_or_else(|| format!("grid term `{part}` is not key=value"))?;
            let vals: Vec<&str> = vals.split(',').map(str::trim).collect();
            g.apply(key.trim(), &vals)?;
        }
        g.validate()?;
        Ok(g)
    }

    /// Parse the minimal TOML subset: `key = value` and
    /// `key = [v1, v2]`, `#` comments, optional quotes around strings.
    /// Section headers are rejected — a grid file is flat by design.
    pub fn parse_toml(text: &str) -> Result<GridSpec, String> {
        let mut g = GridSpec::default();
        for (ln, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {}: sections are not supported", ln + 1));
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", ln + 1))?;
            let val = val.trim();
            let vals: Vec<String> =
                if let Some(inner) = val.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
                    inner
                        .split(',')
                        .map(|v| unquote(v.trim()))
                        .filter(|v| !v.is_empty())
                        .collect()
                } else {
                    vec![unquote(val)]
                };
            let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
            g.apply(key.trim(), &refs)
                .map_err(|e| format!("line {}: {e}", ln + 1))?;
        }
        g.validate()?;
        Ok(g)
    }

    fn apply(&mut self, key: &str, vals: &[&str]) -> Result<(), String> {
        let one = || -> Result<&str, String> {
            if vals.len() == 1 {
                Ok(vals[0])
            } else {
                Err(format!("`{key}` takes a single value"))
            }
        };
        match key {
            "alpha" => self.alphas = parse_list(vals, "alpha")?,
            "s" => self.s_values = parse_list(vals, "s")?,
            "q" => self.qs = parse_list(vals, "q")?,
            "scheme" => {
                self.schemes = vals
                    .iter()
                    .map(|v| {
                        Scheme::ALL
                            .iter()
                            .copied()
                            .find(|s| s.name() == *v)
                            .ok_or_else(|| format!("unknown scheme `{v}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "backend" => self.backend = Backend::parse(one()?)?,
            "rounds" => self.rounds = parse_one(one()?, "rounds")?,
            "seed" => self.base_seed = parse_one(one()?, "seed")?,
            "program" => self.program = one()?.to_string(),
            other => {
                return Err(format!(
                    "unknown grid key `{other}` \
                     (known: alpha, s, scheme, q, backend, rounds, seed, program)"
                ))
            }
        }
        Ok(())
    }
}

fn parse_list<T: std::str::FromStr>(vals: &[&str], what: &str) -> Result<Vec<T>, String> {
    vals.iter()
        .map(|v| v.parse().map_err(|_| format!("bad {what} value `{v}`")))
        .collect()
}

fn parse_one<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad {what} value `{v}`"))
}

/// Drop a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(v: &str) -> String {
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .unwrap_or(v)
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_expands_all_schemes() {
        let g = GridSpec::default();
        assert_eq!(g.cell_count(), 6);
        let cells = g.cells();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].index, 0);
        assert_eq!(cells[0].scheme, Scheme::Conventional);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn inline_spec_round_trips_through_canonical() {
        let g = GridSpec::parse_inline(
            "alpha=0.55,0.65;s=10,20;scheme=smt-det,smt-prob;q=0.01,0.05;rounds=500;seed=7",
        )
        .unwrap();
        assert_eq!(g.cell_count(), 2 * 2 * 2 * 2);
        let again = GridSpec::parse_inline(&g.canonical()).unwrap();
        assert_eq!(g, again);
    }

    #[test]
    fn seeds_depend_on_coordinates_not_position() {
        let small = GridSpec::parse_inline("alpha=0.65;s=20;scheme=smt-det;q=0.01").unwrap();
        let big =
            GridSpec::parse_inline("alpha=0.55,0.65;s=10,20;scheme=conventional,smt-det;q=0.01")
                .unwrap();
        let target = small.cells().remove(0);
        let same = big
            .cells()
            .into_iter()
            .find(|c| c.key() == target.key())
            .expect("shared cell present");
        assert_eq!(same.seed, target.seed, "seed moved with grid shape");
        assert_ne!(same.index, target.index);
    }

    #[test]
    fn toml_subset_parses_with_comments_and_arrays() {
        let g = GridSpec::parse_toml(
            r##"
            # the acceptance grid
            alpha = [0.55, 0.65, 0.75]   # SMT stretch
            s = [10, 20]
            scheme = ["smt-det", "smt-prob"]
            q = [0.01]
            backend = "abstract"
            rounds = 400
            seed = 42
            "##,
        )
        .unwrap();
        assert_eq!(g.cell_count(), 3 * 2 * 2);
        assert_eq!(g.rounds, 400);
        assert_eq!(g.base_seed, 42);
        assert_eq!(g.backend, Backend::Abstract);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(GridSpec::parse_inline("alpha=0.3").is_err(), "alpha range");
        assert!(GridSpec::parse_inline("q=1.5").is_err(), "q range");
        assert!(GridSpec::parse_inline("s=0").is_err(), "s zero");
        assert!(GridSpec::parse_inline("frobs=1").is_err(), "unknown key");
        assert!(GridSpec::parse_inline("scheme=bogus").is_err());
        assert!(GridSpec::parse_inline("backend=quantum").is_err());
        assert!(
            GridSpec::parse_inline("backend=micro;scheme=smt-boost5").is_err(),
            "boost5 is abstract-only"
        );
        assert!(GridSpec::parse_toml("[section]\nalpha = 0.6").is_err());
        assert!(GridSpec::parse_toml("alpha 0.6").is_err());
    }

    #[test]
    fn vm_backend_carries_the_program_axis() {
        let g =
            GridSpec::parse_inline("backend=vm;program=matmul;scheme=smt-det;rounds=50").unwrap();
        assert_eq!(g.backend, Backend::Vm);
        assert_eq!(g.program, "matmul");
        let cells = g.cells();
        assert_eq!(cells[0].program, "matmul");
        assert!(cells[0].key().ends_with("|matmul"));
        assert!(cells[0].baseline_key().ends_with("|matmul"));
        assert!(g.canonical().ends_with(";program=matmul"));
        let again = GridSpec::parse_inline(&g.canonical()).unwrap();
        assert_eq!(g, again);
        // programs are distinct coordinates: same grid shape, different seeds
        let other =
            GridSpec::parse_inline("backend=vm;program=sort;scheme=smt-det;rounds=50").unwrap();
        assert_ne!(cells[0].seed, other.cells()[0].seed);
    }

    #[test]
    fn non_vm_grids_ignore_program_in_keys_and_canonical() {
        let g = GridSpec::default();
        let cells = g.cells();
        assert_eq!(cells[0].program, "");
        assert!(!cells[0].key().contains("checksum"));
        assert!(!g.canonical().contains("program="));
    }

    #[test]
    fn vm_backend_rejects_unknown_program() {
        let err = GridSpec::parse_inline("backend=vm;program=quine").unwrap_err();
        assert!(err.contains("unknown seed program"), "{err}");
        assert!(err.contains("checksum"), "{err}");
        // the program value is only validated on the vm backend
        assert!(GridSpec::parse_inline("program=quine").is_ok());
    }

    #[test]
    fn comment_stripping_respects_strings() {
        assert_eq!(strip_comment("a = 1 # note"), "a = 1 ");
        assert_eq!(strip_comment(r##"a = "#x""##), r##"a = "#x""##);
    }
}
