//! `vds sweep` — the deterministic parallel parameter sweep.
//!
//! ```text
//! vds sweep --grid "alpha=0.55,0.65,0.75;s=10,20;scheme=smt-det,smt-prob;q=0.01"
//!           [--workers N] [--out PATH] [--json] [--resume PATH]
//!           [--metrics PATH] [--addr HOST --port N [--port-file PATH]]
//! ```
//!
//! `--grid` takes the inline axis syntax or a path to a TOML grid file
//! (omitted: the default single-point grid over all six schemes).
//! `--out PATH` writes the heatmap CSV to `PATH` and the JSONL twin to
//! `PATH.jsonl`, both atomically and byte-identical for any worker
//! count. `--json` prints the JSONL rows on stdout instead of the
//! summary table. `--resume PATH` keeps a crash-tolerant journal: cells
//! append as they finish, and a re-run against the same grid skips every
//! cell already journaled. `--port` serves `/metrics` and `/progress`
//! live while the sweep runs (same hub as `vds serve`), shutting down
//! when the sweep completes.

use crate::{write_atomic, write_metrics, CliError};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Arc, Mutex};
use vds_fault::campaign::{CampaignMonitor, HubMonitor};
use vds_obs::{log_info, TelemetryHub, TelemetryServer};
use vds_sweep::export::{csv_row, journal_header, parse_journal, to_csv, to_jsonl};
use vds_sweep::{run_sweep, CellResult, GridSpec, SweepOutcome};

pub(crate) fn cmd_sweep(args: &[String]) -> Result<String, CliError> {
    let f = crate::args::SWEEP.parse(args)?;
    if f.help {
        return Ok(crate::args::SWEEP.help());
    }
    if !f.positional.is_empty() {
        return Err(CliError::usage(
            "sweep: unexpected positional arguments (axes go in --grid)",
        ));
    }
    let mut spec = match &f.grid {
        Some(arg) => {
            GridSpec::parse_arg(arg).map_err(|e| CliError::usage(format!("--grid: {e}")))?
        }
        None => GridSpec::default(),
    };
    // --rounds / --seed override the grid's own values, like everywhere else
    if let Some(r) = f.rounds {
        spec.rounds = r;
    }
    if let Some(s) = f.seed {
        spec.base_seed = s;
    }
    // --workload vm:<program> swaps the whole grid onto the bytecode-VM
    // backend; validate() below rejects unknown program names
    if let Some(w) = &f.workload {
        let name = w.strip_prefix("vm:").ok_or_else(|| {
            CliError::usage(format!(
                "--workload: `{w}` is not a workload (vm:<program>, e.g. vm:checksum)"
            ))
        })?;
        spec.backend = vds_sweep::Backend::Vm;
        spec.program = name.to_string();
    }
    spec.validate()
        .map_err(|e| CliError::usage(format!("--grid: {e}")))?;
    let workers = f
        .workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));

    // resume journal: recover completed cells, then rewrite the file
    // clean (header + recovered rows) so a torn tail never accumulates
    let resumed: BTreeMap<u64, CellResult> = match &f.resume {
        Some(path) if std::path::Path::new(path).is_file() => {
            let text = crate::read_file(path)?;
            parse_journal(&text, &spec)
                .map_err(|e| CliError::runtime(format!("--resume `{path}`: {e}")))?
        }
        _ => BTreeMap::new(),
    };
    let journal_sink: Option<Mutex<std::fs::File>> = match &f.resume {
        Some(path) => {
            // publish the cleaned journal (header + recovered rows)
            // atomically, then reopen it in append mode for fresh rows: a
            // kill during the rewrite can no longer destroy the cells a
            // previous run already journaled
            let mut clean = journal_header(&spec);
            for r in resumed.values() {
                clean.push_str(&csv_row(r));
                clean.push('\n');
            }
            write_atomic(path, clean.as_bytes())
                .map_err(|e| CliError::runtime(format!("cannot write `{path}`: {e}")))?;
            let file = std::fs::OpenOptions::new()
                .append(true)
                .open(path)
                .map_err(|e| CliError::runtime(format!("cannot write `{path}`: {e}")))?;
            Some(Mutex::new(file))
        }
        None => None,
    };
    let append_row = journal_sink.as_ref().map(|m| {
        move |r: &CellResult| {
            let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
            // flush per row: the journal's whole point is surviving a kill
            let _ = writeln!(g, "{}", csv_row(r));
            let _ = g.flush();
        }
    });
    let on_cell: Option<&(dyn Fn(&CellResult) + Sync)> = append_row
        .as_ref()
        .map(|w| w as &(dyn Fn(&CellResult) + Sync));

    // optional live telemetry while the sweep runs
    let served = match f.port {
        Some(port) => {
            let addr = format!("{}:{port}", f.addr.as_deref().unwrap_or("127.0.0.1"));
            let hub = TelemetryHub::new();
            let server = TelemetryServer::bind(&addr, Arc::clone(&hub))
                .map_err(|e| CliError::runtime(format!("cannot bind `{addr}`: {e}")))?;
            if let Some(path) = &f.port_file {
                std::fs::write(path, format!("{}\n", server.local_addr().port()))
                    .map_err(|e| CliError::runtime(format!("cannot write `{path}`: {e}")))?;
            }
            hub.begin_campaign("sweep", spec.cell_count(), spec.cell_count());
            hub.mark_ready();
            log_info!(
                "sweep",
                "serving http://{} while the sweep runs — /metrics /progress",
                server.local_addr()
            );
            Some((hub, server))
        }
        None => None,
    };
    let monitor = served
        .as_ref()
        .map(|(hub, _)| HubMonitor::new(Arc::clone(hub)));

    let started = std::time::Instant::now();
    let outcome = run_sweep(
        &spec,
        workers,
        monitor.as_ref().map(|m| m as &dyn CampaignMonitor),
        &resumed,
        on_cell,
    );
    let host_secs = started.elapsed().as_secs_f64();

    if let Some((hub, server)) = served {
        // swap the completion-ordered live view for the canonical
        // index-ordered registry, then shut down: the sweep is the product
        hub.replace_registry(outcome.registry.clone());
        hub.mark_done();
        server.shutdown();
    }

    let mut out = if f.json {
        to_jsonl(&outcome.results)
    } else {
        summary(&spec, &outcome, workers, host_secs)
    };
    if let Some(path) = &f.out {
        write_atomic(path, to_csv(&outcome.results).as_bytes())
            .map_err(|e| CliError::runtime(format!("cannot write `{path}`: {e}")))?;
        let jpath = format!("{path}.jsonl");
        write_atomic(&jpath, to_jsonl(&outcome.results).as_bytes())
            .map_err(|e| CliError::runtime(format!("cannot write `{jpath}`: {e}")))?;
        let note = format!("sweep CSV written to {path} (+ {jpath})\n");
        if f.json {
            log_info!("sweep", "{}", note.trim_end());
        } else {
            out.push_str(&note);
        }
    }
    if let Some(path) = &f.metrics {
        let note = write_metrics(path, &outcome.registry, None, None)?;
        if f.json {
            log_info!("sweep", "{}", note.trim_end());
        } else {
            out.push_str(&note);
        }
    }
    Ok(out)
}

/// Human summary: one aggregate row per scheme (index order preserves the
/// grid's scheme order), G_round and availability as means over the
/// scheme's cells, hit rate pooled over all its roll-forward windows.
fn summary(spec: &GridSpec, o: &SweepOutcome, workers: usize, host_secs: f64) -> String {
    let mut out = format!(
        "vds sweep — {} cells ({} backend), {} workers\n  grid {}\n  \
         {} resumed, {} baseline memo hits, {:.2}s host\n\n",
        o.results.len(),
        spec.backend.name(),
        workers,
        spec.canonical(),
        o.resumed,
        o.baseline_memo_hits,
        host_secs
    );
    let _ = writeln!(
        out,
        "{:<14} {:>5} {:>12} {:>11} {:>12}",
        "scheme", "cells", "mean G_round", "mean avail", "rf hit rate"
    );
    let mut order: Vec<&str> = Vec::new();
    let mut agg: BTreeMap<&str, (u64, f64, f64, u64, u64)> = BTreeMap::new();
    for r in &o.results {
        let name = r.cell.scheme.name();
        if !agg.contains_key(name) {
            order.push(name);
        }
        let e = agg.entry(name).or_default();
        e.0 += 1;
        e.1 += r.g_round;
        e.2 += r.availability;
        e.3 += r.rf_hits;
        e.4 += r.rf_hits + r.rf_misses + r.rf_discards;
    }
    for name in order {
        let (n, g, a, hits, attempts) = agg[name];
        let hit_rate = if attempts > 0 {
            format!("{:.3}", hits as f64 / attempts as f64)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "{:<14} {:>5} {:>12.4} {:>11.4} {:>12}",
            name,
            n,
            g / n as f64,
            a / n as f64,
            hit_rate
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        crate::dispatch(&v)
    }

    const GRID: &str =
        "alpha=0.55,0.75;s=10,20;scheme=conventional,smt-det,smt-prob;q=0,0.02;rounds=150";

    #[test]
    fn sweep_summary_table_lists_every_scheme() {
        let out = run(&["sweep", "--grid", GRID, "--workers", "2"]).unwrap();
        assert!(out.contains("24 cells"), "{out}");
        for scheme in ["conventional", "smt-det", "smt-prob"] {
            assert!(out.contains(scheme), "{out}");
        }
        assert!(out.contains("baseline memo hits"), "{out}");
    }

    #[test]
    fn sweep_exports_are_byte_identical_across_worker_counts() {
        let dir = std::env::temp_dir().join("vds-cli-sweep-det");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("w1.csv");
        let p8 = dir.join("w8.csv");
        run(&[
            "sweep",
            "--grid",
            GRID,
            "--workers",
            "1",
            "--out",
            p1.to_str().unwrap(),
        ])
        .unwrap();
        run(&[
            "sweep",
            "--grid",
            GRID,
            "--workers",
            "8",
            "--out",
            p8.to_str().unwrap(),
        ])
        .unwrap();
        let csv1 = std::fs::read_to_string(&p1).unwrap();
        let csv8 = std::fs::read_to_string(&p8).unwrap();
        assert_eq!(csv1, csv8, "CSV must not depend on worker count");
        assert!(csv1.starts_with(vds_sweep::CSV_HEADER), "{csv1}");
        let j1 = std::fs::read_to_string(dir.join("w1.csv.jsonl")).unwrap();
        let j8 = std::fs::read_to_string(dir.join("w8.csv.jsonl")).unwrap();
        assert_eq!(j1, j8, "JSONL must not depend on worker count");
        // no stray temp files left behind by the atomic writes
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn sweep_json_prints_one_object_per_cell() {
        let out = run(&[
            "sweep",
            "--grid",
            "alpha=0.65;scheme=smt-det,smt-prob;rounds=100",
            "--json",
        ])
        .unwrap();
        assert_eq!(out.lines().count(), 2, "{out}");
        assert!(out.lines().all(|l| l.starts_with("{\"index\":")), "{out}");
        assert!(out.contains("\"g_round\":"), "{out}");
    }

    #[test]
    fn sweep_resume_skips_journaled_cells_and_matches_a_cold_run() {
        let dir = std::env::temp_dir().join("vds-cli-sweep-resume");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("sweep.journal");
        let jp = journal.to_str().unwrap();
        let cold = dir.join("cold.csv");
        run(&["sweep", "--grid", GRID, "--out", cold.to_str().unwrap()]).unwrap();

        // first pass journals everything
        run(&["sweep", "--grid", GRID, "--resume", jp]).unwrap();
        let text = std::fs::read_to_string(&journal).unwrap();
        assert!(text.starts_with("#vds-sweep-journal v4 grid="), "{text}");
        assert_eq!(text.lines().count(), 24 + 1, "{text}");

        // truncate to half the cells + a torn tail, as a kill would leave
        let keep: Vec<&str> = text.lines().take(13).collect();
        std::fs::write(&journal, format!("{}\n5,abstract,smt", keep.join("\n"))).unwrap();
        let out = run(&[
            "sweep",
            "--grid",
            GRID,
            "--resume",
            jp,
            "--out",
            dir.join("resumed.csv").to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("12 resumed"), "{out}");
        // the resumed export is byte-identical to the cold run's
        assert_eq!(
            std::fs::read_to_string(dir.join("resumed.csv")).unwrap(),
            std::fs::read_to_string(&cold).unwrap()
        );
        // and the journal is clean and complete again
        let text = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(text.lines().count(), 24 + 1, "{text}");

        // a journal from a different grid is refused
        let e = run(&["sweep", "--grid", "alpha=0.6;rounds=50", "--resume", jp]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.msg.contains("different grid"), "{}", e.msg);
    }

    #[test]
    fn sweep_workload_flag_moves_the_grid_onto_the_vm_backend() {
        let out = run(&[
            "sweep",
            "--grid",
            "scheme=smt-det,smt-prob;q=0,0.5;rounds=16",
            "--workload",
            "vm:strhash",
            "--workers",
            "2",
        ])
        .unwrap();
        assert!(out.contains("vm backend"), "{out}");
        assert!(out.contains("program=strhash"), "{out}");
        let e = run(&["sweep", "--workload", "vm:bogus"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.msg.contains("unknown seed program"), "{}", e.msg);
        let e = run(&["sweep", "--workload", "abstract"]).unwrap_err();
        assert!(e.msg.contains("vm:<program>"), "{}", e.msg);
    }

    #[test]
    fn sweep_rejects_bad_grids_and_positionals() {
        assert!(run(&["sweep", "stray"]).is_err());
        assert!(run(&["sweep", "--grid", "alpha=0.2"]).is_err());
        assert!(run(&["sweep", "--grid", "frobs=1"]).is_err());
        // --rounds overrides reach validation too
        let e = run(&["sweep", "--grid", "alpha=0.65", "--rounds", "0"]).unwrap_err();
        assert_eq!(e.code, 2);
    }

    #[test]
    fn sweep_grid_toml_file_and_rounds_override() {
        let dir = std::env::temp_dir().join("vds-cli-sweep-toml");
        std::fs::create_dir_all(&dir).unwrap();
        let grid = dir.join("grid.toml");
        std::fs::write(
            &grid,
            "alpha = [0.6, 0.7]\nscheme = [\"smt-det\"]\nq = [0.01]\nrounds = 5000\n",
        )
        .unwrap();
        let out = run(&["sweep", "--grid", grid.to_str().unwrap(), "--rounds", "100"]).unwrap();
        assert!(out.contains("2 cells"), "{out}");
        assert!(out.contains("rounds=100"), "--rounds override: {out}");
    }

    #[test]
    fn sweep_serves_progress_while_running() {
        let dir = std::env::temp_dir().join("vds-cli-sweep-serve");
        std::fs::create_dir_all(&dir).unwrap();
        let pf = dir.join("port");
        // ephemeral port; the server answers during the run and the
        // canonical registry lands in --metrics afterwards
        let metrics = dir.join("sweep-metrics.csv");
        let out = run(&[
            "sweep",
            "--grid",
            "alpha=0.65;scheme=smt-det;rounds=50",
            "--port",
            "0",
            "--port-file",
            pf.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("1 cells"), "{out}");
        assert!(pf.is_file(), "port file written");
        let csv = std::fs::read_to_string(&metrics).unwrap();
        assert!(csv.contains("counter,sweep.cells_done,value,1"), "{csv}");
    }
}
