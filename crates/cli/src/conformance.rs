//! `vds conformance` — predicted-vs-measured G residuals over a journal.
//!
//! Prices every recorded round with the paper's closed forms (via
//! `vds-obs`'s [`ConformanceTracker`]) and prints the windowed residual
//! report: mean / p50 / p99 residual, the fraction of windows outside
//! the tolerance band, and the worst window with its round range. The
//! input is either a journal file written by `--journal` (any backend —
//! micro duplex runs, serve campaigns, abstract runs) or the literal
//! word `live`, which fetches `/journal` from a running `vds serve`.
//!
//! The report depends only on the journal bytes, so it is identical for
//! any worker count that produced the recording — the same determinism
//! contract the journal itself carries.
//!
//! `--alpha measured` reprices the closed forms at the α the attribution
//! ledger actually measures on the micro core (the mean over the kernel
//! suite's pairwise ledgers) instead of the journal header's parametric
//! α. The measured gain side is untouched, so the residual shift shows
//! how much model error the parametric α was responsible for.

use crate::{read_file, CliError};
use std::io::{Read as _, Write as _};
use vds_obs::conformance::{DEFAULT_TOLERANCE, DEFAULT_WINDOW};
use vds_obs::ConformanceTracker;

pub(crate) fn cmd_conformance(args: &[String]) -> Result<String, CliError> {
    let f = crate::args::CONFORMANCE.parse(args)?;
    if f.help {
        return Ok(crate::args::CONFORMANCE.help());
    }
    let source = f
        .positional
        .first()
        .ok_or_else(|| CliError::usage("conformance: missing journal (a path, or `live`)"))?;
    if f.positional.len() > 1 {
        return Err(CliError::usage("conformance: too many arguments"));
    }
    let window = f.window.unwrap_or(DEFAULT_WINDOW);
    let tolerance = f.tolerance.unwrap_or(DEFAULT_TOLERANCE);
    let text = if source == "live" {
        let addr = format!(
            "{}:{}",
            f.addr.as_deref().unwrap_or("127.0.0.1"),
            f.port.unwrap_or(9898)
        );
        fetch_live_journal(&addr)?
    } else {
        read_file(source)?
    };
    let journal = crate::parse_journal_tolerant(source, &text)?;
    if journal.header().is_none() {
        return Err(CliError::runtime(format!(
            "`{source}` has no journal header (missing or truncated?)"
        )));
    }
    let measured_alpha = match f.alpha_mode.as_deref() {
        Some("measured") => {
            let (alpha, _) =
                vds_smtsim::alpha::measured_alpha(&vds_smtsim::core::CoreConfig::default(), 2)
                    .map_err(|e| {
                        CliError::runtime(format!("conformance: --alpha measured: {e}"))
                    })?;
            Some(alpha)
        }
        _ => None,
    };
    let tracker =
        ConformanceTracker::for_journal_with_alpha(&journal, window, tolerance, measured_alpha)
            .map_err(CliError::runtime)?;
    let report = tracker.report();
    if f.json {
        let mut out = report.to_json();
        out.push('\n');
        Ok(out)
    } else {
        Ok(report.render_text())
    }
}

/// Fetch `/journal` from a running `vds serve` with a minimal HTTP/1.0
/// GET over a raw [`std::net::TcpStream`] — no client dependency, same
/// zero-dependency stance as the server side. Shared with `vds faults`,
/// which prices the same journal bytes.
pub(crate) fn fetch_live_journal(addr: &str) -> Result<String, CliError> {
    let err = |e: std::io::Error| {
        CliError::runtime(format!(
            "cannot fetch journal from http://{addr}/journal: {e} (is `vds serve` running?)"
        ))
    };
    let mut stream = std::net::TcpStream::connect(addr).map_err(err)?;
    stream
        .write_all(format!("GET /journal HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(err)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(err)?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(CliError::runtime(format!(
            "malformed HTTP response from http://{addr}/journal"
        )));
    };
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(CliError::runtime(format!(
            "http://{addr}/journal answered `{status}` — \
             was the campaign recorded with a journal?"
        )));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use crate::{dispatch, CliError};

    fn run(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vds-cli-conformance");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn conformance_reports_over_a_recorded_duplex_journal() {
        let p = tmp("duplex.journal.jsonl");
        let ps = p.to_str().unwrap();
        run(&["duplex", "smt-det", "24", "4", "--journal", ps]).unwrap();
        let out = run(&["conformance", ps, "--window", "4"]).unwrap();
        assert!(out.contains("conformance: scheme smt-det"), "{out}");
        assert!(out.contains("residual: mean"), "{out}");
        // the same journal, priced twice, renders byte-identically
        let again = run(&["conformance", ps, "--window", "4"]).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn conformance_json_is_a_schema_versioned_report() {
        let p = tmp("json.journal.jsonl");
        let ps = p.to_str().unwrap();
        run(&["duplex", "smt-prob", "24", "--journal", ps]).unwrap();
        let out = run(&["conformance", ps, "--json"]).unwrap();
        assert!(
            out.starts_with("{\"schema\":\"vds.report.v1\",\"kind\":\"conformance\""),
            "{out}"
        );
        assert!(out.contains("\"scheme\":\"smt-prob\""), "{out}");
        assert!(out.contains("\"mean_abs_residual\":"), "{out}");
    }

    #[test]
    fn conformance_accepts_a_header_only_journal_as_zero_samples() {
        // a valid journal whose run recorded no rounds: header line only.
        // zero complete windows is a report, not an error (exit 0).
        let p = tmp("header-only.jsonl");
        let header =
            vds_obs::Journal::enabled(vds_obs::JournalHeader::new("micro", "smt-det", 7, 10, 0))
                .to_jsonl();
        assert_eq!(header.lines().count(), 1);
        std::fs::write(&p, &header).unwrap();
        let ps = p.to_str().unwrap();
        let out = run(&["conformance", ps]).unwrap();
        assert!(out.contains("0 windows"), "{out}");
        assert!(out.contains("no complete windows"), "{out}");
        let json = run(&["conformance", ps, "--json"]).unwrap();
        assert!(json.contains("\"windows\":0"), "{json}");
    }

    #[test]
    fn conformance_alpha_measured_reprices_the_model() {
        let p = tmp("alpha-mode.journal.jsonl");
        let ps = p.to_str().unwrap();
        run(&["duplex", "smt-det", "24", "4", "--journal", ps]).unwrap();
        let parametric = run(&["conformance", ps, "--alpha", "parametric"]).unwrap();
        assert!(parametric.contains("(parametric)"), "{parametric}");
        let measured = run(&["conformance", ps, "--alpha", "measured"]).unwrap();
        assert!(measured.contains("(measured)"), "{measured}");
        // the measured pricing is deterministic: two invocations agree
        let again = run(&["conformance", ps, "--alpha", "measured"]).unwrap();
        assert_eq!(measured, again);
        let json = run(&["conformance", ps, "--alpha", "measured", "--json"]).unwrap();
        assert!(json.contains("\"alpha_source\":\"measured\""), "{json}");
        // an invalid mode is a usage error
        let e = run(&["conformance", ps, "--alpha", "bogus"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.msg.contains("measured|parametric"), "{}", e.msg);
    }

    #[test]
    fn conformance_rejects_headerless_and_missing_inputs() {
        let bare = tmp("no-header.jsonl");
        std::fs::write(&bare, "").unwrap();
        let bs = bare.to_str().unwrap();
        let e = run(&["conformance", bs]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.msg.contains("no journal header"), "{}", e.msg);
        let e = run(&["conformance", "/nonexistent/x.jsonl"]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.msg.contains("cannot read"), "{}", e.msg);
        assert_eq!(run(&["conformance"]).unwrap_err().code, 2);
        assert_eq!(run(&["conformance", bs, "extra"]).unwrap_err().code, 2);
        assert_eq!(
            run(&["conformance", bs, "--window", "0"]).unwrap_err().code,
            2
        );
        assert_eq!(
            run(&["conformance", bs, "--tolerance", "-1"])
                .unwrap_err()
                .code,
            2
        );
    }
}
