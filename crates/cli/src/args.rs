//! Spec-driven argument parsing shared by every `vds` subcommand.
//!
//! Each subcommand declares a [`CommandSpec`]: its usage line, a one-line
//! summary, and the exact set of flags it accepts. Parsing, `--help`
//! rendering and error wording all come from the spec, so every command
//! reports problems the same way:
//!
//! * `` <cmd>: unknown flag `--x` (known: …; see `vds <cmd> --help`) ``
//! * `` <cmd>: `--flag` needs a value ``
//! * `` <cmd>: `--flag` takes no value ``
//!
//! Both `--flag value` and `--flag=value` spellings are accepted, flags
//! and positionals can be interleaved, and `--help` is recognised by
//! every command. A flag a command does not declare is an error — `vds
//! duplex --port 80` no longer parses silently.

use crate::{parse_num, CliError, Flags};
use std::fmt::Write as _;

/// One flag a command accepts.
pub(crate) struct FlagSpec {
    /// Flag name without the leading `--`.
    name: &'static str,
    /// Value placeholder (`"N"`, `"PATH"`, …); `None` marks a boolean.
    value: Option<&'static str>,
    /// One-line help text.
    help: &'static str,
}

const fn flag(name: &'static str, value: Option<&'static str>, help: &'static str) -> FlagSpec {
    FlagSpec { name, value, help }
}

const ROUNDS: FlagSpec = flag("rounds", Some("N"), "size knob: rounds, trials or samples");
const SEED: FlagSpec = flag("seed", Some("N"), "seed override for seeded runs");
const WORKERS: FlagSpec = flag("workers", Some("N"), "worker threads (default: all cores)");
const METRICS: FlagSpec = flag(
    "metrics",
    Some("PATH"),
    "write metrics CSV to PATH (+ PATH.trace.jsonl / PATH.trace.json when recorded)",
);
const TRACE_CAPACITY: FlagSpec = flag(
    "trace-capacity",
    Some("N"),
    "resize the bounded trace and span rings",
);
const JOURNAL: FlagSpec = flag(
    "journal",
    Some("PATH"),
    "write the flight-recorder round journal (JSONL) to PATH",
);
const JSON: FlagSpec = flag("json", None, "machine-readable JSON on stdout");
const LOG_LEVEL: FlagSpec = flag(
    "log-level",
    Some("LEVEL"),
    "off|error|warn|info|debug (default info; also VDS_LOG)",
);
const OUT: FlagSpec = flag(
    "out",
    Some("PATH"),
    "write the report/export to PATH instead of the default",
);
const CHECK: FlagSpec = flag(
    "check",
    Some("PATH"),
    "compare against a baseline report; exit 1 on drift",
);
const THRESHOLD: FlagSpec = flag(
    "threshold",
    Some("FRAC"),
    "allowed relative throughput drop for --check (default 0.5, e.g. 0.15)",
);
const ADDR: FlagSpec = flag("addr", Some("HOST"), "bind address (default 127.0.0.1)");
const PORT: FlagSpec = flag("port", Some("N"), "TCP port (0 = ephemeral)");
const PORT_FILE: FlagSpec = flag(
    "port-file",
    Some("PATH"),
    "write the bound port to PATH once listening",
);
const TRIALS: FlagSpec = flag("trials", Some("N"), "campaign trials (default 200)");
const ONCE: FlagSpec = flag(
    "once",
    None,
    "exit after the campaign instead of waiting for Ctrl-C",
);
const GRID: FlagSpec = flag(
    "grid",
    Some("SPEC|FILE"),
    "inline axes (alpha=0.55,0.65;s=10,20;scheme=smt-det;q=0.01) or a TOML file",
);
const RESUME: FlagSpec = flag(
    "resume",
    Some("PATH"),
    "append completed cells to a journal at PATH; re-runs skip journaled cells",
);
const WINDOW: FlagSpec = flag(
    "window",
    Some("N"),
    "rounds per residual window (default 8)",
);
const TOLERANCE: FlagSpec = flag(
    "tolerance",
    Some("F"),
    "|residual| bound a window must stay within (default 0.25)",
);
const SCHEME: FlagSpec = flag(
    "scheme",
    Some("NAME"),
    "campaign recovery scheme (default smt-prob; smt-boost5 is abstract-only)",
);
const ALPHA_MODE: FlagSpec = flag(
    "alpha",
    Some("MODE"),
    "price the model at the measured or parametric α (measured|parametric)",
);
const WORKLOAD: FlagSpec = flag(
    "workload",
    Some("KIND"),
    "run against a bytecode-VM seed program (vm:checksum|sort|matmul|strhash)",
);
const FAULT: FlagSpec = flag(
    "fault",
    Some("SPEC"),
    "VM fault site vm:reg:<i>:<b> | vm:pc:<b> | vm:lit:<i>:<b> | vm:mem:<a>:<b>, optional @v1/@v2 victim suffix",
);

/// A subcommand's argument contract.
pub(crate) struct CommandSpec {
    /// Subcommand name as typed, e.g. `"duplex"`.
    name: &'static str,
    /// Usage line, e.g. `"vds duplex <scheme> [rounds] [at]"`.
    usage: &'static str,
    /// One-line summary for `--help`.
    about: &'static str,
    /// Every flag this command accepts.
    flags: &'static [FlagSpec],
}

pub(crate) const ALPHA: CommandSpec = CommandSpec {
    name: "alpha",
    usage: "vds alpha [rounds|program.s]",
    about: "per-cycle α-attribution ledger over the kernel suite (or one program)",
    flags: &[ROUNDS, WORKERS, METRICS, JSON, LOG_LEVEL],
};

const DUPLEX_FLAGS: &[FlagSpec] = &[
    ROUNDS,
    SEED,
    TRACE_CAPACITY,
    METRICS,
    JOURNAL,
    JSON,
    LOG_LEVEL,
];

pub(crate) const DUPLEX: CommandSpec = CommandSpec {
    name: "duplex",
    usage: "vds duplex <scheme> [rounds] [fault-round]",
    about: "run a micro VDS, optionally injecting a fault",
    flags: &[
        ROUNDS,
        SEED,
        TRACE_CAPACITY,
        METRICS,
        JOURNAL,
        JSON,
        LOG_LEVEL,
        WORKLOAD,
        FAULT,
    ],
};

pub(crate) const VM: CommandSpec = CommandSpec {
    name: "vm",
    usage: "vds vm <asm|run|duplex> <program> [rounds] [fault-round]",
    about: "assemble, run or duplex a bytecode-VM seed program",
    flags: &[
        ROUNDS,
        SEED,
        FAULT,
        SCHEME,
        TRACE_CAPACITY,
        METRICS,
        JOURNAL,
        JSON,
        LOG_LEVEL,
    ],
};

pub(crate) const STATS: CommandSpec = CommandSpec {
    name: "stats",
    usage: "vds stats <scheme> [rounds] [fault-round]",
    about: "run a micro VDS and print its metrics and event trace",
    flags: DUPLEX_FLAGS,
};

pub(crate) const REPORT: CommandSpec = CommandSpec {
    name: "report",
    usage: "vds report <scheme> [rounds] [fault-round]",
    about: "run a micro VDS and print folded span stacks",
    flags: DUPLEX_FLAGS,
};

pub(crate) const EXPERIMENT: CommandSpec = CommandSpec {
    name: "experiment",
    usage: "vds experiment <e1..e18|all>",
    about: "regenerate a paper artefact",
    flags: &[ROUNDS, SEED, WORKERS, METRICS, LOG_LEVEL],
};

pub(crate) const BENCH: CommandSpec = CommandSpec {
    name: "bench",
    usage: "vds bench [--out PATH] [--check BASELINE.json [--threshold FRAC]]",
    about: "run the pinned perf suite (BENCH_<n>.json)",
    flags: &[
        ROUNDS, SEED, WORKERS, OUT, CHECK, THRESHOLD, JSON, LOG_LEVEL,
    ],
};

pub(crate) const SWEEP: CommandSpec = CommandSpec {
    name: "sweep",
    usage: "vds sweep --grid SPEC|FILE",
    about: "deterministic parallel parameter sweep over the VDS grid",
    flags: &[
        GRID, RESUME, ROUNDS, SEED, WORKERS, OUT, METRICS, JSON, ADDR, PORT, PORT_FILE, LOG_LEVEL,
        WORKLOAD,
    ],
};

pub(crate) const SERVE: CommandSpec = CommandSpec {
    name: "serve",
    usage: "vds serve [--addr HOST] [--port N] [--scheme NAME] [--once]",
    about: "run a live fault campaign behind a telemetry HTTP server",
    flags: &[
        ADDR, PORT, PORT_FILE, TRIALS, ROUNDS, SEED, WORKERS, SCHEME, ONCE, METRICS, JOURNAL,
        LOG_LEVEL, WORKLOAD,
    ],
};

pub(crate) const CONFORMANCE: CommandSpec = CommandSpec {
    name: "conformance",
    usage: "vds conformance <journal|live> [--window N] [--tolerance F] [--json]",
    about: "predicted-vs-measured G residuals over a recorded (or live) journal",
    flags: &[WINDOW, TOLERANCE, ALPHA_MODE, JSON, ADDR, PORT, LOG_LEVEL],
};

pub(crate) const FAULTS: CommandSpec = CommandSpec {
    name: "faults",
    usage: "vds faults <journal|live> [--json]",
    about: "per-fault lifecycle forensics over a recorded (or live) journal",
    flags: &[JSON, ADDR, PORT, LOG_LEVEL],
};

pub(crate) const REPLAY: CommandSpec = CommandSpec {
    name: "replay",
    usage: "vds replay <journal>",
    about: "re-execute a recorded run, assert digest-for-digest agreement",
    flags: &[WORKERS, LOG_LEVEL],
};

pub(crate) const AUDIT: CommandSpec = CommandSpec {
    name: "audit",
    usage: "vds audit diff <a> <b>",
    about: "first divergent round between two journals",
    flags: &[LOG_LEVEL],
};

impl CommandSpec {
    /// Parse `args` against this spec. Positionals pass through in order
    /// (the historical positional forms keep working); `--help` sets
    /// [`Flags::help`] instead of failing.
    pub(crate) fn parse(&self, args: &[String]) -> Result<Flags, CliError> {
        let mut f = Flags::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(rest) = a.strip_prefix("--") else {
                f.positional.push(a.clone());
                continue;
            };
            let (name, inline) = match rest.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (rest, None),
            };
            if name == "help" {
                f.help = true;
                continue;
            }
            let Some(spec) = self.flags.iter().find(|s| s.name == name) else {
                return Err(CliError::usage(format!(
                    "{}: unknown flag `--{name}` (known: {}; see `vds {} --help`)",
                    self.name,
                    self.known(),
                    self.name
                )));
            };
            if spec.value.is_none() {
                if inline.is_some() {
                    return Err(CliError::usage(format!(
                        "{}: `--{name}` takes no value",
                        self.name
                    )));
                }
                set_bool(&mut f, name);
                continue;
            }
            let value = match inline {
                Some(v) => v,
                None => it.next().cloned().ok_or_else(|| {
                    CliError::usage(format!("{}: `--{name}` needs a value", self.name))
                })?,
            };
            set_value(&mut f, name, value)?;
        }
        Ok(f)
    }

    /// The command's `--help` text.
    pub(crate) fn help(&self) -> String {
        let mut out = format!(
            "vds {} — {}\n\nUSAGE:\n    {}\n",
            self.name, self.about, self.usage
        );
        if !self.flags.is_empty() {
            out.push_str("\nFLAGS (`--flag value` or `--flag=value`):\n");
            for s in self.flags {
                let head = match s.value {
                    Some(v) => format!("--{} {v}", s.name),
                    None => format!("--{}", s.name),
                };
                let _ = writeln!(out, "    {head:<22} {}", s.help);
            }
        }
        out
    }

    fn known(&self) -> String {
        self.flags
            .iter()
            .map(|s| format!("--{}", s.name))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

fn set_bool(f: &mut Flags, name: &str) {
    match name {
        "json" => f.json = true,
        "once" => f.once = true,
        _ => unreachable!("boolean flag `--{name}` missing from set_bool"),
    }
}

fn set_value(f: &mut Flags, name: &str, value: String) -> Result<(), CliError> {
    match name {
        "rounds" => f.rounds = Some(parse_num(&value, "--rounds")?),
        "seed" => f.seed = Some(parse_num(&value, "--seed")?),
        "workers" => f.workers = Some(parse_num(&value, "--workers")?),
        "trace-capacity" => f.trace_capacity = Some(parse_num(&value, "--trace-capacity")?),
        "metrics" => f.metrics = Some(value),
        "out" => f.out = Some(value),
        "check" => f.check = Some(value),
        "threshold" => {
            let t: f64 = value
                .parse()
                .ok()
                .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                .ok_or_else(|| {
                    CliError::usage(format!(
                        "--threshold: `{value}` is not a non-negative number (e.g. 0.15)"
                    ))
                })?;
            f.threshold = Some(t);
        }
        "log-level" => vds_obs::logging::set_level_str(&value).map_err(CliError::usage)?,
        "addr" => f.addr = Some(value),
        "port" => f.port = Some(parse_num(&value, "--port")?),
        "port-file" => f.port_file = Some(value),
        "trials" => f.trials = Some(parse_num(&value, "--trials")?),
        "journal" => f.journal = Some(value),
        "grid" => f.grid = Some(value),
        "resume" => f.resume = Some(value),
        "window" => {
            let w: usize = parse_num(&value, "--window")?;
            if w == 0 {
                return Err(CliError::usage("--window: must be at least 1"));
            }
            f.window = Some(w);
        }
        "tolerance" => {
            let t: f64 = value
                .parse()
                .ok()
                .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                .ok_or_else(|| {
                    CliError::usage(format!(
                        "--tolerance: `{value}` is not a non-negative number (e.g. 0.25)"
                    ))
                })?;
            f.tolerance = Some(t);
        }
        "scheme" => f.scheme = Some(value),
        "workload" => f.workload = Some(value),
        "fault" => f.fault = Some(value),
        "alpha" => {
            if value != "measured" && value != "parametric" {
                return Err(CliError::usage(format!(
                    "--alpha: `{value}` is not a pricing mode (measured|parametric)"
                )));
            }
            f.alpha_mode = Some(value);
        }
        _ => unreachable!("value flag `--{name}` missing from set_value"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn per_command_specs_reject_other_commands_flags() {
        // --port belongs to serve/sweep, not duplex
        let e = DUPLEX.parse(&v(&["smt-det", "--port", "80"])).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.msg.contains("duplex: unknown flag `--port`"), "{}", e.msg);
        assert!(e.msg.contains("see `vds duplex --help`"), "{}", e.msg);
        // --grid belongs to sweep, not bench
        let e = BENCH.parse(&v(&["--grid", "alpha=0.5"])).unwrap_err();
        assert!(e.msg.contains("bench: unknown flag `--grid`"), "{}", e.msg);
    }

    #[test]
    fn help_flag_is_universal_and_lists_the_command_flags() {
        for spec in [&ALPHA, &DUPLEX, &BENCH, &SWEEP, &SERVE, &REPLAY, &AUDIT] {
            let f = spec.parse(&v(&["--help"])).unwrap();
            assert!(f.help, "vds {}", spec.name);
            let h = spec.help();
            assert!(h.contains("USAGE:"), "{h}");
            for fl in spec.flags {
                assert!(h.contains(&format!("--{}", fl.name)), "{h}");
            }
        }
        assert!(SERVE.help().contains("--once"), "{}", SERVE.help());
    }

    #[test]
    fn threshold_parses_fractions_and_rejects_garbage() {
        let f = BENCH.parse(&v(&["--threshold", "0.15"])).unwrap();
        assert_eq!(f.threshold, Some(0.15));
        let f = BENCH.parse(&v(&["--threshold=0.5"])).unwrap();
        assert_eq!(f.threshold, Some(0.5));
        for bad in ["nope", "-0.1", "NaN"] {
            let e = BENCH.parse(&v(&["--threshold", bad])).unwrap_err();
            assert_eq!(e.code, 2, "{bad}");
        }
    }

    #[test]
    fn error_wording_is_uniform_across_commands() {
        let e = SWEEP.parse(&v(&["--grid"])).unwrap_err();
        assert_eq!(e.msg, "sweep: `--grid` needs a value");
        let e = SERVE.parse(&v(&["--once=1"])).unwrap_err();
        assert_eq!(e.msg, "serve: `--once` takes no value");
        let e = STATS.parse(&v(&["--json=1"])).unwrap_err();
        assert_eq!(e.msg, "stats: `--json` takes no value");
    }
}
