#![warn(missing_docs)]

//! # vds-cli — the command-line interface
//!
//! One binary, `vds`, exposing the whole system:
//!
//! ```text
//! vds asm <file.s>                  assemble; print a summary
//! vds disasm <file.s>               assemble then disassemble (round-trip view)
//! vds run <file.s> [copies] [max]   run on the SMT core, print counters
//! vds alpha [rounds]                measure the kernel-pair α matrix
//! vds duplex <scheme> [rounds] [fault-round]
//!                                   run a micro VDS, optionally injecting a fault
//! vds flowchart <scheme>            print a recovery flow chart as Graphviz DOT
//! vds experiment <id>               regenerate a paper artefact (e1..e14, all)
//! vds gains [alpha] [beta] [p]      print the closed-form gain summary
//! ```
//!
//! The command dispatch lives in this library crate so it is unit-testable;
//! `main.rs` only forwards `std::env::args`.

use std::fmt::Write as _;

/// CLI error: message plus the exit code to use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub msg: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError {
            msg: msg.into(),
            code: 2,
        }
    }

    fn runtime(msg: impl Into<String>) -> Self {
        CliError {
            msg: msg.into(),
            code: 1,
        }
    }
}

/// Top-level usage text.
pub fn usage() -> &'static str {
    "vds — virtual duplex systems on simultaneous multithreaded processors

USAGE:
    vds asm <file.s>                    assemble and summarise
    vds disasm <file.s>                 assemble, then disassemble
    vds run <file.s> [copies] [maxcyc]  execute on the SMT core
    vds alpha [rounds]                  measure kernel-pair α matrix
    vds duplex <scheme> [rounds] [at]   run a micro VDS (fault at round `at`)
    vds flowchart <scheme>              recovery flow chart as DOT
    vds experiment <e1..e14|all>        regenerate a paper artefact
    vds gains [alpha] [beta] [p]        closed-form gain summary

SCHEMES: conventional, smt-det, smt-prob, smt-pred, smt-boost3, smt-boost5"
}

fn parse_scheme(s: &str) -> Result<vds_core::Scheme, CliError> {
    use vds_core::Scheme;
    Scheme::ALL
        .iter()
        .copied()
        .find(|sc| sc.name() == s)
        .ok_or_else(|| CliError::usage(format!("unknown scheme `{s}` (see `vds` for the list)")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::usage(format!("bad {what}: `{s}`")))
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read `{path}`: {e}")))
}

/// Run one command; returns the text to print.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "asm" => cmd_asm(args.get(1).ok_or_else(|| CliError::usage("asm: missing file"))?),
        "disasm" => cmd_disasm(
            args.get(1)
                .ok_or_else(|| CliError::usage("disasm: missing file"))?,
        ),
        "run" => cmd_run(
            args.get(1).ok_or_else(|| CliError::usage("run: missing file"))?,
            args.get(2).map(String::as_str),
            args.get(3).map(String::as_str),
        ),
        "alpha" => cmd_alpha(args.get(1).map(String::as_str)),
        "duplex" => cmd_duplex(
            args.get(1)
                .ok_or_else(|| CliError::usage("duplex: missing scheme"))?,
            args.get(2).map(String::as_str),
            args.get(3).map(String::as_str),
        ),
        "flowchart" => {
            let scheme = parse_scheme(
                args.get(1)
                    .ok_or_else(|| CliError::usage("flowchart: missing scheme"))?,
            )?;
            Ok(vds_core::flowchart::for_scheme(scheme).to_dot())
        }
        "experiment" => cmd_experiment(
            args.get(1)
                .ok_or_else(|| CliError::usage("experiment: missing id (e1..e14|all)"))?,
        ),
        "gains" => cmd_gains(
            args.get(1).map(String::as_str),
            args.get(2).map(String::as_str),
            args.get(3).map(String::as_str),
        ),
        "" | "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

fn cmd_asm(path: &str) -> Result<String, CliError> {
    let src = read_file(path)?;
    let prog = vds_smtsim::asm::assemble(&src).map_err(|e| CliError::runtime(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} instructions, {} data words, entry {}",
        prog.len(),
        prog.data.len(),
        prog.entry
    );
    for (name, sym) in &prog.symbols {
        let _ = writeln!(out, "  {name}: {sym:?}");
    }
    let _ = writeln!(out, "text digest: {:016x}", prog.text_digest());
    Ok(out)
}

fn cmd_disasm(path: &str) -> Result<String, CliError> {
    let src = read_file(path)?;
    let prog = vds_smtsim::asm::assemble(&src).map_err(|e| CliError::runtime(e.to_string()))?;
    Ok(vds_smtsim::disasm::disassemble(&prog))
}

fn cmd_run(path: &str, copies: Option<&str>, maxcyc: Option<&str>) -> Result<String, CliError> {
    use vds_smtsim::core::{Core, CoreConfig, RunOutcome, ThreadId, ThreadState};
    let src = read_file(path)?;
    let prog = vds_smtsim::asm::assemble(&src).map_err(|e| CliError::runtime(e.to_string()))?;
    let copies: usize = copies.map_or(Ok(1), |s| parse_num(s, "copy count"))?;
    let maxcyc: u64 = maxcyc.map_or(Ok(10_000_000), |s| parse_num(s, "cycle limit"))?;
    if !(1..=8).contains(&copies) {
        return Err(CliError::usage("copies must be 1..=8"));
    }
    let mut cfg = CoreConfig::default();
    cfg.max_threads = copies;
    let mut core = Core::new(cfg);
    let dmem = (prog.data.len() + 1024).max(4096);
    let tids: Vec<ThreadId> = (0..copies).map(|_| core.add_thread(&prog, dmem)).collect();
    loop {
        match core.run_until_all_blocked(maxcyc) {
            RunOutcome::AllYielded => {
                for &t in &tids {
                    if core.thread(t).state == ThreadState::Yielded {
                        core.resume(t);
                    }
                }
            }
            RunOutcome::AllHalted => break,
            RunOutcome::Trapped(tid, trap) => {
                return Err(CliError::runtime(format!(
                    "thread {tid:?} trapped: {trap:?} after {} cycles",
                    core.cycles()
                )))
            }
            RunOutcome::CycleBudgetExhausted => {
                return Err(CliError::runtime(format!(
                    "cycle limit {maxcyc} exhausted"
                )))
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "completed in {} cycles", core.cycles());
    for &t in &tids {
        let c = core.thread(t).counters;
        let _ = writeln!(out, "  thread {}: {}", t.0, c);
    }
    let _ = writeln!(
        out,
        "  I$ hit rate {:.3}, D$ hit rate {:.3}",
        core.icache_stats().hit_rate(),
        core.dcache_stats().hit_rate()
    );
    Ok(out)
}

fn cmd_alpha(rounds: Option<&str>) -> Result<String, CliError> {
    let rounds: u32 = rounds.map_or(Ok(2), |s| parse_num(s, "round count"))?;
    Ok(vds_bench::e09_alpha::report(rounds).to_string())
}

fn cmd_duplex(
    scheme: &str,
    rounds: Option<&str>,
    fault_round: Option<&str>,
) -> Result<String, CliError> {
    use vds_core::micro_vds::{run_micro_with_state, MicroConfig, MicroFault};
    use vds_core::{workload, Victim};
    use vds_fault::model::{FaultKind, FaultSite};
    let scheme = parse_scheme(scheme)?;
    if scheme == vds_core::Scheme::SmtBoosted5 {
        return Err(CliError::usage(
            "smt-boost5 runs on the abstract backend only (try `vds experiment e13`)",
        ));
    }
    let rounds: u64 = rounds.map_or(Ok(30), |s| parse_num(s, "round count"))?;
    let cfg = MicroConfig::new(scheme, 10);
    let fault = match fault_round {
        Some(s) => {
            let at: u32 = parse_num(s, "fault round")?;
            Some(MicroFault {
                at_round: at,
                victim: Victim::V2,
                kind: FaultKind::Transient(FaultSite::Memory { addr: 4, bit: 9 }),
            })
        }
        None => None,
    };
    let (r, img) = run_micro_with_state(&cfg, fault, rounds);
    let (_, want) = workload::oracle(r.committed_rounds as u32);
    let got = &img[workload::ADDR_STATE as usize
        ..(workload::ADDR_STATE + workload::STATE_WORDS) as usize];
    let verdict = if got == &want[..] {
        "output CORRECT"
    } else {
        "output WRONG"
    };
    Ok(format!("{r}\n{verdict} versus the oracle\n"))
}

fn cmd_experiment(id: &str) -> Result<String, CliError> {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let one = |id: &str| -> Result<String, CliError> {
        Ok(match id {
            "e1" => vds_bench::e01_round_gain::report(200).to_string(),
            "e2" => vds_bench::e02_timelines::report(8, 24, 140).to_string(),
            "e3" => vds_bench::e03_flowcharts::report().to_string(),
            "e4" => vds_bench::e04_det_rollforward::report().to_string(),
            "e5" => vds_bench::e05_prob_rollforward::report().to_string(),
            "e6" => vds_bench::e06_fig4::report().to_string(),
            "e7" => vds_bench::e07_fig5::report().to_string(),
            "e8" => vds_bench::e08_gmax::report().to_string(),
            "e9" => vds_bench::e09_alpha::report(3).to_string(),
            "e10" => vds_bench::e10_coverage::report(200, workers).to_string(),
            "e11" => vds_bench::e11_prediction::report(20_000).to_string(),
            "e12" => vds_bench::e12_checkpoint::report(1_500).to_string(),
            "e13" => vds_bench::e13_multithread::report().to_string(),
            "e14" => vds_bench::e14_ablation::report(40).to_string(),
            other => {
                return Err(CliError::usage(format!(
                    "unknown experiment `{other}` (e1..e14 or all)"
                )))
            }
        })
    };
    if id == "all" {
        let mut out = String::new();
        for k in 1..=14 {
            out.push_str(&one(&format!("e{k}"))?);
        }
        Ok(out)
    } else {
        one(id)
    }
}

fn cmd_gains(
    alpha: Option<&str>,
    beta: Option<&str>,
    p: Option<&str>,
) -> Result<String, CliError> {
    use vds_analytic::{predictive, rollforward, timing, Params};
    let alpha: f64 = alpha.map_or(Ok(0.65), |s| parse_num(s, "alpha"))?;
    let beta: f64 = beta.map_or(Ok(0.1), |s| parse_num(s, "beta"))?;
    let p: f64 = p.map_or(Ok(0.5), |s| parse_num(s, "p"))?;
    if !(0.5..=1.0).contains(&alpha) || !(0.0..=1.0).contains(&beta) || !(0.0..=1.0).contains(&p)
    {
        return Err(CliError::usage(
            "need alpha in [0.5,1], beta in [0,1], p in [0,1]",
        ));
    }
    let params = Params::with_beta(alpha, beta, 20);
    let mut out = String::new();
    let _ = writeln!(out, "α={alpha} β={beta} p={p} s=20");
    let _ = writeln!(
        out,
        "  G_round      = {:.4}   (Eq. 4)",
        timing::g_round_exact(&params)
    );
    let _ = writeln!(
        out,
        "  Ḡ_det        = {:.4}   (Eq. 7)",
        rollforward::gbar_det_exact(&params)
    );
    let _ = writeln!(
        out,
        "  Ḡ_prob(p)    = {:.4}   (Eq. 8)",
        rollforward::gbar_prob_exact(&params, p)
    );
    let _ = writeln!(
        out,
        "  Ḡ_corr(p)    = {:.4}   (Eq. 13)",
        predictive::gbar_corr_exact(&params, p)
    );
    let _ = writeln!(
        out,
        "  G_max        = {:.4}   (s → ∞ limit)",
        predictive::g_max(alpha, beta, p)
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&["help"]).unwrap().contains("USAGE"));
        let e = run(&["frobnicate"]).unwrap_err();
        assert_eq!(e.code, 2);
    }

    #[test]
    fn gains_defaults_give_headline() {
        let out = run(&["gains"]).unwrap();
        assert!(out.contains("G_max"));
        assert!(out.contains("1.38"), "{out}");
    }

    #[test]
    fn gains_validates_ranges() {
        assert!(run(&["gains", "0.3"]).is_err());
        assert!(run(&["gains", "0.7", "2.0"]).is_err());
        assert!(run(&["gains", "0.7", "0.1", "0.9"]).is_ok());
    }

    #[test]
    fn flowchart_dot() {
        let out = run(&["flowchart", "smt-prob"]).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(run(&["flowchart", "bogus"]).is_err());
    }

    #[test]
    fn asm_run_roundtrip_via_tempfile() {
        let dir = std::env::temp_dir().join("vds-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prog.s");
        std::fs::write(
            &path,
            "addi r1, r0, 6\nmul r2, r1, r1\nst r2, 0(r0)\nhalt\n",
        )
        .unwrap();
        let p = path.to_str().unwrap();
        let asm = run(&["asm", p]).unwrap();
        assert!(asm.contains("4 instructions"));
        let dis = run(&["disasm", p]).unwrap();
        assert!(dis.contains("mul r2, r1, r1"));
        let ran = run(&["run", p]).unwrap();
        assert!(ran.contains("completed in"), "{ran}");
        let ran2 = run(&["run", p, "2"]).unwrap();
        assert!(ran2.contains("thread 1"));
    }

    #[test]
    fn run_rejects_bad_args() {
        assert!(run(&["run", "/nonexistent/x.s"]).is_err());
        let dir = std::env::temp_dir().join("vds-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.s");
        std::fs::write(&path, "halt\n").unwrap();
        let p = path.to_str().unwrap();
        assert!(run(&["run", p, "99"]).is_err(), "copies out of range");
        assert!(run(&["run", p, "nope"]).is_err());
    }

    #[test]
    fn duplex_fault_free_and_faulty() {
        let ok = run(&["duplex", "smt-prob", "12"]).unwrap();
        assert!(ok.contains("output CORRECT"), "{ok}");
        let faulty = run(&["duplex", "smt-det", "15", "4"]).unwrap();
        assert!(faulty.contains("detections=1"), "{faulty}");
        assert!(faulty.contains("output CORRECT"), "{faulty}");
        assert!(run(&["duplex", "smt-boost5"]).is_err());
    }

    #[test]
    fn experiment_dispatch() {
        let out = run(&["experiment", "e8"]).unwrap();
        assert!(out.contains("1.38"));
        assert!(run(&["experiment", "e99"]).is_err());
    }
}
