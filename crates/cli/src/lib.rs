#![warn(missing_docs)]

//! # vds-cli — the command-line interface
//!
//! One binary, `vds`, exposing the whole system:
//!
//! ```text
//! vds asm <file.s>                  assemble; print a summary
//! vds disasm <file.s>               assemble then disassemble (round-trip view)
//! vds run <file.s> [copies] [max]   run on the SMT core, print counters
//! vds alpha [rounds|prog.s]         per-cycle α-attribution ledger
//! vds duplex <scheme> [rounds] [fault-round]
//!                                   run a micro VDS, optionally injecting a fault
//! vds stats <scheme> [rounds] [at]  run a micro VDS and print its metrics/trace
//! vds report <scheme> [rounds] [at] run a micro VDS, print folded span stacks
//! vds flowchart <scheme>            print a recovery flow chart as Graphviz DOT
//! vds experiment <id>               regenerate a paper artefact (e1..e18, all)
//! vds vm <asm|run|duplex> <prog>    assemble, run or duplex a bytecode-VM program
//! vds bench                         run the pinned perf suite (BENCH_<n>.json)
//! vds sweep --grid SPEC             deterministic parallel parameter sweep
//! vds gains [alpha] [beta] [p]      print the closed-form gain summary
//! ```
//!
//! The `duplex`, `stats`, `alpha` and `experiment` commands additionally
//! accept `--rounds N`, `--seed N`, `--workers N` and `--metrics PATH`
//! flags (both `--flag value` and `--flag=value` spellings); the old
//! positional forms keep working. `--metrics` writes the run's metric
//! registry as CSV to PATH, the event trace as JSON lines to
//! `PATH.trace.jsonl` when one was recorded, and the profiler spans as
//! Chrome trace-event JSON to `PATH.trace.json` when any were recorded —
//! all byte-identical for a fixed seed regardless of worker count.
//! `--trace-capacity N` resizes the bounded trace/span rings; `vds stats`
//! warns when records were dropped. `vds bench` writes the performance
//! trajectory (`--out PATH`, default the next free `BENCH_<n>.json`) and
//! `vds bench --check BASELINE.json` exits nonzero on work-counter drift
//! or a throughput regression against the committed baseline.
//!
//! `vds serve` runs a live fault campaign behind a zero-dependency
//! telemetry HTTP server (`/metrics` Prometheus exposition, `/healthz`,
//! `/readyz`, `/trace`, `/progress`) and shuts down gracefully on
//! Ctrl-C/SIGTERM; `vds stats --json` / `vds bench --json` emit the
//! machine-readable forms of their reports; `--log-level` (or `VDS_LOG`)
//! tunes the structured JSONL logging on stderr.
//!
//! The command dispatch lives in this library crate so it is unit-testable;
//! `main.rs` only forwards `std::env::args`.

use std::fmt::Write as _;

mod args;
mod audit;
mod conformance;
mod faults;
mod serve;
mod sweep_cmd;
mod vm_cmd;

/// CLI error: message plus the exit code to use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub msg: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError {
            msg: msg.into(),
            code: 2,
        }
    }

    fn runtime(msg: impl Into<String>) -> Self {
        CliError {
            msg: msg.into(),
            code: 1,
        }
    }
}

/// Top-level usage text.
pub fn usage() -> &'static str {
    "vds — virtual duplex systems on simultaneous multithreaded processors

USAGE:
    vds asm <file.s>                    assemble and summarise
    vds disasm <file.s>                 assemble, then disassemble
    vds run <file.s> [copies] [maxcyc]  execute on the SMT core
    vds alpha [rounds|prog.s]           per-cycle α-attribution ledger (suite pairs or one program)
    vds duplex <scheme> [rounds] [at]   run a micro VDS (fault at round `at`)
    vds vm <asm|run|duplex> <program>   assemble, run or duplex a bytecode-VM seed program
                                        (checksum, sort, matmul, strhash)
    vds stats <scheme> [rounds] [at]    run a micro VDS, print metrics + trace
    vds report <scheme> [rounds] [at]   run a micro VDS, print folded span stacks
    vds flowchart <scheme>              recovery flow chart as DOT
    vds experiment <e1..e18|all>        regenerate a paper artefact
    vds bench                           run the pinned perf suite
    vds sweep --grid SPEC|FILE          deterministic parallel parameter sweep over the VDS grid
    vds serve                           run a live fault campaign behind a telemetry HTTP server
    vds replay <journal>                re-execute a recorded run, assert digest-for-digest agreement
    vds audit diff <a> <b>              first divergent round between two journals
    vds conformance <journal|live>      predicted-vs-measured G residuals over a journal
    vds faults <journal|live>           per-fault lifecycle forensics over a journal
    vds gains [alpha] [beta] [p]        closed-form gain summary
    vds <command> --help                per-command flag reference

FLAGS (alpha / duplex / stats / report / experiment / bench / serve; `--flag v` or `--flag=v`):
    --rounds N           size knob: rounds, trials or samples
    --seed N             seed override for seeded runs
    --workers N          worker threads for campaign-style experiments
    --metrics PATH       write metrics CSV to PATH (+ PATH.trace.jsonl /
                         PATH.trace.json when a trace / spans were recorded)
    --trace-capacity N   resize the bounded trace and span rings
    --out PATH           bench: write BENCH json to PATH (default BENCH_<n>.json)
    --check PATH         bench: compare against a baseline; exit 1 on drift
    --threshold FRAC     bench: allowed relative throughput drop for --check (default 0.5)
    --json               stats / bench: machine-readable JSON on stdout
    --log-level LEVEL    off|error|warn|info|debug (default info; also VDS_LOG)
    --addr HOST          serve: bind address (default 127.0.0.1)
    --port N             serve: TCP port (0 = ephemeral; default 9898)
    --port-file PATH     serve: write the bound port to PATH once listening
    --trials N           serve: campaign trials (default 200)
    --once               serve: exit after the campaign instead of waiting for Ctrl-C
    --journal PATH       duplex / stats / report / serve: write the flight-recorder
                         round journal (JSONL) to PATH; replay it with `vds replay`
    --grid SPEC|FILE     sweep: inline axes (alpha=0.55,0.65;s=10,20;scheme=smt-det;
                         q=0.01;backend=abstract;rounds=2000;seed=1) or a TOML file
    --resume PATH        sweep: append completed cells to a journal at PATH and, when
                         it already holds rows for this grid, skip those cells
    --scheme NAME        serve: campaign recovery scheme (default smt-prob;
                         smt-boost5 is abstract-only)
    --workload KIND      duplex / serve / sweep: run against a bytecode-VM seed
                         program (vm:checksum | vm:sort | vm:matmul | vm:strhash)
    --fault SPEC         vm duplex: fault site vm:reg:<i>:<b> | vm:pc:<b> |
                         vm:lit:<i>:<b> | vm:mem:<a>:<b>, optional @v1/@v2 suffix
    --window N           conformance: rounds per residual window (default 8)
    --tolerance F        conformance: |residual| bound a window must stay within
                         (default 0.25)
    --alpha MODE         conformance: price the model at the measured or the
                         parametric α (measured|parametric; default parametric)

ENDPOINTS (vds serve): /metrics (Prometheus), /healthz, /readyz, /trace (Chrome JSON), /progress (JSON), /journal (JSONL), /conformance (JSON), /faults (JSON), /alpha (JSON)

SCHEMES: conventional, smt-det, smt-prob, smt-pred, smt-boost3, smt-boost5"
}

/// Flags shared by the run-style commands, plus the surviving positional
/// arguments in their original order.
#[derive(Debug, Default, Clone, PartialEq)]
struct Flags {
    rounds: Option<u64>,
    seed: Option<u64>,
    workers: Option<usize>,
    metrics: Option<String>,
    trace_capacity: Option<usize>,
    out: Option<String>,
    check: Option<String>,
    json: bool,
    addr: Option<String>,
    port: Option<u16>,
    port_file: Option<String>,
    trials: Option<u64>,
    once: bool,
    journal: Option<String>,
    grid: Option<String>,
    resume: Option<String>,
    threshold: Option<f64>,
    window: Option<usize>,
    tolerance: Option<f64>,
    scheme: Option<String>,
    alpha_mode: Option<String>,
    workload: Option<String>,
    fault: Option<String>,
    /// `--help` was given: the command should print its flag reference.
    help: bool,
    positional: Vec<String>,
}

/// Write `bytes` to `path` atomically (temp sibling + rename), so a kill
/// mid-write — or a concurrent reader; CI tails `BENCH_<n>.json` and the
/// sweep exports — never observes a truncated file. Thin `&str`-path
/// wrapper over [`vds_obs::write_atomic`], the same path journal flushes
/// take.
pub(crate) fn write_atomic(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    vds_obs::write_atomic(std::path::Path::new(path), bytes)
}

/// Write the registry as CSV to `path` and, when a trace / spans were
/// recorded, their JSON renderings next to it; returns a printable
/// confirmation.
fn write_metrics(
    path: &str,
    registry: &vds_obs::Registry,
    trace: Option<&vds_obs::Trace>,
    spans: Option<&vds_obs::SpanSet>,
) -> Result<String, CliError> {
    std::fs::write(path, registry.to_csv())
        .map_err(|e| CliError::runtime(format!("cannot write `{path}`: {e}")))?;
    let mut note = format!("metrics CSV written to {path}\n");
    if let Some(t) = trace.filter(|t| !t.is_empty()) {
        let tpath = format!("{path}.trace.jsonl");
        std::fs::write(&tpath, t.to_jsonl())
            .map_err(|e| CliError::runtime(format!("cannot write `{tpath}`: {e}")))?;
        let _ = writeln!(note, "trace ({} events) written to {tpath}", t.len());
    }
    if let Some(s) = spans.filter(|s| !s.is_empty()) {
        let spath = format!("{path}.trace.json");
        std::fs::write(&spath, s.to_chrome_json())
            .map_err(|e| CliError::runtime(format!("cannot write `{spath}`: {e}")))?;
        let _ = writeln!(
            note,
            "Chrome trace ({} spans) written to {spath} — open in ui.perfetto.dev",
            s.len()
        );
    }
    Ok(note)
}

fn parse_scheme(s: &str) -> Result<vds_core::Scheme, CliError> {
    use vds_core::Scheme;
    Scheme::ALL
        .iter()
        .copied()
        .find(|sc| sc.name() == s)
        .ok_or_else(|| CliError::usage(format!("unknown scheme `{s}` (see `vds` for the list)")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::usage(format!("bad {what}: `{s}`")))
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read `{path}`: {e}")))
}

/// Parse a journal for the read-side consumers (`replay`, `faults`,
/// `conformance`, `audit diff`), tolerating a torn final line — the
/// leftover of a kill mid-append. The tear is logged and dropped, the
/// same truncate-and-warn recovery the sweep resume journal applies;
/// corruption anywhere else still fails with the usual one-line error.
fn parse_journal_tolerant(source: &str, text: &str) -> Result<vds_obs::Journal, CliError> {
    let (journal, warn) = vds_obs::Journal::from_jsonl_tolerant(text)
        .map_err(|e| CliError::runtime(format!("cannot parse `{source}`: {e}")))?;
    if let Some(w) = warn {
        vds_obs::log_warn!("journal", "{source}: {w}");
    }
    Ok(journal)
}

/// Run one command; returns the text to print.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "asm" => cmd_asm(
            args.get(1)
                .ok_or_else(|| CliError::usage("asm: missing file"))?,
        ),
        "disasm" => cmd_disasm(
            args.get(1)
                .ok_or_else(|| CliError::usage("disasm: missing file"))?,
        ),
        "run" => cmd_run(
            args.get(1)
                .ok_or_else(|| CliError::usage("run: missing file"))?,
            args.get(2).map(String::as_str),
            args.get(3).map(String::as_str),
        ),
        "alpha" => cmd_alpha(&args[1..]),
        "duplex" => cmd_duplex(&args[1..], DuplexMode::Plain),
        "stats" => cmd_duplex(&args[1..], DuplexMode::Stats),
        "report" => cmd_duplex(&args[1..], DuplexMode::Report),
        "bench" => cmd_bench(&args[1..]),
        "sweep" => sweep_cmd::cmd_sweep(&args[1..]),
        "serve" => serve::cmd_serve(&args[1..]),
        "vm" => vm_cmd::cmd_vm(&args[1..]),
        "replay" => audit::cmd_replay(&args[1..]),
        "audit" => audit::cmd_audit(&args[1..]),
        "conformance" => conformance::cmd_conformance(&args[1..]),
        "faults" => faults::cmd_faults(&args[1..]),
        "flowchart" => {
            let scheme = parse_scheme(
                args.get(1)
                    .ok_or_else(|| CliError::usage("flowchart: missing scheme"))?,
            )?;
            Ok(vds_core::flowchart::for_scheme(scheme).to_dot())
        }
        "experiment" => cmd_experiment(&args[1..]),
        "gains" => cmd_gains(
            args.get(1).map(String::as_str),
            args.get(2).map(String::as_str),
            args.get(3).map(String::as_str),
        ),
        "" | "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

fn cmd_asm(path: &str) -> Result<String, CliError> {
    let src = read_file(path)?;
    let prog = vds_smtsim::asm::assemble(&src).map_err(|e| CliError::runtime(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} instructions, {} data words, entry {}",
        prog.len(),
        prog.data.len(),
        prog.entry
    );
    for (name, sym) in &prog.symbols {
        let _ = writeln!(out, "  {name}: {sym:?}");
    }
    let _ = writeln!(out, "text digest: {:016x}", prog.text_digest());
    Ok(out)
}

fn cmd_disasm(path: &str) -> Result<String, CliError> {
    let src = read_file(path)?;
    let prog = vds_smtsim::asm::assemble(&src).map_err(|e| CliError::runtime(e.to_string()))?;
    Ok(vds_smtsim::disasm::disassemble(&prog))
}

fn cmd_run(path: &str, copies: Option<&str>, maxcyc: Option<&str>) -> Result<String, CliError> {
    use vds_smtsim::core::{Core, CoreConfig, RunOutcome, ThreadId, ThreadState};
    let src = read_file(path)?;
    let prog = vds_smtsim::asm::assemble(&src).map_err(|e| CliError::runtime(e.to_string()))?;
    let copies: usize = copies.map_or(Ok(1), |s| parse_num(s, "copy count"))?;
    let maxcyc: u64 = maxcyc.map_or(Ok(10_000_000), |s| parse_num(s, "cycle limit"))?;
    if !(1..=8).contains(&copies) {
        return Err(CliError::usage("copies must be 1..=8"));
    }
    let cfg = CoreConfig {
        max_threads: copies,
        ..CoreConfig::default()
    };
    let mut core = Core::new(cfg);
    let dmem = (prog.data.len() + 1024).max(4096);
    let tids: Vec<ThreadId> = (0..copies).map(|_| core.add_thread(&prog, dmem)).collect();
    loop {
        match core.run_until_all_blocked(maxcyc) {
            RunOutcome::AllYielded => {
                for &t in &tids {
                    if core.thread(t).state == ThreadState::Yielded {
                        core.resume(t);
                    }
                }
            }
            RunOutcome::AllHalted => break,
            RunOutcome::Trapped(tid, trap) => {
                return Err(CliError::runtime(format!(
                    "thread {tid:?} trapped: {trap:?} after {} cycles",
                    core.cycles()
                )))
            }
            RunOutcome::CycleBudgetExhausted => {
                return Err(CliError::runtime(format!("cycle limit {maxcyc} exhausted")))
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "completed in {} cycles", core.cycles());
    for &t in &tids {
        let c = core.thread(t).counters;
        let _ = writeln!(out, "  thread {}: {}", t.0, c);
    }
    let _ = writeln!(
        out,
        "  I$ hit rate {:.3}, D$ hit rate {:.3}",
        core.icache_stats().hit_rate(),
        core.dcache_stats().hit_rate()
    );
    Ok(out)
}

/// `vds alpha` — the per-cycle α-attribution ledger. With a numeric
/// positional (or `--rounds`), every unordered kernel-suite pair is
/// measured; with a `.s` positional the program is co-run against
/// itself. The ledger is computed once on one thread regardless of
/// `--workers`, so the report bytes are identical for any worker count.
fn cmd_alpha(args: &[String]) -> Result<String, CliError> {
    use vds_smtsim::core::CoreConfig;
    let f = args::ALPHA.parse(args)?;
    if f.help {
        return Ok(args::ALPHA.help());
    }
    if f.positional.len() > 1 {
        return Err(CliError::usage("alpha: too many arguments"));
    }
    let cfg = CoreConfig::default();
    let report = match f.positional.first().filter(|p| p.ends_with(".s")) {
        Some(path) => {
            let src = read_file(path)?;
            let prog =
                vds_smtsim::asm::assemble(&src).map_err(|e| CliError::runtime(e.to_string()))?;
            let dmem = (prog.data.len() + 1024).max(4096);
            let name = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("program");
            let ledger = vds_smtsim::alpha::measure_ledger_programs(
                &cfg,
                name,
                (&prog, dmem),
                name,
                (&prog, dmem),
            )
            .map_err(|e| CliError::runtime(format!("alpha: {e}")))?;
            vds_obs::AlphaReport {
                pairs: vec![ledger],
            }
        }
        None => {
            let rounds: u32 = match (f.rounds, f.positional.first()) {
                (Some(n), _) => {
                    u32::try_from(n).map_err(|_| CliError::usage("--rounds too large"))?
                }
                (None, Some(s)) => parse_num(s, "round count")?,
                (None, None) => 2,
            };
            vds_smtsim::alpha::ledger_matrix(&cfg, &vds_smtsim::kernels::suite(rounds))
                .map_err(|e| CliError::runtime(format!("alpha: {e}")))?
        }
    };
    let mut out = if f.json {
        let mut j = report.to_json();
        j.push('\n');
        j
    } else {
        report.render_text()
    };
    if let Some(path) = &f.metrics {
        let mut reg = vds_obs::Registry::new();
        report.export_metrics(&mut reg);
        let note = write_metrics(path, &reg, None, None)?;
        if f.json {
            vds_obs::log_info!("cli", "{}", note.trim_end());
        } else {
            out.push_str(&note);
        }
    }
    Ok(out)
}

/// The journal header describing a micro duplex run: everything `vds
/// replay` needs to re-execute it (scheme, seed, `s`, target rounds and
/// the injected fault, if any) lives in the header, so a journal file is
/// self-describing.
pub(crate) fn micro_journal_header(
    cfg: &vds_core::micro_vds::MicroConfig,
    rounds: u64,
    fault: Option<&vds_core::micro_vds::MicroFault>,
) -> vds_obs::JournalHeader {
    let mut h = vds_obs::JournalHeader::new("micro", cfg.scheme.name(), cfg.seed, cfg.s, rounds);
    if let Some(fl) = fault {
        h = h
            .with_meta("fault", &fl.kind.spec_string())
            .with_meta("fault_round", &fl.at_round.to_string())
            .with_meta("fault_victim", &format!("v{}", fl.victim.index() + 1));
    }
    h
}

/// The three faces of a recorded micro-VDS run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DuplexMode {
    /// `vds duplex` — report + oracle verdict only.
    Plain,
    /// `vds stats` — the same run with metrics and event trace printed.
    Stats,
    /// `vds report` — the same run with folded span stacks printed.
    Report,
}

/// Backs `vds duplex` (report + oracle verdict), `vds stats` (the same
/// run with the metric registry and event trace printed) and `vds report`
/// (the same run with folded profiler stacks printed).
fn cmd_duplex(args: &[String], mode: DuplexMode) -> Result<String, CliError> {
    use vds_core::micro_vds::{
        run_micro_with_recorder, run_micro_with_state, MicroConfig, MicroFault,
    };
    use vds_core::{workload, Victim};
    use vds_fault::model::{FaultKind, FaultSite};
    let spec = match mode {
        DuplexMode::Plain => &args::DUPLEX,
        DuplexMode::Stats => &args::STATS,
        DuplexMode::Report => &args::REPORT,
    };
    let f = spec.parse(args)?;
    if f.help {
        return Ok(spec.help());
    }
    // `--workload vm:<prog>` swaps the micro workload for a bytecode-VM
    // seed program; the positional grammar is unchanged
    if let Some(w) = &f.workload {
        return vm_cmd::duplex_via_workload(&f, w);
    }
    let what = match mode {
        DuplexMode::Plain => "duplex",
        DuplexMode::Stats => "stats",
        DuplexMode::Report => "report",
    };
    let scheme = parse_scheme(
        f.positional
            .first()
            .ok_or_else(|| CliError::usage(format!("{what}: missing scheme")))?,
    )?;
    if scheme == vds_core::Scheme::SmtBoosted5 {
        return Err(CliError::usage(
            "smt-boost5 runs on the abstract backend only (try `vds experiment e13`)",
        ));
    }
    // positionals after the scheme fill the slots `--rounds` leaves
    // unclaimed, so `duplex --rounds 15 smt-det 4` still faults at round 4
    let mut rest = f.positional.iter().skip(1);
    let rounds: u64 = match f.rounds {
        Some(n) => n,
        None => match rest.next() {
            Some(s) => parse_num(s, "round count")?,
            None => 30,
        },
    };
    let mut cfg = MicroConfig::new(scheme, 10);
    if let Some(seed) = f.seed {
        cfg.seed = seed;
    }
    let fault = match rest.next() {
        Some(s) => {
            let at: u32 = parse_num(s, "fault round")?;
            Some(MicroFault {
                at_round: at,
                victim: Victim::V2,
                kind: FaultKind::Transient(FaultSite::Memory { addr: 4, bit: 9 }),
            })
        }
        None => None,
    };
    if rest.next().is_some() {
        return Err(CliError::usage(format!("{what}: too many arguments")));
    }
    // recording costs a little time, so the plain path stays unrecorded
    let record = mode != DuplexMode::Plain
        || f.metrics.is_some()
        || f.trace_capacity.is_some()
        || f.journal.is_some();
    let (r, img, rec) = if record {
        let mut recorder = match f.trace_capacity {
            Some(cap) => vds_obs::Recorder::with_trace_capacity(cap),
            None => vds_obs::Recorder::new(),
        };
        recorder.enable_journal(micro_journal_header(&cfg, rounds, fault.as_ref()));
        let (r, img, rec) = run_micro_with_recorder(&cfg, fault, rounds, recorder);
        (r, img, Some(rec))
    } else {
        let (r, img) = run_micro_with_state(&cfg, fault, rounds);
        (r, img, None)
    };
    let (_, want) = workload::oracle(r.committed_rounds as u32);
    let got = &img
        [workload::ADDR_STATE as usize..(workload::ADDR_STATE + workload::STATE_WORDS) as usize];
    let verdict = if got == &want[..] {
        "output CORRECT"
    } else {
        "output WRONG"
    };
    let mut out = format!("{r}\n{verdict} versus the oracle\n");
    if let Some(mut rec) = rec {
        // single-run top level: fold journal.* into the registry here
        rec.export_journal_metrics();
        // price the recorded rounds against the closed forms so `vds
        // stats` surfaces conformance.* gauges next to the journal block
        // (gauges + histogram only; counters stay untouched)
        if let Ok(tracker) = vds_obs::ConformanceTracker::for_journal(
            rec.journal(),
            vds_obs::conformance::DEFAULT_WINDOW,
            vds_obs::conformance::DEFAULT_TOLERANCE,
        ) {
            let mut reg = vds_obs::Registry::new();
            tracker.export_metrics(&mut reg);
            rec.merge_registry(&reg);
        }
        // fault-lifecycle forensics from the same journal: faults.*
        // counters are exported only on journaled paths like this one,
        // never by the engines, so bench work units stay untouched
        if let Ok(tracker) = vds_obs::ForensicsTracker::for_journal(rec.journal()) {
            let mut reg = vds_obs::Registry::new();
            tracker.export_metrics(&mut reg);
            rec.merge_registry(&reg);
        }
        let journal_note = match &f.journal {
            Some(path) => {
                write_atomic(path, rec.journal().to_jsonl().as_bytes())
                    .map_err(|e| CliError::runtime(format!("cannot write `{path}`: {e}")))?;
                Some(format!(
                    "journal ({} rounds) written to {path} — replay with `vds replay {path}`\n",
                    rec.journal().len()
                ))
            }
            None => None,
        };
        let journal_summary = rec.journal().summary_json();
        let (registry, trace, spans) = rec.into_parts();
        if mode == DuplexMode::Stats {
            // overflow reporting goes through the structured-logging
            // facade (stderr JSONL), keeping stdout clean for --json
            if trace.dropped() > 0 {
                vds_obs::logging::log_with(
                    vds_obs::Level::Warn,
                    "cli",
                    "trace records dropped — raise --trace-capacity",
                    &[
                        ("dropped", trace.dropped().into()),
                        ("capacity", (trace.capacity() as u64).into()),
                    ],
                );
            }
            if spans.dropped() > 0 {
                vds_obs::logging::log_with(
                    vds_obs::Level::Warn,
                    "cli",
                    "span records dropped — raise --trace-capacity",
                    &[
                        ("dropped", spans.dropped().into()),
                        ("capacity", (spans.capacity() as u64).into()),
                    ],
                );
            }
            if f.json {
                // one serializer with the telemetry server's /progress
                out = vds_obs::JsonObj::report("stats")
                    .str(
                        "verdict",
                        if got == &want[..] { "correct" } else { "wrong" },
                    )
                    .raw("journal", &journal_summary)
                    .raw("metrics", &registry.to_json_object())
                    .finish();
                out.push('\n');
            } else {
                let _ = write!(out, "\n---- metrics ----\n{registry}");
                let _ = write!(out, "---- trace ----\n{trace}");
            }
        }
        if mode == DuplexMode::Report {
            let _ = write!(
                out,
                "\n---- folded span stacks (self sim-time; feed to inferno/flamegraph.pl) ----\n{}",
                spans.to_folded()
            );
        }
        if let Some(path) = &f.metrics {
            let note = write_metrics(path, &registry, Some(&trace), Some(&spans))?;
            if f.json {
                // keep stdout pure JSON; the confirmation goes to the log
                vds_obs::log_info!("cli", "{}", note.trim_end());
            } else {
                out.push_str(&note);
            }
        }
        if let Some(note) = journal_note {
            if f.json {
                vds_obs::log_info!("cli", "{}", note.trim_end());
            } else {
                out.push_str(&note);
            }
        }
    }
    Ok(out)
}

fn cmd_experiment(args: &[String]) -> Result<String, CliError> {
    use vds_bench::registry::{find, registry, Params};
    let f = args::EXPERIMENT.parse(args)?;
    if f.help {
        return Ok(args::EXPERIMENT.help());
    }
    let id = f
        .positional
        .first()
        .ok_or_else(|| CliError::usage("experiment: missing id (e1..e18|all)"))?;
    if f.positional.len() > 1 {
        return Err(CliError::usage("experiment: too many arguments"));
    }
    let params = Params {
        rounds: f.rounds,
        seed: f.seed,
        workers: f
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get())),
    };
    let selected: Vec<&dyn vds_bench::registry::Experiment> = if id == "all" {
        registry().to_vec()
    } else {
        vec![find(id).ok_or_else(|| {
            CliError::usage(format!("unknown experiment `{id}` (e1..e18 or all)"))
        })?]
    };
    let mut out = String::new();
    let mut merged = vds_obs::Registry::new();
    let mut spans = vds_obs::SpanSet::default();
    for exp in &selected {
        let r = exp.run(&params);
        let _ = write!(out, "{r}");
        merged.merge(&r.metrics.prefixed(&exp.id().to_ascii_lowercase()));
        spans.extend_from(&r.spans);
    }
    if let Some(path) = &f.metrics {
        out.push_str(&write_metrics(path, &merged, None, Some(&spans))?);
    }
    Ok(out)
}

/// `BENCH_<n>.json` with n = (highest existing index) + 1 — the default
/// `vds bench` output path, so successive runs always append to the end
/// of the perf trajectory. Filling the first gap instead would renumber
/// history: with BENCH_1 and BENCH_3 present, a gap-filling default
/// would write a fresh run as BENCH_2 and corrupt the trajectory's
/// time order.
fn next_bench_path() -> String {
    next_bench_path_in(std::path::Path::new("."))
}

fn next_bench_path_in(dir: &std::path::Path) -> String {
    let max = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse::<u32>()
                .ok()
        })
        .max()
        .unwrap_or(0);
    format!("BENCH_{}.json", max + 1)
}

/// `vds bench` — run the pinned perf suite, print the table, write the
/// `BENCH_<n>.json` trajectory point and/or check against a baseline.
fn cmd_bench(args: &[String]) -> Result<String, CliError> {
    use vds_bench::perf::{self, BenchReport};
    let f = args::BENCH.parse(args)?;
    if f.help {
        return Ok(args::BENCH.help());
    }
    if !f.positional.is_empty() {
        return Err(CliError::usage("bench: unexpected positional arguments"));
    }
    let threshold = f.threshold.unwrap_or(perf::DEFAULT_REGRESSION_THRESHOLD);
    let workers = f
        .workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
    let report = perf::run_suite_with(workers, f.seed, f.rounds);
    if f.json {
        // machine-readable form: exactly the BENCH_<n>.json bytes
        let json = report.to_json();
        if let Some(p) = &f.out {
            write_atomic(p, json.as_bytes())
                .map_err(|e| CliError::runtime(format!("cannot write `{p}`: {e}")))?;
        }
        if let Some(base_path) = &f.check {
            let base = BenchReport::from_json(&read_file(base_path)?)
                .map_err(|e| CliError::runtime(format!("cannot parse `{base_path}`: {e}")))?;
            let issues = perf::check(&report, &base, threshold);
            if !issues.is_empty() {
                let mut msg = format!("bench check FAILED against {base_path}:\n");
                for issue in &issues {
                    let _ = writeln!(msg, "  - {issue}");
                }
                return Err(CliError::runtime(msg));
            }
        }
        return Ok(json);
    }
    let mut out = format!(
        "vds bench — pinned perf suite, schema v{}\n{:<5} {:>10} {:>11} {:>12} {:>10}\n",
        report.schema_version, "id", "sim_rounds", "host_ms", "work_units", "work/ms"
    );
    for e in &report.experiments {
        let _ = writeln!(
            out,
            "{:<5} {:>10} {:>11.3} {:>12} {:>10.1}",
            e.id,
            e.sim_rounds,
            e.host_ms,
            e.work_units,
            e.work_per_ms()
        );
    }
    // --check without --out only compares; otherwise a trajectory point
    // is written (to --out, or the next free BENCH_<n>.json slot)
    let out_path = match (&f.out, &f.check) {
        (Some(p), _) => Some(p.clone()),
        (None, Some(_)) => None,
        (None, None) => Some(next_bench_path()),
    };
    if let Some(p) = &out_path {
        write_atomic(p, report.to_json().as_bytes())
            .map_err(|e| CliError::runtime(format!("cannot write `{p}`: {e}")))?;
        let _ = writeln!(out, "bench report written to {p}");
    }
    if let Some(base_path) = &f.check {
        let base = BenchReport::from_json(&read_file(base_path)?)
            .map_err(|e| CliError::runtime(format!("cannot parse `{base_path}`: {e}")))?;
        let issues = perf::check(&report, &base, threshold);
        if issues.is_empty() {
            let _ = writeln!(out, "bench check OK against {base_path}");
        } else {
            let mut msg = out;
            let _ = writeln!(msg, "bench check FAILED against {base_path}:");
            for issue in &issues {
                let _ = writeln!(msg, "  - {issue}");
            }
            return Err(CliError::runtime(msg));
        }
    }
    Ok(out)
}

fn cmd_gains(alpha: Option<&str>, beta: Option<&str>, p: Option<&str>) -> Result<String, CliError> {
    use vds_analytic::{predictive, rollforward, timing, Params};
    let alpha: f64 = alpha.map_or(Ok(0.65), |s| parse_num(s, "alpha"))?;
    let beta: f64 = beta.map_or(Ok(0.1), |s| parse_num(s, "beta"))?;
    let p: f64 = p.map_or(Ok(0.5), |s| parse_num(s, "p"))?;
    if !(0.5..=1.0).contains(&alpha) || !(0.0..=1.0).contains(&beta) || !(0.0..=1.0).contains(&p) {
        return Err(CliError::usage(
            "need alpha in [0.5,1], beta in [0,1], p in [0,1]",
        ));
    }
    let params = Params::with_beta(alpha, beta, 20);
    let mut out = String::new();
    let _ = writeln!(out, "α={alpha} β={beta} p={p} s=20");
    let _ = writeln!(
        out,
        "  G_round      = {:.4}   (Eq. 4)",
        timing::g_round_exact(&params)
    );
    let _ = writeln!(
        out,
        "  Ḡ_det        = {:.4}   (Eq. 7)",
        rollforward::gbar_det_exact(&params)
    );
    let _ = writeln!(
        out,
        "  Ḡ_prob(p)    = {:.4}   (Eq. 8)",
        rollforward::gbar_prob_exact(&params, p)
    );
    let _ = writeln!(
        out,
        "  Ḡ_corr(p)    = {:.4}   (Eq. 13)",
        predictive::gbar_corr_exact(&params, p)
    );
    let _ = writeln!(
        out,
        "  G_max        = {:.4}   (s → ∞ limit)",
        predictive::g_max(alpha, beta, p)
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&["help"]).unwrap().contains("USAGE"));
        let e = run(&["frobnicate"]).unwrap_err();
        assert_eq!(e.code, 2);
    }

    #[test]
    fn gains_defaults_give_headline() {
        let out = run(&["gains"]).unwrap();
        assert!(out.contains("G_max"));
        assert!(out.contains("1.38"), "{out}");
    }

    #[test]
    fn gains_validates_ranges() {
        assert!(run(&["gains", "0.3"]).is_err());
        assert!(run(&["gains", "0.7", "2.0"]).is_err());
        assert!(run(&["gains", "0.7", "0.1", "0.9"]).is_ok());
    }

    #[test]
    fn flowchart_dot() {
        let out = run(&["flowchart", "smt-prob"]).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(run(&["flowchart", "bogus"]).is_err());
    }

    #[test]
    fn asm_run_roundtrip_via_tempfile() {
        let dir = std::env::temp_dir().join("vds-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prog.s");
        std::fs::write(
            &path,
            "addi r1, r0, 6\nmul r2, r1, r1\nst r2, 0(r0)\nhalt\n",
        )
        .unwrap();
        let p = path.to_str().unwrap();
        let asm = run(&["asm", p]).unwrap();
        assert!(asm.contains("4 instructions"));
        let dis = run(&["disasm", p]).unwrap();
        assert!(dis.contains("mul r2, r1, r1"));
        let ran = run(&["run", p]).unwrap();
        assert!(ran.contains("completed in"), "{ran}");
        let ran2 = run(&["run", p, "2"]).unwrap();
        assert!(ran2.contains("thread 1"));
    }

    #[test]
    fn run_rejects_bad_args() {
        assert!(run(&["run", "/nonexistent/x.s"]).is_err());
        let dir = std::env::temp_dir().join("vds-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.s");
        std::fs::write(&path, "halt\n").unwrap();
        let p = path.to_str().unwrap();
        assert!(run(&["run", p, "99"]).is_err(), "copies out of range");
        assert!(run(&["run", p, "nope"]).is_err());
    }

    #[test]
    fn duplex_fault_free_and_faulty() {
        let ok = run(&["duplex", "smt-prob", "12"]).unwrap();
        assert!(ok.contains("output CORRECT"), "{ok}");
        let faulty = run(&["duplex", "smt-det", "15", "4"]).unwrap();
        assert!(faulty.contains("detections=1"), "{faulty}");
        assert!(faulty.contains("output CORRECT"), "{faulty}");
        assert!(run(&["duplex", "smt-boost5"]).is_err());
    }

    #[test]
    fn experiment_dispatch() {
        let out = run(&["experiment", "e8"]).unwrap();
        assert!(out.contains("1.38"));
        assert!(run(&["experiment", "e99"]).is_err());
    }

    #[test]
    fn flag_parser_accepts_both_spellings_and_keeps_positionals() {
        let args: Vec<String> = [
            "smt-det",
            "--rounds",
            "12",
            "--seed=7",
            "--workers",
            "2",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let f = args::EXPERIMENT.parse(&args).unwrap();
        assert_eq!(f.rounds, Some(12));
        assert_eq!(f.seed, Some(7));
        assert_eq!(f.workers, Some(2));
        assert_eq!(f.metrics, None);
        assert_eq!(f.positional, vec!["smt-det".to_string(), "4".to_string()]);
    }

    #[test]
    fn flag_parser_rejects_unknown_and_valueless_flags() {
        for bad in [
            vec!["duplex", "smt-det", "--bogus"],
            vec!["duplex", "smt-det", "--bogus=1"],
            vec!["duplex", "smt-det", "--rounds"],
            vec!["duplex", "smt-det", "--rounds", "nope"],
            vec!["experiment", "e8", "--frobs=3"],
            vec!["stats", "smt-det", "--seeds", "1"],
        ] {
            let e = run(&bad).unwrap_err();
            assert_eq!(e.code, 2, "{bad:?}: {}", e.msg);
        }
    }

    #[test]
    fn duplex_flags_mirror_positionals() {
        let pos = run(&["duplex", "smt-det", "15", "4"]).unwrap();
        let flg = run(&["duplex", "--rounds", "15", "smt-det", "4"]).unwrap();
        assert_eq!(pos, flg);
        // a different seed diversifies the versions differently but the
        // run must still succeed and stay correct
        let seeded = run(&["duplex", "smt-det", "12", "--seed", "99"]).unwrap();
        assert!(seeded.contains("output CORRECT"), "{seeded}");
    }

    #[test]
    fn stats_prints_metrics_and_trace() {
        let out = run(&["stats", "smt-det", "12", "4"]).unwrap();
        assert!(out.contains("output CORRECT"), "{out}");
        assert!(out.contains("---- metrics ----"), "{out}");
        assert!(out.contains("vds.detections"), "{out}");
        assert!(out.contains("smt.cycles"), "{out}");
        assert!(out.contains("---- trace ----"), "{out}");
        assert!(out.contains("detect"), "{out}");
    }

    #[test]
    fn duplex_metrics_flag_writes_csv_and_trace() {
        let dir = std::env::temp_dir().join("vds-cli-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("duplex.csv");
        // drop leftovers from other configurations so a stale trace file
        // can't mask a missing write
        let _ = std::fs::remove_file(dir.join("duplex.csv.trace.jsonl"));
        let p = path.to_str().unwrap();
        let out = run(&["duplex", "smt-det", "12", "4", "--metrics", p]).unwrap();
        assert!(
            out.contains(&format!("metrics CSV written to {p}")),
            "{out}"
        );
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("kind,name,field,value"), "{csv}");
        assert!(csv.contains("counter,vds.detections,value,1"), "{csv}");
        // the event trace only exists when the obs_*! macros emit; with
        // the feature off no trace file is written at all
        if cfg!(feature = "obs") {
            let trace = std::fs::read_to_string(dir.join("duplex.csv.trace.jsonl")).unwrap();
            assert!(trace.contains("\"kind\":\"trace_header\""), "{trace}");
            assert!(trace.contains("\"event\":\"detect\""), "{trace}");
        }
    }

    #[test]
    fn experiment_metrics_flag_writes_per_experiment_csv() {
        let dir = std::env::temp_dir().join("vds-cli-exp-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("e8.csv");
        let p = path.to_str().unwrap();
        run(&["experiment", "e8", "--metrics", p]).unwrap();
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.contains("counter,e8.report.text_bytes"), "{csv}");
    }

    #[test]
    fn report_prints_folded_span_stacks() {
        let out = run(&["report", "smt-det", "12", "4"]).unwrap();
        assert!(out.contains("output CORRECT"), "{out}");
        assert!(out.contains("folded span stacks"), "{out}");
        // engine-phase spans come from the obs_*! hot-path macros; the
        // pipeline windows are exported unconditionally at end of run
        if cfg!(feature = "obs") {
            assert!(out.contains("micro;round;compare "), "{out}");
            assert!(out.contains("micro;recovery;retry "), "{out}");
        }
        assert!(out.contains("smt;pipeline "), "{out}");
    }

    #[test]
    #[cfg(feature = "obs")] // the tight ring only overflows when the
                            // hot-path macros emit events/spans
    fn stats_warns_when_trace_ring_overflows() {
        // overflow reporting goes through the structured-logging facade
        let cap = vds_obs::logging::capture();
        let out = run(&["stats", "smt-det", "40", "--trace-capacity", "8"]).unwrap();
        let logged = cap.take();
        assert!(logged.contains("\"level\":\"warn\""), "{logged}");
        assert!(logged.contains("trace records dropped"), "{logged}");
        assert!(logged.contains("\"capacity\":8"), "{logged}");
        assert!(!out.contains("WARNING"), "stdout stays clean: {out}");
        // a roomy ring stays silent
        let cap = vds_obs::logging::capture();
        run(&["stats", "smt-det", "12", "4"]).unwrap();
        let quiet = cap.take();
        assert!(!quiet.contains("dropped"), "{quiet}");
    }

    #[test]
    fn stats_json_shares_the_progress_serializer() {
        let out = run(&["stats", "smt-det", "12", "4", "--json"]).unwrap();
        assert!(
            out.starts_with(
                "{\"schema\":\"vds.report.v1\",\"kind\":\"stats\",\"verdict\":\"correct\""
            ),
            "{out}"
        );
        // the flight-recorder summary rides along, like /progress
        assert!(out.contains("\"journal\":{\"rounds\":"), "{out}");
        assert!(out.contains("\"divergences\":1"), "{out}");
        assert!(out.contains("\"counters\":{"), "{out}");
        assert!(out.contains("\"journal.rounds\":"), "{out}");
        assert!(out.contains("\"vds.detections\":1"), "{out}");
        assert!(out.contains("\"gauges\":{"), "{out}");
        assert!(out.contains("\"summaries\":{"), "{out}");
        // byte-stable for the fixed seed
        let again = run(&["stats", "smt-det", "12", "4", "--json"]).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn bench_json_emits_the_report_json() {
        let out = run(&["bench", "--rounds", "2", "--json"]).unwrap();
        assert!(out.contains("\"schema_version\": 1"), "{out}");
        assert!(out.contains("\"id\":\"E1\""), "{out}");
        assert!(!out.contains("pinned perf suite"), "no table: {out}");
    }

    #[test]
    fn log_level_flag_applies_and_rejects_garbage() {
        let cap = vds_obs::logging::capture();
        run(&[
            "stats",
            "smt-det",
            "40",
            "--trace-capacity",
            "8",
            "--log-level",
            "error",
        ])
        .unwrap();
        let logged = cap.take();
        assert!(
            logged.is_empty(),
            "warn suppressed at error level: {logged}"
        );
        vds_obs::logging::set_level_str("info").unwrap();
        let e = run(&["stats", "smt-det", "--log-level", "loud"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.msg.contains("unknown log level"), "{}", e.msg);
    }

    #[test]
    fn experiment_metrics_flag_writes_chrome_trace() {
        let dir = std::env::temp_dir().join("vds-cli-exp-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("e2.csv");
        let p = path.to_str().unwrap();
        let out = run(&["experiment", "e2", "--metrics", p]).unwrap();
        assert!(out.contains("Chrome trace"), "{out}");
        let trace = std::fs::read_to_string(dir.join("e2.csv.trace.json")).unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        assert!(trace.contains("\"ph\":\"B\""), "{trace}");
        assert!(trace.contains("\"ph\":\"E\""), "{trace}");
        // byte-identical across a re-run
        let path2 = dir.join("e2b.csv");
        run(&["experiment", "e2", "--metrics", path2.to_str().unwrap()]).unwrap();
        let trace2 = std::fs::read_to_string(dir.join("e2b.csv.trace.json")).unwrap();
        assert_eq!(trace, trace2);
    }

    #[test]
    fn bench_writes_and_checks_a_baseline() {
        let dir = std::env::temp_dir().join("vds-cli-bench");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let p = path.to_str().unwrap();
        // tiny size cap keeps the debug-mode test fast
        let out = run(&["bench", "--rounds", "2", "--out", p]).unwrap();
        assert!(out.contains("bench report written to"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema_version\": 1"), "{json}");
        assert!(json.contains("\"id\":\"E1\""), "{json}");
        // a fresh run at the same sizes passes the check against it
        let out = run(&["bench", "--rounds", "2", "--check", p]).unwrap();
        assert!(out.contains("bench check OK"), "{out}");
        // a doctored baseline (work_units drift) fails it
        let doctored = json.replace("\"work_units\":", "\"work_units\":9");
        let bad = dir.join("BENCH_bad.json");
        std::fs::write(&bad, doctored).unwrap();
        let e = run(&["bench", "--rounds", "2", "--check", bad.to_str().unwrap()]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.msg.contains("work_units drifted"), "{}", e.msg);
        assert!(run(&["bench", "extra-positional"]).is_err());
    }

    #[test]
    fn next_bench_path_appends_after_the_highest_index() {
        let dir = std::env::temp_dir().join("vds-cli-bench-numbering");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_bench_path_in(&dir), "BENCH_1.json");
        // a gap below the maximum must NOT be filled — that would
        // renumber the trajectory's history
        for name in ["BENCH_1.json", "BENCH_3.json", "BENCH_x.json", "other"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        assert_eq!(next_bench_path_in(&dir), "BENCH_4.json");
    }

    #[test]
    fn duplex_journal_flag_writes_a_replayable_journal() {
        let dir = std::env::temp_dir().join("vds-cli-journal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal.jsonl");
        let p = path.to_str().unwrap();
        let out = run(&["duplex", "smt-det", "12", "4", "--journal", p]).unwrap();
        assert!(out.contains("journal ("), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let j = vds_obs::Journal::from_jsonl(&text).unwrap();
        let h = j.header().expect("header present");
        assert_eq!(
            (h.backend.as_str(), h.scheme.as_str()),
            ("micro", "smt-det")
        );
        assert_eq!(h.meta("fault"), Some("transient:mem:4:9"));
        assert_eq!(h.meta("fault_round"), Some("4"));
        assert_eq!(h.meta("fault_victim"), Some("v2"));
        assert_eq!(j.divergences(), 1);
        // byte-identical on a re-run (the determinism contract)
        run(&["duplex", "smt-det", "12", "4", "--journal", p]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
    }

    #[test]
    fn alpha_ledger_report_is_worker_invariant_and_exact() {
        let w1 = run(&["alpha", "1", "--json", "--workers", "1"]).unwrap();
        let w8 = run(&["alpha", "1", "--json", "--workers", "8"]).unwrap();
        assert_eq!(w1, w8, "report bytes must not depend on --workers");
        assert!(
            w1.starts_with("{\"schema\":\"vds.report.v1\",\"kind\":\"alpha\""),
            "{w1}"
        );
        assert!(w1.contains("\"mean_alpha\":"), "{w1}");
        assert!(w1.contains("\"dominant_stall\":"), "{w1}");
        let text = run(&["alpha", "1"]).unwrap();
        assert!(text.contains("alpha attribution:"), "{text}");
        assert!(text.contains("mean alpha"), "{text}");
    }

    #[test]
    fn alpha_accepts_a_program_and_reports_traps_as_one_line_errors() {
        let dir = std::env::temp_dir().join("vds-cli-alpha");
        std::fs::create_dir_all(&dir).unwrap();
        // a well-formed program: self-pair ledger over one .s file
        let good = dir.join("good.s");
        std::fs::write(
            &good,
            "addi r1, r0, 6\nmul r2, r1, r1\nst r2, 0(r0)\nhalt\n",
        )
        .unwrap();
        let out = run(&["alpha", good.to_str().unwrap()]).unwrap();
        assert!(out.contains("alpha attribution: 1 pair(s)"), "{out}");
        assert!(out.contains("good+good"), "{out}");
        // a program that traps (jump past the text section) must be a
        // single-line runtime error, not a panic
        let bad = dir.join("bad.s");
        std::fs::write(&bad, "j 40\nhalt\n").unwrap();
        let e = run(&["alpha", bad.to_str().unwrap()]).unwrap_err();
        assert_eq!(e.code, 1);
        assert_eq!(e.msg.lines().count(), 1, "one-line error: {}", e.msg);
        assert!(e.msg.contains("trapped"), "{}", e.msg);
    }

    #[test]
    fn alpha_metrics_flag_writes_the_ledger_families() {
        let dir = std::env::temp_dir().join("vds-cli-alpha-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("alpha.csv");
        let p = path.to_str().unwrap();
        run(&["alpha", "1", "--metrics", p]).unwrap();
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.contains("gauge,smt.alpha"), "{csv}");
        assert!(csv.contains("histogram,alpha_excess_cycles"), "{csv}");
    }

    #[test]
    fn malformed_user_input_is_a_one_line_error_never_a_panic() {
        // the panic-hygiene contract for every user-reachable surface:
        // malformed numbers, bad ports, and missing files must come back
        // as a single-line CliError (exit 1 or 2), never as a panic or a
        // multi-line debug dump
        let cases: &[&[&str]] = &[
            &["duplex", "smt-det", "--rounds", "banana"],
            &["duplex", "smt-det", "--rounds", "-3"],
            &["duplex", "smt-det", "--rounds", "18446744073709551616"],
            &["serve", "--port", "banana"],
            &["serve", "--port", "99999999"],
            &["serve", "--port", "-1"],
            &["vm", "run", "checksum", "nope"],
            &["vm", "duplex", "checksum", "12", "x"],
            &["replay", "/nonexistent/journal.jsonl"],
            &["faults", "/nonexistent/journal.jsonl"],
            &["conformance", "/nonexistent/journal.jsonl"],
            &["audit", "diff", "/nonexistent/a", "/nonexistent/b"],
            &["asm", "/nonexistent/file.s"],
            &["alpha", "/nonexistent/file.s"],
            &["bench", "--check", "/nonexistent/BENCH.json"],
            &["sweep", "--grid", "/nonexistent/grid.toml"],
        ];
        for case in cases {
            let e = run(case).unwrap_err();
            assert!(e.code == 1 || e.code == 2, "{case:?}: code {}", e.code);
            assert_eq!(e.msg.lines().count(), 1, "{case:?}: {}", e.msg);
            assert!(!e.msg.is_empty(), "{case:?}");
        }
    }

    #[test]
    fn experiment_registry_spellings_and_size_knobs() {
        // registry lookup is spelling-tolerant now
        let out = run(&["experiment", "E08"]).unwrap();
        assert!(out.contains("1.38"), "{out}");
        // the size knob reaches the experiment (tiny e1 still reports)
        let out = run(&["experiment", "e1", "--rounds", "5"]).unwrap();
        assert!(out.contains("E1"), "{out}");
    }
}
