//! `vds vm` — assemble, run and duplex the bytecode-VM seed programs.
//!
//! Three verbs over the register-based bytecode VM (`vds-vm`):
//!
//! * `vds vm asm <program>` — deterministic listing (pc, encoded word,
//!   mnemonic) plus the literal pool.
//! * `vds vm run <program> [rounds]` — a single undiversified VM driven
//!   through the round protocol, checked against the pure-Rust oracle.
//! * `vds vm duplex <program> [rounds] [fault-round]` — two diversified
//!   variants under the VDS engine ([`vds_core::vm_vds`]), with the same
//!   `--journal` / `--metrics` / `--json` recording surface as
//!   `vds duplex`; journals replay with `vds replay`.
//!
//! `vds duplex --workload vm:<program>` routes here too, so the micro
//! and VM workloads share one flag vocabulary.

use crate::{args, parse_num, write_atomic, write_metrics, CliError, Flags};
use std::fmt::Write as _;
use vds_core::vm_vds::{run_vm_duplex_with_recorder, run_vm_duplex_with_state, VmConfig, VmFault};
use vds_core::Victim;
use vds_fault::vm::VmFaultSite;
use vds_vm::{run_round, seed_program, Outcome, SeedProgram, Vm};

/// Comma-separated seed-program names for error messages.
fn known_programs() -> String {
    vds_vm::SEED_PROGRAMS
        .iter()
        .map(|p| p.name)
        .collect::<Vec<_>>()
        .join(", ")
}

fn lookup_program(name: &str) -> Result<&'static SeedProgram, CliError> {
    seed_program(name).ok_or_else(|| {
        CliError::usage(format!(
            "vm: unknown program `{name}` (known: {})",
            known_programs()
        ))
    })
}

/// Parse a `--fault` spec: a [`VmFaultSite`] spec string with an
/// optional `@v1` / `@v2` victim suffix (default victim [`Victim::V2`]).
pub(crate) fn parse_vm_fault_spec(spec: &str) -> Result<(VmFaultSite, Victim), CliError> {
    let (site_str, victim) = match spec.rsplit_once('@') {
        Some((s, "v1")) => (s, Victim::V1),
        Some((s, "v2")) => (s, Victim::V2),
        Some((_, other)) => {
            return Err(CliError::usage(format!(
                "--fault: bad victim `@{other}` (use @v1 or @v2)"
            )))
        }
        None => (spec, Victim::V2),
    };
    let site = VmFaultSite::parse_spec(site_str).ok_or_else(|| {
        CliError::usage(format!(
            "--fault: bad site `{site_str}` (vm:reg:<i>:<b> | vm:pc:<b> | vm:lit:<i>:<b> | vm:mem:<a>:<b>)"
        ))
    })?;
    Ok((site, victim))
}

/// The journal header describing a VM duplex run: program, scheme,
/// seed, `s`, target rounds and the injected fault all live in the
/// header, so `vds replay` can re-execute the run from the file alone.
pub(crate) fn vm_journal_header(
    cfg: &VmConfig,
    rounds: u64,
    fault: Option<&VmFault>,
) -> vds_obs::JournalHeader {
    let mut h = vds_obs::JournalHeader::new("vm", cfg.scheme.name(), cfg.seed, cfg.s, rounds)
        .with_meta("program", &cfg.program);
    if let Some(fl) = fault {
        h = h
            .with_meta("fault", &fl.site.spec_string())
            .with_meta("fault_round", &fl.at_round.to_string())
            .with_meta("fault_victim", &format!("v{}", fl.victim.index() + 1));
    }
    h
}

/// `vds vm <asm|run|duplex> …` dispatch.
pub(crate) fn cmd_vm(args: &[String]) -> Result<String, CliError> {
    let f = args::VM.parse(args)?;
    if f.help {
        return Ok(args::VM.help());
    }
    let verb = f
        .positional
        .first()
        .ok_or_else(|| CliError::usage("vm: missing subcommand (asm|run|duplex)"))?
        .as_str();
    let name = f.positional.get(1).ok_or_else(|| {
        CliError::usage(format!(
            "vm {verb}: missing program (known: {})",
            known_programs()
        ))
    })?;
    let sp = lookup_program(name)?;
    match verb {
        "asm" => {
            if f.positional.len() > 2 {
                return Err(CliError::usage("vm asm: too many arguments"));
            }
            cmd_vm_asm(sp)
        }
        "run" => cmd_vm_run(sp, &f),
        "duplex" => cmd_vm_duplex(sp, &f),
        other => Err(CliError::usage(format!(
            "vm: unknown subcommand `{other}` (asm|run|duplex)"
        ))),
    }
}

fn cmd_vm_asm(sp: &SeedProgram) -> Result<String, CliError> {
    let prog = sp.assembled();
    let mut out = format!("; {} — {}\n", sp.name, sp.title);
    out.push_str(&prog.listing());
    for (i, lit) in prog.lits.iter().enumerate() {
        let _ = writeln!(out, "; lit[{i}] = 0x{lit:08x}");
    }
    Ok(out)
}

/// A single undiversified VM through the round protocol, with the final
/// data memory checked against [`SeedProgram::oracle`].
fn cmd_vm_run(sp: &SeedProgram, f: &Flags) -> Result<String, CliError> {
    let mut rest = f.positional.iter().skip(2);
    let rounds: u32 = match f.rounds {
        Some(n) => u32::try_from(n).map_err(|_| CliError::usage("--rounds too large"))?,
        None => match rest.next() {
            Some(s) => parse_num(s, "round count")?,
            None => 10,
        },
    };
    if rest.next().is_some() {
        return Err(CliError::usage("vm run: too many arguments"));
    }
    let seed = f.seed.unwrap_or(2024);
    let prog = sp.assembled();
    let mut vm = Vm::with_mem(sp.initial_dmem(seed));
    let mut steps = 0u64;
    for round in 1..=rounds {
        let r = run_round(&mut vm, &prog, round, None);
        match r.outcome {
            Outcome::Halted => steps += r.steps,
            Outcome::Trapped { trap, pc } => {
                return Err(CliError::runtime(format!(
                    "vm run: {} trapped at round {round}: {} at pc {pc}",
                    sp.name,
                    trap.name()
                )))
            }
            Outcome::Hung => {
                return Err(CliError::runtime(format!(
                    "vm run: {} exceeded the step budget at round {round}",
                    sp.name
                )))
            }
        }
    }
    let digest = vm.output_regs();
    let verdict = if vm.mem == sp.oracle(seed, rounds) {
        "output CORRECT"
    } else {
        "output WRONG"
    };
    Ok(format!(
        "{}: {rounds} rounds, {steps} steps, digest {:08x} {:08x} {:08x} {:08x}\n{verdict} versus the oracle\n",
        sp.name, digest[0], digest[1], digest[2], digest[3]
    ))
}

/// `vds vm duplex <program> [rounds] [fault-round]`.
fn cmd_vm_duplex(sp: &SeedProgram, f: &Flags) -> Result<String, CliError> {
    let scheme = match f.scheme.as_deref() {
        Some(name) => crate::parse_scheme(name)?,
        None => vds_core::Scheme::SmtDeterministic,
    };
    let mut rest = f.positional.iter().skip(2);
    let rounds: u64 = match f.rounds {
        Some(n) => n,
        None => match rest.next() {
            Some(s) => parse_num(s, "round count")?,
            None => 30,
        },
    };
    let fault_round: Option<u32> = match rest.next() {
        Some(s) => Some(parse_num(s, "fault round")?),
        None => None,
    };
    if rest.next().is_some() {
        return Err(CliError::usage("vm duplex: too many arguments"));
    }
    run_vm_duplex_cli(sp, scheme, rounds, fault_round, f)
}

/// `vds duplex <scheme> [rounds] [fault-round] --workload vm:<program>`:
/// the micro command's positional grammar routed onto the VM engine.
pub(crate) fn duplex_via_workload(f: &Flags, workload: &str) -> Result<String, CliError> {
    let Some(name) = workload.strip_prefix("vm:") else {
        return Err(CliError::usage(format!(
            "--workload: `{workload}` is not a workload (vm:<program>, e.g. vm:checksum)"
        )));
    };
    let sp = lookup_program(name)?;
    let scheme = crate::parse_scheme(
        f.positional
            .first()
            .ok_or_else(|| CliError::usage("duplex: missing scheme"))?,
    )?;
    let mut rest = f.positional.iter().skip(1);
    let rounds: u64 = match f.rounds {
        Some(n) => n,
        None => match rest.next() {
            Some(s) => parse_num(s, "round count")?,
            None => 30,
        },
    };
    let fault_round: Option<u32> = match rest.next() {
        Some(s) => Some(parse_num(s, "fault round")?),
        None => None,
    };
    if rest.next().is_some() {
        return Err(CliError::usage("duplex: too many arguments"));
    }
    run_vm_duplex_cli(sp, scheme, rounds, fault_round, f)
}

/// The shared VM duplex runner: build the config and fault, run
/// (recorded when any recording surface is requested), price the
/// journal, and render the same report shape as `vds duplex`.
fn run_vm_duplex_cli(
    sp: &SeedProgram,
    scheme: vds_core::Scheme,
    rounds: u64,
    fault_round: Option<u32>,
    f: &Flags,
) -> Result<String, CliError> {
    let mut cfg = VmConfig::new(sp.name);
    cfg.scheme = scheme;
    if let Some(seed) = f.seed {
        cfg.seed = seed;
    }
    let fault = match (&f.fault, fault_round) {
        (None, None) => None,
        (spec, at) => {
            // a bare fault-round injects the canonical register fault;
            // `--fault` overrides the site/victim (and defaults the
            // round to 3 when no positional was given)
            let (site, victim) = match spec {
                Some(s) => parse_vm_fault_spec(s)?,
                None => (VmFaultSite::Reg { index: 1, bit: 5 }, Victim::V2),
            };
            Some(VmFault {
                at_round: at.unwrap_or(3),
                victim,
                site,
            })
        }
    };
    let record = f.metrics.is_some() || f.trace_capacity.is_some() || f.journal.is_some() || f.json;
    let (r, img, rec) = if record {
        let mut recorder = match f.trace_capacity {
            Some(cap) => vds_obs::Recorder::with_trace_capacity(cap),
            None => vds_obs::Recorder::new(),
        };
        recorder.enable_journal(vm_journal_header(&cfg, rounds, fault.as_ref()));
        let (r, img, rec) = run_vm_duplex_with_recorder(&cfg, fault, rounds, recorder);
        (r, img, Some(rec))
    } else {
        let (r, img) = run_vm_duplex_with_state(&cfg, fault, rounds);
        (r, img, None)
    };
    let want = sp.oracle(cfg.seed, r.committed_rounds as u32);
    let verdict = if img == want {
        "output CORRECT"
    } else {
        "output WRONG"
    };
    let mut out = format!(
        "{} on {}\n{r}\n{verdict} versus the oracle\n",
        sp.name,
        scheme.name()
    );
    if let Some(mut rec) = rec {
        rec.export_journal_metrics();
        if let Ok(tracker) = vds_obs::ConformanceTracker::for_journal(
            rec.journal(),
            vds_obs::conformance::DEFAULT_WINDOW,
            vds_obs::conformance::DEFAULT_TOLERANCE,
        ) {
            let mut reg = vds_obs::Registry::new();
            tracker.export_metrics(&mut reg);
            rec.merge_registry(&reg);
        }
        if let Ok(tracker) = vds_obs::ForensicsTracker::for_journal(rec.journal()) {
            let mut reg = vds_obs::Registry::new();
            tracker.export_metrics(&mut reg);
            rec.merge_registry(&reg);
        }
        let journal_note = match &f.journal {
            Some(path) => {
                write_atomic(path, rec.journal().to_jsonl().as_bytes())
                    .map_err(|e| CliError::runtime(format!("cannot write `{path}`: {e}")))?;
                Some(format!(
                    "journal ({} rounds) written to {path} — replay with `vds replay {path}`\n",
                    rec.journal().len()
                ))
            }
            None => None,
        };
        let journal_summary = rec.journal().summary_json();
        let (registry, trace, spans) = rec.into_parts();
        if f.json {
            out = vds_obs::JsonObj::report("vm-duplex")
                .str("program", sp.name)
                .str("verdict", if img == want { "correct" } else { "wrong" })
                .raw("journal", &journal_summary)
                .raw("metrics", &registry.to_json_object())
                .finish();
            out.push('\n');
        }
        if let Some(path) = &f.metrics {
            let note = write_metrics(path, &registry, Some(&trace), Some(&spans))?;
            if f.json {
                vds_obs::log_info!("cli", "{}", note.trim_end());
            } else {
                out.push_str(&note);
            }
        }
        if let Some(note) = journal_note {
            if f.json {
                vds_obs::log_info!("cli", "{}", note.trim_end());
            } else {
                out.push_str(&note);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        crate::dispatch(&v)
    }

    #[test]
    fn vm_asm_lists_every_seed_program() {
        for sp in vds_vm::SEED_PROGRAMS {
            let out = run(&["vm", "asm", sp.name]).unwrap();
            assert!(out.contains(sp.name), "{out}");
            assert!(out.contains("lit[0]"), "{out}");
        }
        let e = run(&["vm", "asm", "bogus"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(
            e.msg.contains("checksum, sort, matmul, strhash"),
            "{}",
            e.msg
        );
    }

    #[test]
    fn vm_run_matches_the_oracle_on_every_program() {
        for sp in vds_vm::SEED_PROGRAMS {
            let out = run(&["vm", "run", sp.name, "6"]).unwrap();
            assert!(out.contains("output CORRECT"), "{}: {out}", sp.name);
        }
        // seeded runs stay correct too
        let out = run(&["vm", "run", "sort", "--rounds", "4", "--seed", "99"]).unwrap();
        assert!(out.contains("output CORRECT"), "{out}");
    }

    #[test]
    fn vm_duplex_fault_free_and_faulty() {
        let ok = run(&["vm", "duplex", "checksum", "12"]).unwrap();
        assert!(ok.contains("output CORRECT"), "{ok}");
        let faulty = run(&["vm", "duplex", "checksum", "15", "4"]).unwrap();
        assert!(faulty.contains("output CORRECT"), "{faulty}");
        let spec = run(&[
            "vm",
            "duplex",
            "matmul",
            "12",
            "3",
            "--fault",
            "vm:mem:5:9@v1",
        ])
        .unwrap();
        assert!(spec.contains("output CORRECT"), "{spec}");
        let e = run(&["vm", "duplex", "checksum", "--fault", "nope"]).unwrap_err();
        assert_eq!(e.code, 2);
        let e = run(&["vm", "duplex", "checksum", "--fault", "vm:pc:2@v9"]).unwrap_err();
        assert!(e.msg.contains("@v9"), "{}", e.msg);
    }

    #[test]
    fn vm_missing_or_unknown_subcommand_is_a_usage_error() {
        assert_eq!(run(&["vm"]).unwrap_err().code, 2);
        assert_eq!(run(&["vm", "frob", "checksum"]).unwrap_err().code, 2);
        assert_eq!(run(&["vm", "run"]).unwrap_err().code, 2);
    }

    #[test]
    fn vm_duplex_journal_is_replayable_and_byte_stable() {
        let dir = std::env::temp_dir().join("vds-cli-vm-journal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vm.journal.jsonl");
        let p = path.to_str().unwrap();
        let out = run(&["vm", "duplex", "strhash", "12", "4", "--journal", p]).unwrap();
        assert!(out.contains("journal ("), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let j = vds_obs::Journal::from_jsonl(&text).unwrap();
        let h = j.header().expect("header present");
        assert_eq!((h.backend.as_str(), h.scheme.as_str()), ("vm", "smt-det"));
        assert_eq!(h.meta("program"), Some("strhash"));
        assert_eq!(h.meta("fault"), Some("vm:reg:1:5"));
        assert_eq!(h.meta("fault_round"), Some("4"));
        assert_eq!(h.meta("fault_victim"), Some("v2"));
        // byte-identical on a re-run (the determinism contract)
        run(&["vm", "duplex", "strhash", "12", "4", "--journal", p]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        // and replayable
        let replay = run(&["replay", p]).unwrap();
        assert!(replay.contains("replay OK"), "{replay}");
    }

    #[test]
    fn duplex_workload_flag_routes_to_the_vm_engine() {
        let out = run(&["duplex", "smt-prob", "12", "--workload", "vm:sort"]).unwrap();
        assert!(out.contains("sort on smt-prob"), "{out}");
        assert!(out.contains("output CORRECT"), "{out}");
        let e = run(&["duplex", "smt-det", "--workload", "micro:sort"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.msg.contains("vm:<program>"), "{}", e.msg);
        let e = run(&["duplex", "smt-det", "--workload", "vm:bogus"]).unwrap_err();
        assert!(e.msg.contains("unknown program"), "{}", e.msg);
        // stats/report keep their micro-only flag set
        let e = run(&["stats", "smt-det", "--workload", "vm:sort"]).unwrap_err();
        assert!(e.msg.contains("unknown flag `--workload`"), "{}", e.msg);
    }

    #[test]
    fn vm_duplex_json_shares_the_report_serializer() {
        let out = run(&["vm", "duplex", "checksum", "12", "4", "--json"]).unwrap();
        assert!(
            out.starts_with("{\"schema\":\"vds.report.v1\",\"kind\":\"vm-duplex\""),
            "{out}"
        );
        assert!(out.contains("\"program\":\"checksum\""), "{out}");
        assert!(out.contains("\"verdict\":\"correct\""), "{out}");
        assert!(out.contains("\"journal\":{\"rounds\":"), "{out}");
        let again = run(&["vm", "duplex", "checksum", "12", "4", "--json"]).unwrap();
        assert_eq!(out, again);
    }
}
