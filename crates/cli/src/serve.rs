//! `vds serve` — a live fault campaign behind the telemetry HTTP server.
//!
//! Binds a [`vds_obs::TelemetryServer`] (default `127.0.0.1:9898`, `--port
//! 0` for an ephemeral port, `--port-file` to publish the bound port),
//! then runs the instrumented serve campaign
//! ([`vds_bench::live::campaign_trial`]) with a
//! [`vds_fault::campaign::HubMonitor`] attached, so `/metrics` and
//! `/progress` fill in while trials run. When the campaign finishes the
//! canonical (shard-ordered) registry and spans replace the live snapshot
//! — from then on `/metrics` is byte-stable for the seed — and the server
//! keeps answering until Ctrl-C/SIGTERM (or immediately exits with
//! `--once`). The monitor only ever sees copies, so `--metrics` exports
//! are byte-identical to a serverless run of the same campaign.

use crate::{write_metrics, CliError, Flags};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use vds_fault::campaign::{run_campaign_journaled, HubMonitor, LOGICAL_SHARDS};
use vds_obs::{log_info, TelemetryHub, TelemetryServer};

/// SIGINT/SIGTERM handling without any dependency: a raw `signal(2)`
/// registration flipping one atomic the wait loop polls.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::AtomicBool;

    /// Set by the handler; polled by the serve wait loop.
    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn handle(_signum: i32) {
        STOP.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Install the handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        unsafe {
            signal(2, handle);
            signal(15, handle);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;

    /// Never set off unix; `--once` is the only clean exit there.
    pub static STOP: AtomicBool = AtomicBool::new(false);

    /// No-op off unix.
    pub fn install() {}
}

pub(crate) fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let f = crate::args::SERVE.parse(args)?;
    if f.help {
        return Ok(crate::args::SERVE.help());
    }
    if !f.positional.is_empty() {
        return Err(CliError::usage("serve: unexpected positional arguments"));
    }
    let opts = ServeOpts::from_flags(&f)?;
    serve(&opts, &f)
}

/// Resolved `vds serve` options.
#[derive(Debug)]
struct ServeOpts {
    addr: String,
    trials: u64,
    target_rounds: u64,
    seed: u64,
    workers: usize,
    scheme: vds_core::Scheme,
    once: bool,
    /// `--workload vm:<program>`: run the campaign trials against the
    /// bytecode-VM seed program instead of the micro workload.
    vm_program: Option<String>,
}

impl ServeOpts {
    fn from_flags(f: &Flags) -> Result<ServeOpts, CliError> {
        let vm_program = match f.workload.as_deref() {
            Some(w) => {
                let name = w.strip_prefix("vm:").ok_or_else(|| {
                    CliError::usage(format!(
                        "--workload: `{w}` is not a workload (vm:<program>, e.g. vm:checksum)"
                    ))
                })?;
                if vds_vm::seed_program(name).is_none() {
                    return Err(CliError::usage(format!(
                        "--workload: unknown program `{name}` (known: {})",
                        vds_vm::SEED_PROGRAMS
                            .iter()
                            .map(|p| p.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )));
                }
                Some(name.to_string())
            }
            None => None,
        };
        let scheme = match f.scheme.as_deref() {
            Some(name) => {
                let s = crate::parse_scheme(name)?;
                if s == vds_core::Scheme::SmtBoosted5 {
                    return Err(CliError::usage(
                        "serve: smt-boost5 runs on the abstract backend only \
                         (micro-capable schemes: conventional, smt-det, smt-prob, \
                         smt-pred, smt-boost3)",
                    ));
                }
                s
            }
            None => vds_core::Scheme::SmtProbabilistic,
        };
        Ok(ServeOpts {
            addr: format!(
                "{}:{}",
                f.addr.as_deref().unwrap_or("127.0.0.1"),
                f.port.unwrap_or(9898)
            ),
            trials: f.trials.unwrap_or(200),
            target_rounds: f.rounds.unwrap_or(40),
            seed: f.seed.unwrap_or(1),
            workers: f
                .workers
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get())),
            scheme,
            once: f.once,
            vm_program,
        })
    }
}

fn serve(opts: &ServeOpts, f: &Flags) -> Result<String, CliError> {
    sig::install();
    // measure the α-attribution ledger before binding: the port file's
    // appearance (what smoke tests wait on) then already implies /alpha
    // holds its report. Deterministic and single-threaded, so the
    // published bytes equal an offline `vds alpha 2 --json` run.
    let alpha_json = vds_smtsim::alpha::measured_alpha(&vds_smtsim::core::CoreConfig::default(), 2)
        .ok()
        .map(|(_, ledger)| ledger.to_json());
    let hub = TelemetryHub::new();
    let server = TelemetryServer::bind(&opts.addr, Arc::clone(&hub))
        .map_err(|e| CliError::runtime(format!("cannot bind `{}`: {e}", opts.addr)))?;
    let bound = server.local_addr();
    if let Some(path) = &f.port_file {
        std::fs::write(path, format!("{}\n", bound.port()))
            .map_err(|e| CliError::runtime(format!("cannot write `{path}`: {e}")))?;
    }
    log_info!(
        "serve",
        "listening on http://{bound} — /metrics /healthz /readyz /trace /progress /journal /conformance /faults /alpha"
    );

    hub.begin_campaign(
        "serve-campaign",
        opts.trials,
        opts.trials.clamp(1, LOGICAL_SHARDS),
    );
    // publish the pre-measured ledger on /alpha before readiness flips,
    // so a scraper never races an empty report
    if let Some(json) = alpha_json {
        hub.publish_alpha(json);
    }
    hub.mark_ready();
    let monitor = HubMonitor::new(Arc::clone(&hub));
    let (base_seed, target_rounds) = (opts.seed, opts.target_rounds);
    let scheme = opts.scheme;
    // the VM workload swaps the per-trial body and journal header; the
    // campaign plumbing (sharding, hub monitoring, journal adoption) is
    // identical either way
    let (report, rec) = match &opts.vm_program {
        Some(program) => {
            let header = vds_bench::live::vm_campaign_journal_header_for(
                program,
                scheme,
                opts.trials,
                base_seed,
                target_rounds,
            );
            run_campaign_journaled(
                "serve",
                opts.trials,
                opts.workers,
                Some(&monitor),
                &header,
                |i, rec| {
                    vds_bench::live::vm_campaign_trial_for(
                        program,
                        scheme,
                        i,
                        base_seed,
                        target_rounds,
                        rec,
                    )
                },
            )
        }
        None => {
            let header = vds_bench::live::campaign_journal_header_for(
                opts.scheme,
                opts.trials,
                base_seed,
                target_rounds,
            );
            run_campaign_journaled(
                "serve",
                opts.trials,
                opts.workers,
                Some(&monitor),
                &header,
                |i, rec| {
                    vds_bench::live::campaign_trial_for(scheme, i, base_seed, target_rounds, rec)
                },
            )
        }
    };
    // swap the completion-ordered live view for the canonical
    // shard-ordered result: /metrics is byte-stable from here on
    hub.replace_registry(rec.registry().clone());
    hub.publish_spans(rec.spans());
    hub.publish_journal(rec.journal());
    // price the campaign journal against the closed forms and publish
    // the residual report on /conformance (the registry already carries
    // the conformance.* gauges from the campaign merge)
    let conformance_note = match vds_obs::ConformanceTracker::for_journal(
        rec.journal(),
        vds_obs::conformance::DEFAULT_WINDOW,
        vds_obs::conformance::DEFAULT_TOLERANCE,
    ) {
        Ok(tracker) => {
            let r = tracker.report();
            hub.publish_conformance(r.to_json());
            Some(r.render_text())
        }
        Err(_) => None,
    };
    // per-fault lifecycle forensics over the same journal, published on
    // /faults (the registry already carries the faults.* counters from
    // the campaign merge)
    let faults_note = match vds_obs::ForensicsTracker::for_journal(rec.journal()) {
        Ok(tracker) => {
            let r = tracker.report();
            hub.publish_faults(r.to_json());
            Some(r.render_text())
        }
        Err(_) => None,
    };
    hub.mark_done();
    log_info!(
        "serve",
        "campaign finished: {} trials in {:.2}s",
        report.trials,
        hub.elapsed_secs()
    );

    let workload = match &opts.vm_program {
        Some(p) => format!(", workload vm:{p}"),
        None => String::new(),
    };
    let mut out = format!(
        "vds serve — campaign on http://{bound} (scheme {}{workload})\n{report}",
        opts.scheme.name()
    );
    if let Some(note) = conformance_note {
        out.push_str(&note);
    }
    if let Some(note) = faults_note {
        out.push_str(&note);
    }
    if let Some(path) = &f.metrics {
        out.push_str(&write_metrics(
            path,
            rec.registry(),
            Some(rec.trace()),
            Some(rec.spans()),
        )?);
    }
    if let Some(path) = &f.journal {
        crate::write_atomic(path, rec.journal().to_jsonl().as_bytes())
            .map_err(|e| CliError::runtime(format!("cannot write `{path}`: {e}")))?;
        let _ = writeln!(
            out,
            "journal ({} rounds) written to {path} — replay with `vds replay {path}`",
            rec.journal().len()
        );
    }
    if !opts.once {
        log_info!("serve", "serving until SIGINT/SIGTERM (Ctrl-C to stop)");
        while !sig::STOP.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        log_info!("serve", "signal received — shutting down");
    }
    server.shutdown();
    out.push_str("telemetry server shut down cleanly\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_opts_defaults_and_overrides() {
        let d = ServeOpts::from_flags(&Flags::default()).unwrap();
        assert_eq!(d.addr, "127.0.0.1:9898");
        assert_eq!((d.trials, d.target_rounds, d.seed), (200, 40, 1));
        assert_eq!(d.scheme, vds_core::Scheme::SmtProbabilistic);
        assert!(!d.once);
        let f = Flags {
            addr: Some("0.0.0.0".into()),
            port: Some(0),
            trials: Some(12),
            rounds: Some(25),
            seed: Some(7),
            scheme: Some("smt-det".into()),
            once: true,
            ..Flags::default()
        };
        let o = ServeOpts::from_flags(&f).unwrap();
        assert_eq!(o.addr, "0.0.0.0:0");
        assert_eq!((o.trials, o.target_rounds, o.seed), (12, 25, 7));
        assert_eq!(o.scheme, vds_core::Scheme::SmtDeterministic);
        assert!(o.once);
    }

    #[test]
    fn serve_workload_flag_selects_a_vm_program() {
        let f = Flags {
            workload: Some("vm:matmul".into()),
            ..Flags::default()
        };
        let o = ServeOpts::from_flags(&f).unwrap();
        assert_eq!(o.vm_program.as_deref(), Some("matmul"));
        for bad in ["micro:matmul", "vm:bogus"] {
            let f = Flags {
                workload: Some(bad.into()),
                ..Flags::default()
            };
            let e = ServeOpts::from_flags(&f).unwrap_err();
            assert_eq!(e.code, 2, "{bad}");
        }
    }

    #[test]
    fn serve_rejects_the_abstract_only_scheme() {
        let f = Flags {
            scheme: Some("smt-boost5".into()),
            ..Flags::default()
        };
        let e = ServeOpts::from_flags(&f).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.msg.contains("abstract backend only"), "{}", e.msg);
    }

    #[test]
    fn serve_rejects_positionals() {
        let args = vec!["extra".to_string()];
        assert!(cmd_serve(&args).is_err());
    }
}
