//! The `vds` binary: forwards arguments to the testable dispatcher.

fn main() {
    vds_obs::logging::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match vds_cli::dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{}", e.msg);
            std::process::exit(e.code);
        }
    }
}
