//! `vds replay` and `vds audit diff` — consumers of the flight-recorder
//! journal.
//!
//! `vds replay <journal>` re-executes the run described by the journal's
//! header (backend, scheme, seed, `s`, target rounds, fault meta) and
//! asserts digest-for-digest agreement with the recorded entries: any
//! nondeterminism, code drift or file tampering surfaces as a structured
//! first-divergence report. `vds audit diff <a> <b>` compares two
//! recordings directly, binary-searching to the first divergent round;
//! it exits 0 when they are identical and 1 with the report otherwise.

use crate::{parse_scheme, read_file, CliError};
use vds_core::micro_vds::{run_micro_with_recorder, MicroConfig, MicroFault};
use vds_core::Victim;
use vds_fault::model::FaultKind;
use vds_obs::{Journal, JournalHeader, Recorder};

/// `vds replay <journal>` — re-execute and verify a recording.
pub(crate) fn cmd_replay(args: &[String]) -> Result<String, CliError> {
    let f = crate::args::REPLAY.parse(args)?;
    if f.help {
        return Ok(crate::args::REPLAY.help());
    }
    let path = f
        .positional
        .first()
        .ok_or_else(|| CliError::usage("replay: missing journal path"))?;
    if f.positional.len() > 1 {
        return Err(CliError::usage("replay: too many arguments"));
    }
    let recorded = load_journal(path)?;
    let header = recorded
        .header()
        .ok_or_else(|| CliError::runtime(format!("`{path}` has no journal header to replay")))?
        .clone();
    let workers = f
        .workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
    let replayed = re_execute(&header, workers)?;
    match recorded.first_divergence(&replayed) {
        None => Ok(format!(
            "replay OK: {path} — {} rounds re-executed digest-for-digest \
             (backend {}, scheme {}, seed {})\n",
            recorded.len(),
            header.backend,
            header.scheme,
            header.seed
        )),
        Some(d) => Err(CliError::runtime(format!(
            "replay DIVERGED: {path} does not match its re-execution \
             (a = recorded, b = replayed)\n{}",
            d.report()
        ))),
    }
}

/// `vds audit diff <a> <b>` — first divergent round between recordings.
pub(crate) fn cmd_audit(args: &[String]) -> Result<String, CliError> {
    let f = crate::args::AUDIT.parse(args)?;
    if f.help {
        return Ok(crate::args::AUDIT.help());
    }
    if f.positional.first().map(String::as_str) != Some("diff") {
        return Err(CliError::usage("audit: expected `audit diff <a> <b>`"));
    }
    let a_path = f
        .positional
        .get(1)
        .ok_or_else(|| CliError::usage("audit diff: missing first journal"))?;
    let b_path = f
        .positional
        .get(2)
        .ok_or_else(|| CliError::usage("audit diff: missing second journal"))?;
    if f.positional.len() > 3 {
        return Err(CliError::usage("audit diff: too many arguments"));
    }
    let a = load_journal(a_path)?;
    let b = load_journal(b_path)?;
    // a headerless file is a truncated or non-journal input, not a
    // comparable recording — refuse with one clear line, no backtrace
    for (path, j) in [(a_path, &a), (b_path, &b)] {
        if j.header().is_none() {
            return Err(CliError::runtime(format!(
                "`{path}` has no journal header (missing or truncated?)"
            )));
        }
    }
    match a.first_divergence(&b) {
        None => Ok(format!(
            "journals identical: {} entries ({a_path} vs {b_path})\n",
            a.len()
        )),
        Some(d) => Err(CliError::runtime(format!(
            "audit diff {a_path} {b_path}:\n{}",
            d.report()
        ))),
    }
}

fn load_journal(path: &str) -> Result<Journal, CliError> {
    crate::parse_journal_tolerant(path, &read_file(path)?)
}

/// Re-run the recorded configuration, producing a fresh journal.
fn re_execute(header: &JournalHeader, workers: usize) -> Result<Journal, CliError> {
    match header.backend.as_str() {
        "micro" => replay_micro(header),
        "campaign" => replay_campaign(header, workers),
        "vm" => replay_vm(header, workers),
        other => Err(CliError::runtime(format!(
            "cannot replay `{other}` journals (replayable backends: micro, campaign, vm)"
        ))),
    }
}

fn replay_micro(header: &JournalHeader) -> Result<Journal, CliError> {
    let scheme = parse_scheme(&header.scheme)?;
    if scheme == vds_core::Scheme::SmtBoosted5 {
        return Err(CliError::runtime(
            "micro journals cannot use smt-boost5 (abstract backend only)",
        ));
    }
    let mut cfg = MicroConfig::new(scheme, header.s);
    cfg.seed = header.seed;
    let fault = match header.meta("fault") {
        Some(spec) => {
            let kind = FaultKind::parse_spec(spec).ok_or_else(|| {
                CliError::runtime(format!("journal header has malformed fault spec `{spec}`"))
            })?;
            let at_round = header
                .meta("fault_round")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    CliError::runtime("journal header has a fault but no valid fault_round")
                })?;
            let victim = match header.meta("fault_victim") {
                Some("v1") => Victim::V1,
                Some("v2") | None => Victim::V2,
                Some(other) => {
                    return Err(CliError::runtime(format!(
                        "journal header has unknown fault_victim `{other}`"
                    )))
                }
            };
            Some(MicroFault {
                at_round,
                victim,
                kind,
            })
        }
        None => None,
    };
    let mut rec = Recorder::new();
    rec.enable_journal(header.clone());
    let (_, _, rec) = run_micro_with_recorder(&cfg, fault, header.target_rounds, rec);
    Ok(rec.journal().clone())
}

fn replay_campaign(header: &JournalHeader, workers: usize) -> Result<Journal, CliError> {
    use vds_bench::live::campaign_trial_for;
    use vds_fault::campaign::run_campaign_journaled;
    // campaign journals record the serve campaign under the scheme the
    // header names (`vds serve --scheme`); anything micro-capable replays
    let scheme = parse_scheme(&header.scheme)?;
    if scheme == vds_core::Scheme::SmtBoosted5 {
        return Err(CliError::runtime(
            "campaign journals cannot use smt-boost5 (abstract backend only)",
        ));
    }
    let trials: u64 = header
        .meta("trials")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CliError::runtime("campaign journal header has no valid trials meta"))?;
    let (base_seed, target_rounds) = (header.seed, header.target_rounds);
    let (_, rec) = run_campaign_journaled("replay", trials, workers, None, header, |i, rec| {
        campaign_trial_for(scheme, i, base_seed, target_rounds, rec)
    });
    Ok(rec.journal().clone())
}

/// Replay a bytecode-VM recording. A `trials` meta key marks a serve
/// campaign over the VM workload; without it the journal is a single
/// `vds vm duplex` run.
fn replay_vm(header: &JournalHeader, workers: usize) -> Result<Journal, CliError> {
    use vds_core::vm_vds::{run_vm_duplex_with_recorder, VmConfig, VmFault};
    use vds_fault::vm::VmFaultSite;
    let scheme = parse_scheme(&header.scheme)?;
    let program = header
        .meta("program")
        .ok_or_else(|| CliError::runtime("vm journal header has no program meta"))?;
    if vds_vm::seed_program(program).is_none() {
        return Err(CliError::runtime(format!(
            "vm journal names unknown program `{program}`"
        )));
    }
    if let Some(trials) = header.meta("trials") {
        use vds_fault::campaign::run_campaign_journaled;
        let trials: u64 = trials
            .parse()
            .map_err(|_| CliError::runtime("vm journal header has no valid trials meta"))?;
        let (base_seed, target_rounds) = (header.seed, header.target_rounds);
        let program = program.to_string();
        let (_, rec) = run_campaign_journaled("replay", trials, workers, None, header, |i, rec| {
            vds_bench::live::vm_campaign_trial_for(
                &program,
                scheme,
                i,
                base_seed,
                target_rounds,
                rec,
            )
        });
        return Ok(rec.journal().clone());
    }
    let mut cfg = VmConfig::new(program);
    cfg.scheme = scheme;
    cfg.seed = header.seed;
    cfg.s = header.s;
    let fault = match header.meta("fault") {
        Some(spec) => {
            let site = VmFaultSite::parse_spec(spec).ok_or_else(|| {
                CliError::runtime(format!("journal header has malformed fault spec `{spec}`"))
            })?;
            let at_round = header
                .meta("fault_round")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    CliError::runtime("journal header has a fault but no valid fault_round")
                })?;
            let victim = match header.meta("fault_victim") {
                Some("v1") => Victim::V1,
                Some("v2") | None => Victim::V2,
                Some(other) => {
                    return Err(CliError::runtime(format!(
                        "journal header has unknown fault_victim `{other}`"
                    )))
                }
            };
            Some(VmFault {
                at_round,
                victim,
                site,
            })
        }
        None => None,
    };
    let mut rec = Recorder::new();
    rec.enable_journal(header.clone());
    let (_, _, rec) = run_vm_duplex_with_recorder(&cfg, fault, header.target_rounds, rec);
    Ok(rec.journal().clone())
}

#[cfg(test)]
mod tests {
    use crate::{dispatch, CliError};

    fn run(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vds-cli-audit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Flip the low bit of the first hex digit of the first `d2` digest
    /// at or after `from_line`, returning the corrupted text and the
    /// `round` field of the entry that was hit.
    fn corrupt_one_digest_bit(text: &str, from_line: usize) -> (String, u64) {
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let idx = (from_line..lines.len())
            .find(|&i| lines[i].contains("\"d2\":\""))
            .expect("no entry with a d2 digest");
        let line = &lines[idx];
        let pos = line.find("\"d2\":\"").unwrap() + "\"d2\":\"".len();
        let old = line.as_bytes()[pos] as char;
        let flipped = char::from_digit(old.to_digit(16).unwrap() ^ 1, 16).unwrap();
        let mut corrupted = line.clone();
        corrupted.replace_range(pos..pos + 1, &flipped.to_string());
        let round = corrupted
            .split("\"round\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        lines[idx] = corrupted;
        (lines.join("\n") + "\n", round)
    }

    #[test]
    fn replay_verifies_a_faulty_duplex_recording() {
        let p = tmp("duplex.journal.jsonl");
        let ps = p.to_str().unwrap();
        let out = run(&["duplex", "smt-det", "15", "4", "--journal", ps]).unwrap();
        assert!(out.contains("journal ("), "{out}");
        assert!(out.contains("vds replay"), "{out}");
        let ok = run(&["replay", ps]).unwrap();
        assert!(ok.contains("replay OK"), "{ok}");
        assert!(ok.contains("backend micro, scheme smt-det"), "{ok}");
    }

    #[test]
    fn replay_rejects_a_tampered_recording() {
        let p = tmp("tampered.journal.jsonl");
        let ps = p.to_str().unwrap();
        run(&["duplex", "smt-prob", "12", "--seed", "7", "--journal", ps]).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let (bad, _) = corrupt_one_digest_bit(&text, 1);
        std::fs::write(&p, bad).unwrap();
        let e = run(&["replay", ps]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.msg.contains("replay DIVERGED"), "{}", e.msg);
        assert!(e.msg.contains("d2 (version 2 digest)"), "{}", e.msg);
    }

    #[test]
    fn audit_diff_identical_then_pinpoints_the_corrupted_round() {
        let (pa, pb) = (tmp("a.journal.jsonl"), tmp("b.journal.jsonl"));
        let (sa, sb) = (pa.to_str().unwrap(), pb.to_str().unwrap());
        run(&["duplex", "smt-det", "20", "4", "--journal", sa]).unwrap();
        run(&["duplex", "smt-det", "20", "4", "--journal", sb]).unwrap();
        // recovery roll-forward salvages a round, so entries < rounds
        let ok = run(&["audit", "diff", sa, sb]).unwrap();
        assert!(ok.contains("journals identical: 19 entries"), "{ok}");
        // flip one digest bit deep in b: the diff names that exact round
        let text = std::fs::read_to_string(&pb).unwrap();
        let (bad, round) = corrupt_one_digest_bit(&text, 13);
        std::fs::write(&pb, bad).unwrap();
        let e = run(&["audit", "diff", sa, sb]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(
            e.msg.contains(&format!("round {round})")),
            "expected round {round} in: {}",
            e.msg
        );
        assert!(e.msg.contains("first differing field: d2"), "{}", e.msg);
    }

    #[test]
    fn replay_and_audit_reject_bad_usage() {
        assert_eq!(run(&["replay"]).unwrap_err().code, 2);
        assert_eq!(run(&["audit", "frob"]).unwrap_err().code, 2);
        assert_eq!(run(&["audit", "diff", "only-one"]).unwrap_err().code, 2);
        // a journal without a header cannot be replayed
        let p = tmp("headerless.jsonl");
        std::fs::write(&p, "").unwrap();
        let e = run(&["replay", p.to_str().unwrap()]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.msg.contains("no journal header"), "{}", e.msg);
    }

    #[test]
    fn audit_diff_requires_headers_on_both_journals() {
        // a real recording vs a headerless file: one clear runtime error
        // naming the offending path, never a panic
        let good = tmp("with-header.journal.jsonl");
        let gs = good.to_str().unwrap();
        run(&["duplex", "smt-det", "12", "--journal", gs]).unwrap();
        let bare = tmp("no-header.jsonl");
        std::fs::write(&bare, "").unwrap();
        let bs = bare.to_str().unwrap();
        for (a, b) in [(gs, bs), (bs, gs)] {
            let e = run(&["audit", "diff", a, b]).unwrap_err();
            assert_eq!(e.code, 1);
            assert_eq!(
                e.msg,
                format!("`{bs}` has no journal header (missing or truncated?)")
            );
            assert_eq!(e.msg.lines().count(), 1, "{}", e.msg);
        }
    }

    #[test]
    fn torn_final_line_is_dropped_with_a_warning_not_an_error() {
        // A kill mid-append leaves one incomplete line at the tail; every
        // read-side consumer should truncate-and-warn like the sweep
        // resume journal, not refuse the whole recording.
        let p = tmp("torn-tail.journal.jsonl");
        let ps = p.to_str().unwrap();
        run(&["duplex", "smt-det", "14", "4", "--journal", ps]).unwrap();
        let intact = std::fs::read_to_string(&p).unwrap();
        std::fs::write(&p, format!("{intact}{{\"kind\":\"round\",\"seq\":9")).unwrap();
        for cmd in [
            &["replay", ps][..],
            &["faults", ps][..],
            &["conformance", ps][..],
        ] {
            let cap = vds_obs::logging::capture();
            let out = run(cmd).unwrap_or_else(|e| panic!("{cmd:?}: {}", e.msg));
            let logged = cap.take();
            assert!(
                logged.contains("torn final journal line"),
                "{cmd:?} should warn, logged: {logged} out: {out}"
            );
        }
        // The drop is surgical: corruption before the tail still fails.
        let lines: Vec<&str> = intact.lines().collect();
        let mut mid: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        mid[2] = "not json".into();
        std::fs::write(&p, mid.join("\n")).unwrap();
        let e = run(&["replay", ps]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.msg.contains(&format!("cannot parse `{ps}`")), "{}", e.msg);
        assert!(e.msg.contains("line 3"), "{}", e.msg);
    }

    #[test]
    fn truncated_headers_fail_with_one_parse_line_not_a_panic() {
        // chop the header line mid-JSON: both consumers report a single
        // `cannot parse` line with exit code 1
        let p = tmp("truncated.journal.jsonl");
        let ps = p.to_str().unwrap();
        run(&["duplex", "smt-det", "12", "--journal", ps]).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let header_len = text.lines().next().unwrap().len();
        std::fs::write(&p, &text[..header_len / 2]).unwrap();
        for cmd in [&["replay", ps][..], &["audit", "diff", ps, ps][..]] {
            let e = run(cmd).unwrap_err();
            assert_eq!(e.code, 1, "{cmd:?}");
            assert!(e.msg.contains(&format!("cannot parse `{ps}`")), "{}", e.msg);
            assert_eq!(e.msg.lines().count(), 1, "{}", e.msg);
        }
    }

    #[test]
    fn vm_campaign_journals_replay_and_reject_tampering() {
        use vds_bench::live::{vm_campaign_journal_header_for, vm_campaign_trial_for};
        use vds_fault::campaign::run_campaign_journaled;
        let scheme = vds_core::Scheme::SmtProbabilistic;
        let header = vm_campaign_journal_header_for("matmul", scheme, 4, 11, 16);
        let (_, rec) = run_campaign_journaled("serve", 4, 2, None, &header, |i, rec| {
            vm_campaign_trial_for("matmul", scheme, i, 11, 16, rec)
        });
        let p = tmp("vm-campaign.journal.jsonl");
        std::fs::write(&p, rec.journal().to_jsonl()).unwrap();
        let ok = run(&["replay", p.to_str().unwrap(), "--workers", "3"]).unwrap();
        assert!(ok.contains("replay OK"), "{ok}");
        assert!(ok.contains("backend vm"), "{ok}");
        let text = std::fs::read_to_string(&p).unwrap();
        let (bad, _) = corrupt_one_digest_bit(&text, 1);
        std::fs::write(&p, bad).unwrap();
        let e = run(&["replay", p.to_str().unwrap()]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.msg.contains("replay DIVERGED"), "{}", e.msg);
    }

    #[test]
    fn campaign_replay_honours_the_header_scheme() {
        use vds_bench::live::{campaign_journal_header_for, campaign_trial_for};
        use vds_fault::campaign::run_campaign_journaled;
        let scheme = vds_core::Scheme::SmtDeterministic;
        let header = campaign_journal_header_for(scheme, 4, 42, 20);
        let (_, rec) = run_campaign_journaled("serve", 4, 2, None, &header, |i, rec| {
            campaign_trial_for(scheme, i, 42, 20, rec)
        });
        let p = tmp("det-campaign.journal.jsonl");
        std::fs::write(&p, rec.journal().to_jsonl()).unwrap();
        let ok = run(&["replay", p.to_str().unwrap(), "--workers", "2"]).unwrap();
        assert!(ok.contains("replay OK"), "{ok}");
        assert!(ok.contains("scheme smt-det"), "{ok}");
    }
}
