//! `vds faults` — per-fault lifecycle forensics over a journal.
//!
//! Reconstructs every injected fault's lifecycle from the
//! flight-recorder journal (via `vds-obs`'s [`ForensicsTracker`]) and
//! prints the forensics report: coverage (detected / injected),
//! masked and escaped counts, detection-latency quantiles in rounds
//! and sim-time, mean time-to-recover, and the escape list with each
//! escaped fault's latent round range. The input is either a journal
//! file written by `--journal` (any backend) or the literal word
//! `live`, which fetches `/journal` from a running `vds serve`.
//!
//! The report depends only on the journal bytes, so it is identical
//! for any worker count that produced the recording — the same
//! determinism contract the journal itself carries. A header-only
//! journal (a run that injected nothing and recorded no rounds) is a
//! valid zero-sample input, not an error.

use crate::conformance::fetch_live_journal;
use crate::{read_file, CliError};
use vds_obs::ForensicsTracker;

pub(crate) fn cmd_faults(args: &[String]) -> Result<String, CliError> {
    let f = crate::args::FAULTS.parse(args)?;
    if f.help {
        return Ok(crate::args::FAULTS.help());
    }
    let source = f
        .positional
        .first()
        .ok_or_else(|| CliError::usage("faults: missing journal (a path, or `live`)"))?;
    if f.positional.len() > 1 {
        return Err(CliError::usage("faults: too many arguments"));
    }
    let text = if source == "live" {
        let addr = format!(
            "{}:{}",
            f.addr.as_deref().unwrap_or("127.0.0.1"),
            f.port.unwrap_or(9898)
        );
        fetch_live_journal(&addr)?
    } else {
        read_file(source)?
    };
    let journal = crate::parse_journal_tolerant(source, &text)?;
    if journal.header().is_none() {
        return Err(CliError::runtime(format!(
            "`{source}` has no journal header (missing or truncated?)"
        )));
    }
    let tracker = ForensicsTracker::for_journal(&journal).map_err(CliError::runtime)?;
    let report = tracker.report();
    if f.json {
        let mut out = report.to_json();
        out.push('\n');
        Ok(out)
    } else {
        Ok(report.render_text())
    }
}

#[cfg(test)]
mod tests {
    use crate::{dispatch, CliError};

    fn run(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vds-cli-faults");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn faults_reports_over_a_recorded_duplex_journal() {
        let p = tmp("duplex.journal.jsonl");
        let ps = p.to_str().unwrap();
        run(&["duplex", "smt-det", "24", "4", "--journal", ps]).unwrap();
        let out = run(&["faults", ps]).unwrap();
        assert!(out.contains("faults: scheme smt-det, 1 injected"), "{out}");
        assert!(out.contains("coverage: 1/1 detected (100.0%)"), "{out}");
        assert!(out.contains("detection latency (rounds)"), "{out}");
        // the same journal, priced twice, renders byte-identically
        let again = run(&["faults", ps]).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn faults_json_is_a_schema_versioned_report() {
        let p = tmp("json.journal.jsonl");
        let ps = p.to_str().unwrap();
        run(&["duplex", "smt-prob", "24", "9", "--journal", ps]).unwrap();
        let out = run(&["faults", ps, "--json"]).unwrap();
        assert!(
            out.starts_with("{\"schema\":\"vds.report.v1\",\"kind\":\"faults\""),
            "{out}"
        );
        assert!(out.contains("\"scheme\":\"smt-prob\""), "{out}");
        assert!(out.contains("\"injected\":1"), "{out}");
        assert!(out.contains("\"escapes\":["), "{out}");
    }

    #[test]
    fn faults_accepts_a_header_only_journal_as_zero_samples() {
        // a valid journal whose run recorded no rounds: header line only.
        // this is a zero-sample report, not an error (exit 0).
        let p = tmp("header-only.jsonl");
        let header =
            vds_obs::Journal::enabled(vds_obs::JournalHeader::new("micro", "smt-det", 7, 10, 0))
                .to_jsonl();
        assert_eq!(header.lines().count(), 1);
        std::fs::write(&p, &header).unwrap();
        let ps = p.to_str().unwrap();
        let out = run(&["faults", ps]).unwrap();
        assert!(out.contains("0 injected"), "{out}");
        assert!(out.contains("no faults injected (0 samples)"), "{out}");
        let json = run(&["faults", ps, "--json"]).unwrap();
        assert!(json.contains("\"injected\":0"), "{json}");
        assert!(json.contains("\"coverage\":1"), "{json}");
    }

    #[test]
    fn faults_rejects_headerless_and_missing_inputs() {
        let bare = tmp("no-header.jsonl");
        std::fs::write(&bare, "").unwrap();
        let bs = bare.to_str().unwrap();
        let e = run(&["faults", bs]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.msg.contains("no journal header"), "{}", e.msg);
        let e = run(&["faults", "/nonexistent/x.jsonl"]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.msg.contains("cannot read"), "{}", e.msg);
        assert_eq!(run(&["faults"]).unwrap_err().code, 2);
        assert_eq!(run(&["faults", bs, "extra"]).unwrap_err().code, 2);
    }
}
