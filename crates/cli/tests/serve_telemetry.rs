//! End-to-end tests of the live telemetry stack: the byte-identity
//! guarantee (an attached, actively-scraped server changes nothing in
//! the canonical campaign exports), the HTTP endpoints while a campaign
//! runs, and the `vds serve --once` binary lifecycle.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vds_fault::campaign::{
    run_campaign_journaled, run_campaign_recorded_as, run_campaign_recorded_monitored, HubMonitor,
    LOGICAL_SHARDS,
};
use vds_obs::{TelemetryHub, TelemetryServer};

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Every non-comment, non-blank exposition line must be `name[{labels}]
/// value` — two fields once the optional label block is stripped.
fn assert_well_formed_exposition(body: &str) {
    assert!(!body.is_empty());
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let rest = match line.find('{') {
            Some(open) => {
                let close = line.rfind('}').expect("label block closes");
                assert!(close > open, "bad label block: {line}");
                format!("name {}", &line[close + 1..].trim())
            }
            None => line.to_string(),
        };
        assert_eq!(
            rest.split_whitespace().count(),
            2,
            "not `name value`: {line}"
        );
    }
}

fn campaign_trial(i: u64, rec: &mut vds_obs::Recorder) -> vds_fault::campaign::TrialResult {
    vds_bench::live::campaign_trial(i, 42, 30, rec)
}

#[test]
fn attached_server_does_not_change_campaign_bytes() {
    const TRIALS: u64 = 48;
    // reference: no server, no monitor
    let (plain_report, plain_rec) = run_campaign_recorded_as("serve", TRIALS, 3, campaign_trial);

    // live: hub + HTTP server, scraped aggressively while trials run
    let hub = TelemetryHub::new();
    hub.begin_campaign("identity", TRIALS, TRIALS.clamp(1, LOGICAL_SHARDS));
    hub.mark_ready();
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let scraper = std::thread::spawn(move || {
        let mut scrapes = 0u32;
        while !stop2.load(Ordering::Acquire) {
            for path in ["/metrics", "/progress", "/healthz", "/trace"] {
                let (status, _) = get(addr, path);
                assert_eq!(status, 200, "{path}");
            }
            scrapes += 1;
        }
        scrapes
    });
    let monitor = HubMonitor::new(Arc::clone(&hub));
    let (report, rec) =
        run_campaign_recorded_monitored("serve", TRIALS, 3, &monitor, campaign_trial);
    stop.store(true, Ordering::Release);
    let scrapes = scraper.join().expect("scraper thread");
    assert!(scrapes > 0, "the server was actually scraped");
    server.shutdown();

    // the acceptance criterion: canonical exports are byte-identical
    // with and without the attached, actively-scraped server
    assert_eq!(plain_report, report);
    assert_eq!(plain_rec.registry().to_csv(), rec.registry().to_csv());
    assert_eq!(plain_rec.registry().to_jsonl(), rec.registry().to_jsonl());
    assert_eq!(
        plain_rec.spans().to_chrome_json(),
        rec.spans().to_chrome_json()
    );
}

#[test]
fn endpoints_serve_live_campaign_state_and_stable_metrics() {
    const TRIALS: u64 = 24;
    let hub = TelemetryHub::new();
    hub.begin_campaign("live", TRIALS, TRIALS.clamp(1, LOGICAL_SHARDS));
    hub.mark_ready();
    let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
    let addr = server.local_addr();

    let monitor = HubMonitor::new(Arc::clone(&hub));
    let header = vds_bench::live::campaign_journal_header(TRIALS, 42, 30);
    let (_, rec) =
        run_campaign_journaled("serve", TRIALS, 2, Some(&monitor), &header, campaign_trial);
    hub.replace_registry(rec.registry().clone());
    hub.publish_spans(rec.spans());
    hub.publish_journal(rec.journal());
    hub.mark_done();

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_well_formed_exposition(&metrics);
    assert!(
        metrics.contains("# TYPE campaign_trials_total counter"),
        "{metrics}"
    );
    assert!(metrics.contains("vds_detections_total"), "{metrics}");
    assert!(metrics.contains("smt_thread0_utilization"), "{metrics}");
    assert!(metrics.contains("journal_rounds_total"), "{metrics}");

    let (status, progress) = get(addr, "/progress");
    assert_eq!(status, 200);
    assert!(progress.contains("\"done\":true"), "{progress}");
    assert!(
        progress.contains(&format!("\"trials_done\":{TRIALS}")),
        "{progress}"
    );
    assert!(progress.contains("\"counters\":{"), "{progress}");
    assert!(
        progress.contains(&format!("\"journal\":{{\"rounds\":{}", rec.journal().len())),
        "{progress}"
    );

    let (status, trace) = get(addr, "/trace");
    assert_eq!(status, 200);
    assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
    assert!(trace.contains("\"name\":\"trial\""), "{trace}");

    // the flight-recorder journal is served verbatim
    let (status, journal) = get(addr, "/journal");
    assert_eq!(status, 200);
    assert!(
        journal.starts_with("{\"kind\":\"journal_header\""),
        "{journal}"
    );
    assert_eq!(journal, rec.journal().to_jsonl());

    // /metrics bytes are a pure function of the published canonical
    // registry: a re-run of the same fixed-seed campaign produces the
    // exact same exposition
    let (_, rec2) = run_campaign_journaled("serve", TRIALS, 5, None, &header, campaign_trial);
    hub.replace_registry(rec2.registry().clone());
    let (_, metrics2) = get(addr, "/metrics");
    assert_eq!(metrics, metrics2, "fixed-seed /metrics must be byte-stable");
    assert_eq!(
        rec.journal().to_jsonl(),
        rec2.journal().to_jsonl(),
        "fixed-seed journal must be byte-stable across worker counts"
    );

    server.shutdown();
}

#[test]
fn serve_once_binary_lifecycle() {
    let dir = std::env::temp_dir().join("vds-serve-once-test");
    std::fs::create_dir_all(&dir).unwrap();
    let port_file = dir.join("port");
    let journal_file = dir.join("serve.journal.jsonl");
    let _ = std::fs::remove_file(&port_file);
    let _ = std::fs::remove_file(&journal_file);
    let child = std::process::Command::new(env!("CARGO_BIN_EXE_vds"))
        .args([
            "serve",
            "--port",
            "0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--trials",
            "8",
            "--rounds",
            "10",
            "--journal",
            journal_file.to_str().unwrap(),
            "--once",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn vds serve");

    // wait for the port file, then hit the endpoints while it runs
    let deadline = Instant::now() + Duration::from_secs(60);
    let port: u16 = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if let Ok(p) = s.trim().parse() {
                break p;
            }
        }
        assert!(Instant::now() < deadline, "port file never appeared");
        std::thread::sleep(Duration::from_millis(20));
    };
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let out = child.wait_with_output().expect("vds serve exits");
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trials: 8"), "{stdout}");
    assert!(stdout.contains("shut down cleanly"), "{stdout}");
    assert!(stdout.contains("journal ("), "{stdout}");
    // the recorded journal is a parseable flight-recorder file
    let journal = std::fs::read_to_string(&journal_file).expect("journal file written");
    assert!(
        journal.starts_with("{\"kind\":\"journal_header\""),
        "{journal}"
    );
    assert!(journal.contains("\"backend\":\"campaign\""), "{journal}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("\"component\":\"serve\""), "{stderr}");
    assert!(stderr.contains("listening on http://"), "{stderr}");
}
