//! Cross-crate determinism of the observability layer, end to end
//! through the CLI: for a fixed seed the exported metrics CSV and event
//! trace must be byte-identical across consecutive runs and across
//! worker counts (campaign partitioning uses fixed logical shards, so
//! `--workers` may change wall-clock but never content).

use vds_cli::dispatch;

fn run(args: &[&str]) -> String {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    dispatch(&v).unwrap_or_else(|e| panic!("{args:?}: {}", e.msg))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("vds-metrics-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn duplex_exports_are_bytewise_reproducible() {
    let a = tmp("dup-a.csv");
    let b = tmp("dup-b.csv");
    for p in [&a, &b] {
        run(&[
            "duplex",
            "smt-det",
            "12",
            "4",
            "--seed",
            "2024",
            "--metrics",
            p.to_str().unwrap(),
        ]);
    }
    let (csv_a, csv_b) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    assert!(!csv_a.is_empty());
    assert_eq!(csv_a, csv_b, "metrics CSV differs between identical runs");
    let trace_a = std::fs::read(a.with_extension("csv.trace.jsonl")).unwrap();
    let trace_b = std::fs::read(b.with_extension("csv.trace.jsonl")).unwrap();
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "trace differs between identical runs");
}

#[test]
fn campaign_metrics_are_invariant_across_worker_counts() {
    // E10 runs two fault-injection campaigns; its merged registry must
    // not depend on how many OS threads partitioned the trials
    let mut exports = Vec::new();
    for workers in ["1", "8"] {
        let p = tmp(&format!("e10-w{workers}.csv"));
        run(&[
            "experiment",
            "e10",
            "--rounds",
            "6",
            "--workers",
            workers,
            "--metrics",
            p.to_str().unwrap(),
        ]);
        exports.push(std::fs::read_to_string(&p).unwrap());
    }
    assert!(exports[0].contains("e10.with_diversity.campaign.trials"));
    assert_eq!(
        exports[0], exports[1],
        "campaign metrics depend on worker count"
    );
}

#[test]
fn experiment_all_exports_per_experiment_metrics() {
    // the acceptance path: `vds experiment all --metrics out.csv` at tiny
    // sizes; every experiment must contribute a prefixed metrics block
    let p = tmp("all.csv");
    run(&[
        "experiment",
        "all",
        "--rounds",
        "4",
        "--workers",
        "2",
        "--metrics",
        p.to_str().unwrap(),
    ]);
    let csv = std::fs::read_to_string(&p).unwrap();
    for k in 1..=14 {
        assert!(
            csv.contains(&format!("counter,e{k}.report.text_bytes")),
            "e{k} missing from merged export:\n{csv}"
        );
    }
}
