//! Feature-matrix determinism: instrumentation must never perturb the
//! simulation.
//!
//! CI builds and runs this file in BOTH cargo configurations — the
//! default (`obs` feature on: hot-path macros compiled in) and
//! `--no-default-features` (`obs` off: macros compile to nothing). The
//! flight-recorder journal keeps working in both, so the per-round
//! digests are comparable across configurations: the obs-off CI job
//! additionally runs `vds audit diff` between a journal written by the
//! obs-on build and one written by the obs-off build. Within one build,
//! these tests pin the same contract from three angles: recording depth
//! must not change the journal, recording must not change the report,
//! and the digests must not drift from their committed values.

fn run(args: &[&str]) -> Result<String, vds_cli::CliError> {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    vds_cli::dispatch(&v)
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vds-feature-matrix-{}",
        if cfg!(feature = "obs") { "on" } else { "off" }
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A plain `vds duplex` journal (no live trace) and a `vds stats` journal
/// with a deliberately tiny trace ring (heavy hot-path activity and
/// overflow) must be byte-identical: the recorder is write-only.
#[test]
fn journal_is_independent_of_recording_depth() {
    let quiet = tmp("quiet.journal.jsonl");
    let noisy = tmp("noisy.journal.jsonl");
    let (qs, ns) = (quiet.to_str().unwrap(), noisy.to_str().unwrap());
    run(&["duplex", "smt-det", "20", "4", "--journal", qs]).unwrap();
    run(&[
        "stats",
        "smt-det",
        "20",
        "4",
        "--trace-capacity",
        "4",
        "--journal",
        ns,
    ])
    .unwrap();
    assert_eq!(
        std::fs::read_to_string(&quiet).unwrap(),
        std::fs::read_to_string(&noisy).unwrap(),
        "journal bytes must not depend on what else is recorded"
    );
    let verdict = run(&["audit", "diff", qs, ns]).unwrap();
    assert!(verdict.contains("journals identical"), "{verdict}");
}

/// The run report and oracle verdict are identical whether the engine is
/// monomorphized against the zero-sized no-op recorder (plain `duplex`)
/// or a fully live one (`stats`).
#[test]
fn report_is_identical_with_and_without_recording() {
    let plain = run(&["duplex", "smt-prob", "18", "6"]).unwrap();
    let recorded = run(&["stats", "smt-prob", "18", "6"]).unwrap();
    // both outputs open with the report line and the oracle verdict
    let head = |s: &str| s.lines().take(2).map(str::to_string).collect::<Vec<_>>();
    assert_eq!(head(&plain), head(&recorded));
    assert!(plain.contains("output CORRECT"), "{plain}");
}

/// The per-round digest sequence is pinned: any drift — between the
/// obs-on and obs-off builds, or over time — fails here before it can
/// hide behind a "both sides changed" replay.
#[test]
fn journal_digests_match_their_pinned_values() {
    let p = tmp("pinned.journal.jsonl");
    let ps = p.to_str().unwrap();
    run(&["duplex", "smt-det", "20", "4", "--journal", ps]).unwrap();
    let text = std::fs::read_to_string(&p).unwrap();
    let j = vds_obs::Journal::from_jsonl(&text).unwrap();
    assert_eq!(j.len(), 19, "20 rounds, one salvaged by roll-forward");
    let last = j.entries().last().unwrap();
    // regenerate with: vds duplex smt-det 20 4 --journal /tmp/j && tail -1 /tmp/j
    assert_eq!(format!("{}", last.d1), "5321ace60d863517f3afe409f8117d62");
    assert_eq!(format!("{}", last.d2), "5321ace60d863517f3afe409f8117d62");
    // and the recording replays digest-for-digest
    let ok = run(&["replay", ps]).unwrap();
    assert!(ok.contains("replay OK"), "{ok}");
}
