//! Fault arrival processes.
//!
//! [`PoissonProcess`] is the memoryless baseline (constant-rate radiation
//! environment). [`BurstyProcess`] is a two-state Markov-modulated Poisson
//! process — quiet periods with a low rate, bursts with a high rate —
//! modelling the paper's §5 scenario where transients cluster ("the
//! probability of transient faults due to radiation is high enough that
//! several of them may occur") and the same hardware part tends to be hit
//! repeatedly due to process variation. Clustering is what makes the
//! fault-history predictors in `vds-predictor` better than chance.

use rand::rngs::SmallRng;
use rand::Rng as _;

/// A process producing fault arrival times.
pub trait ArrivalProcess {
    /// Time until the next fault, drawn from the process.
    fn next_interarrival(&mut self, rng: &mut SmallRng) -> f64;

    /// Expected long-run rate (faults per unit time).
    fn mean_rate(&self) -> f64;

    /// `true` if the process is currently in a burst state (always
    /// `false` for memoryless processes); the injector uses this to bias
    /// *which version* gets hit during a burst.
    fn in_burst(&self) -> bool {
        false
    }
}

fn exp_sample(rng: &mut SmallRng, rate: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate
}

/// Memoryless arrivals at constant `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    /// Faults per unit time.
    pub rate: f64,
}

impl PoissonProcess {
    /// # Panics
    /// Panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        PoissonProcess { rate }
    }
}

impl ArrivalProcess for PoissonProcess {
    fn next_interarrival(&mut self, rng: &mut SmallRng) -> f64 {
        exp_sample(rng, self.rate)
    }

    fn mean_rate(&self) -> f64 {
        self.rate
    }
}

/// Two-state Markov-modulated Poisson process: `quiet_rate` in the quiet
/// state, `burst_rate` in the burst state; after each arrival the state
/// switches with the corresponding probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyProcess {
    /// Arrival rate in the quiet state.
    pub quiet_rate: f64,
    /// Arrival rate in the burst state (≫ quiet_rate).
    pub burst_rate: f64,
    /// P(quiet → burst) evaluated after each arrival.
    pub p_enter_burst: f64,
    /// P(burst → quiet) evaluated after each arrival.
    pub p_exit_burst: f64,
    burst: bool,
}

impl BurstyProcess {
    /// # Panics
    /// Panics on non-positive rates or probabilities outside `[0, 1]`.
    pub fn new(quiet_rate: f64, burst_rate: f64, p_enter_burst: f64, p_exit_burst: f64) -> Self {
        assert!(quiet_rate > 0.0 && burst_rate > 0.0);
        assert!((0.0..=1.0).contains(&p_enter_burst));
        assert!((0.0..=1.0).contains(&p_exit_burst));
        BurstyProcess {
            quiet_rate,
            burst_rate,
            p_enter_burst,
            p_exit_burst,
            burst: false,
        }
    }

    /// The paper-motivated default: rare background transients with
    /// occasional dense bursts.
    pub fn radiation_default(base_rate: f64) -> Self {
        Self::new(base_rate, base_rate * 25.0, 0.05, 0.2)
    }
}

impl ArrivalProcess for BurstyProcess {
    fn next_interarrival(&mut self, rng: &mut SmallRng) -> f64 {
        let rate = if self.burst {
            self.burst_rate
        } else {
            self.quiet_rate
        };
        let dt = exp_sample(rng, rate);
        // state switch after the arrival
        if self.burst {
            if rng.gen::<f64>() < self.p_exit_burst {
                self.burst = false;
            }
        } else if rng.gen::<f64>() < self.p_enter_burst {
            self.burst = true;
        }
        dt
    }

    fn mean_rate(&self) -> f64 {
        // stationary distribution of the embedded two-state chain
        let pi_burst = self.p_enter_burst / (self.p_enter_burst + self.p_exit_burst);
        pi_burst * self.burst_rate + (1.0 - pi_burst) * self.quiet_rate
    }

    fn in_burst(&self) -> bool {
        self.burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn poisson_mean_interarrival() {
        let mut p = PoissonProcess::new(0.5);
        let mut r = rng(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| p.next_interarrival(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
        assert_eq!(p.mean_rate(), 0.5);
        assert!(!p.in_burst());
    }

    #[test]
    fn poisson_has_no_memory() {
        // Coefficient of variation of exponential interarrivals is 1.
        let mut p = PoissonProcess::new(1.0);
        let mut r = rng(2);
        let xs: Vec<f64> = (0..50_000).map(|_| p.next_interarrival(&mut r)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        let cv = v.sqrt() / m;
        assert!((cv - 1.0).abs() < 0.05, "cv={cv}");
    }

    #[test]
    fn bursty_produces_clusters() {
        // The bursty process must be over-dispersed: CV of interarrivals
        // clearly above 1.
        let mut b = BurstyProcess::radiation_default(0.05);
        let mut r = rng(3);
        let xs: Vec<f64> = (0..50_000).map(|_| b.next_interarrival(&mut r)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        let cv = v.sqrt() / m;
        assert!(cv > 1.2, "bursty cv={cv} should exceed exponential's 1.0");
    }

    #[test]
    fn bursty_visits_both_states() {
        let mut b = BurstyProcess::radiation_default(0.1);
        let mut r = rng(4);
        let mut burst_seen = false;
        let mut quiet_seen = false;
        for _ in 0..1000 {
            b.next_interarrival(&mut r);
            if b.in_burst() {
                burst_seen = true;
            } else {
                quiet_seen = true;
            }
        }
        assert!(burst_seen && quiet_seen);
    }

    #[test]
    fn bursty_mean_rate_between_extremes() {
        let b = BurstyProcess::new(0.1, 2.0, 0.1, 0.3);
        let rate = b.mean_rate();
        assert!(rate > 0.1 && rate < 2.0, "rate={rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = BurstyProcess::radiation_default(0.1);
        let mut b = BurstyProcess::radiation_default(0.1);
        let mut ra = rng(9);
        let mut rb = rng(9);
        for _ in 0..100 {
            assert_eq!(a.next_interarrival(&mut ra), b.next_interarrival(&mut rb));
        }
    }
}
