//! EDC-protected memory.
//!
//! The paper's system model excludes cross-address-space corruption partly
//! because "the detection of this case can be covered by applying error
//! detecting codes for data in the memory". This module is that memory: a
//! word array where every word carries a Hamming SEC-DED codeword,
//! transparently correcting single-bit upsets on read, detecting doubles,
//! and supporting background *scrubbing* (periodically sweeping memory to
//! correct latent single-bit errors before they pair up into uncorrectable
//! doubles).

use crate::edc::hamming::{decode, encode, flip_bit, Codeword, Decoded};

/// What a protected read observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The word was clean.
    Clean(u32),
    /// A single-bit error was corrected (and rewritten in place).
    Corrected(u32),
    /// An uncorrectable double-bit error; the stored data is lost.
    Uncorrectable,
}

impl ReadOutcome {
    /// The value, if one could be produced.
    pub fn value(self) -> Option<u32> {
        match self {
            ReadOutcome::Clean(v) | ReadOutcome::Corrected(v) => Some(v),
            ReadOutcome::Uncorrectable => None,
        }
    }
}

/// Counters for the protected array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdcStats {
    /// Reads that found the word clean.
    pub clean_reads: u64,
    /// Single-bit corrections performed (reads + scrubs).
    pub corrections: u64,
    /// Uncorrectable (double-bit) detections.
    pub uncorrectable: u64,
    /// Scrub sweeps completed.
    pub scrubs: u64,
}

/// A word-addressed memory where every word is SEC-DED protected.
#[derive(Debug, Clone)]
pub struct ProtectedMemory {
    words: Vec<Codeword>,
    stats: EdcStats,
}

impl ProtectedMemory {
    /// Zero-initialised memory of `len` words.
    pub fn new(len: usize) -> Self {
        ProtectedMemory {
            words: vec![encode(0); len],
            stats: EdcStats::default(),
        }
    }

    /// Build from an existing image.
    pub fn from_image(image: &[u32]) -> Self {
        ProtectedMemory {
            words: image.iter().map(|&w| encode(w)).collect(),
            stats: EdcStats::default(),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` if the array is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> EdcStats {
        self.stats
    }

    /// Write a word (re-encodes; clears any latent error in that word).
    pub fn write(&mut self, addr: usize, value: u32) {
        self.words[addr] = encode(value);
    }

    /// Read a word, correcting single-bit errors in place.
    pub fn read(&mut self, addr: usize) -> ReadOutcome {
        match decode(&self.words[addr]) {
            Decoded::Clean(v) => {
                self.stats.clean_reads += 1;
                ReadOutcome::Clean(v)
            }
            Decoded::Corrected(v) => {
                self.stats.corrections += 1;
                self.words[addr] = encode(v); // write back the fix
                ReadOutcome::Corrected(v)
            }
            Decoded::DoubleError => {
                self.stats.uncorrectable += 1;
                ReadOutcome::Uncorrectable
            }
        }
    }

    /// Flip one stored bit of `addr` (fault injection). `bit` 0..=31 hits
    /// data, 32..=37 check bits, 38 the overall parity.
    pub fn inject_flip(&mut self, addr: usize, bit: u8) {
        self.words[addr] = flip_bit(&self.words[addr], bit);
    }

    /// One scrub sweep: read-correct every word. Returns the number of
    /// corrections made.
    pub fn scrub(&mut self) -> u64 {
        let before = self.stats.corrections;
        for addr in 0..self.words.len() {
            match decode(&self.words[addr]) {
                Decoded::Clean(_) => {}
                Decoded::Corrected(v) => {
                    self.stats.corrections += 1;
                    self.words[addr] = encode(v);
                }
                Decoded::DoubleError => {
                    self.stats.uncorrectable += 1;
                }
            }
        }
        self.stats.scrubs += 1;
        self.stats.corrections - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng as _, SeedableRng};

    #[test]
    fn clean_roundtrip() {
        let mut m = ProtectedMemory::from_image(&[1, 2, 0xDEAD_BEEF]);
        assert_eq!(m.read(2), ReadOutcome::Clean(0xDEAD_BEEF));
        m.write(0, 42);
        assert_eq!(m.read(0), ReadOutcome::Clean(42));
        assert_eq!(m.stats().corrections, 0);
    }

    #[test]
    fn single_flip_corrected_and_healed() {
        let mut m = ProtectedMemory::from_image(&[0xCAFE_F00D]);
        m.inject_flip(0, 7);
        assert_eq!(m.read(0), ReadOutcome::Corrected(0xCAFE_F00D));
        // healed in place: the next read is clean
        assert_eq!(m.read(0), ReadOutcome::Clean(0xCAFE_F00D));
        assert_eq!(m.stats().corrections, 1);
    }

    #[test]
    fn double_flip_detected_not_miscorrected() {
        let mut m = ProtectedMemory::from_image(&[123]);
        m.inject_flip(0, 3);
        m.inject_flip(0, 19);
        assert_eq!(m.read(0), ReadOutcome::Uncorrectable);
        assert_eq!(m.read(0).value(), None);
        assert_eq!(m.stats().uncorrectable, 2);
    }

    #[test]
    fn check_bit_flips_also_corrected() {
        let mut m = ProtectedMemory::from_image(&[55]);
        m.inject_flip(0, 35); // a check bit
        assert_eq!(m.read(0), ReadOutcome::Corrected(55));
        m.inject_flip(0, 38); // the overall parity bit
        assert_eq!(m.read(0), ReadOutcome::Corrected(55));
    }

    #[test]
    fn scrubbing_prevents_error_accumulation() {
        // Inject single flips into distinct words; without scrubbing a
        // second flip into the same word would be fatal, with scrubbing
        // every word heals first.
        let mut m = ProtectedMemory::from_image(&vec![7u32; 64]);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..32 {
            let addr = rng.gen_range(0..64);
            let bit = rng.gen_range(0..32u8);
            m.inject_flip(addr, bit);
            let fixed = m.scrub();
            assert!(fixed <= 1);
        }
        // everything must now read clean
        for a in 0..64 {
            assert!(matches!(m.read(a), ReadOutcome::Clean(7)));
        }
        assert_eq!(m.stats().uncorrectable, 0);
        assert_eq!(m.stats().scrubs, 32);
    }

    #[test]
    fn without_scrubbing_doubles_accumulate() {
        let mut m = ProtectedMemory::from_image(&[7u32; 4]);
        // two flips in the same word, different bits, no scrub between
        m.inject_flip(2, 5);
        m.inject_flip(2, 6);
        assert_eq!(m.read(2), ReadOutcome::Uncorrectable);
    }

    #[test]
    fn write_clears_latent_errors() {
        let mut m = ProtectedMemory::from_image(&[9]);
        m.inject_flip(0, 2);
        m.write(0, 10); // overwrite without reading first
        assert_eq!(m.read(0), ReadOutcome::Clean(10));
    }
}
