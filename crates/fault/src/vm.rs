//! Fault targets for the `vds-vm` bytecode workload: architectural
//! state of the virtual machine rather than the micro core.
//!
//! The taxonomy mirrors the transient sites in [`crate::model`] but
//! names VM state: the flat physical register file, the program
//! counter, the literal pool (a VM's constant table is program text in
//! EDC terms, but it is *read* architectural state here), and data
//! memory. Spec strings round-trip through journal metadata exactly
//! like [`crate::model::FaultKind::spec_string`] does:
//! `vm:reg:<index>:<bit>`, `vm:pc:<bit>`, `vm:lit:<index>:<bit>`,
//! `vm:mem:<addr>:<bit>`.
//!
//! Expected outcomes differ by site class, which is what makes the VM
//! workload interesting to the forensics layer: live-register flips are
//! detected the same round; dead-register flips vanish at the next
//! round's register reset (masked); working-memory flips can be masked
//! by regeneration, detected late (latency > 0) or — in the dead
//! padding words no program ever reads — escape to the end of the run;
//! pc and literal flips usually trap or diverge immediately.

use rand::rngs::SmallRng;
use rand::Rng as _;

/// One bit-flip target inside the VM's architectural state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmFaultSite {
    /// Flip one bit of a physical register (absolute file index, so a
    /// diversified variant's shifted windows see different variables).
    Reg {
        /// Physical register index (0..256).
        index: u16,
        /// Bit position (0..32).
        bit: u8,
    },
    /// Flip one bit of the program counter.
    Pc {
        /// Bit position (0..16, the encodable pc range).
        bit: u8,
    },
    /// Flip one bit of a literal-pool word for the duration of one
    /// round (the pool is program text: the flip reverts after).
    Lit {
        /// Pool index.
        index: u16,
        /// Bit position (0..32).
        bit: u8,
    },
    /// Flip one bit of a data-memory word. Data memory persists across
    /// rounds, so these are the latent/escaping faults.
    Mem {
        /// Word address (0..64).
        addr: u8,
        /// Bit position (0..32).
        bit: u8,
    },
}

impl VmFaultSite {
    /// Spec string for journals/CLI: `vm:reg:<index>:<bit>`,
    /// `vm:pc:<bit>`, `vm:lit:<index>:<bit>`, `vm:mem:<addr>:<bit>`.
    #[must_use]
    pub fn spec_string(&self) -> String {
        match self {
            VmFaultSite::Reg { index, bit } => format!("vm:reg:{index}:{bit}"),
            VmFaultSite::Pc { bit } => format!("vm:pc:{bit}"),
            VmFaultSite::Lit { index, bit } => format!("vm:lit:{index}:{bit}"),
            VmFaultSite::Mem { addr, bit } => format!("vm:mem:{addr}:{bit}"),
        }
    }

    /// Inverse of [`VmFaultSite::spec_string`].
    #[must_use]
    pub fn parse_spec(spec: &str) -> Option<VmFaultSite> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["vm", "pc", b] => Some(VmFaultSite::Pc {
                bit: b.parse().ok()?,
            }),
            ["vm", "reg", i, b] => Some(VmFaultSite::Reg {
                index: i.parse().ok()?,
                bit: b.parse().ok()?,
            }),
            ["vm", "lit", i, b] => Some(VmFaultSite::Lit {
                index: i.parse().ok()?,
                bit: b.parse().ok()?,
            }),
            ["vm", "mem", a, b] => Some(VmFaultSite::Mem {
                addr: a.parse().ok()?,
                bit: b.parse().ok()?,
            }),
            _ => None,
        }
    }
}

/// Sample a random VM fault site, weighted toward the register file and
/// data memory (the word-count-dominant state), with the literal pool
/// and pc as rarer, usually-loud targets.
pub fn sample_vm_site(rng: &mut SmallRng, dmem_words: u32, lit_words: u32) -> VmFaultSite {
    let reg_w = 64u64; // a window's worth of plausibly-live registers
    let mem_w = u64::from(dmem_words);
    let lit_w = u64::from(lit_words);
    let pc_w = 8u64;
    let x = rng.gen_range(0..reg_w + mem_w + lit_w + pc_w);
    if x < reg_w {
        VmFaultSite::Reg {
            index: rng.gen_range(0..64),
            bit: rng.gen_range(0..32),
        }
    } else if x < reg_w + mem_w {
        VmFaultSite::Mem {
            addr: rng.gen_range(0..dmem_words) as u8,
            bit: rng.gen_range(0..32),
        }
    } else if x < reg_w + mem_w + lit_w {
        VmFaultSite::Lit {
            index: rng.gen_range(0..lit_words) as u16,
            bit: rng.gen_range(0..32),
        }
    } else {
        VmFaultSite::Pc {
            bit: rng.gen_range(0..10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spec_strings_roundtrip() {
        let sites = [
            VmFaultSite::Reg { index: 5, bit: 31 },
            VmFaultSite::Pc { bit: 3 },
            VmFaultSite::Lit { index: 12, bit: 0 },
            VmFaultSite::Mem { addr: 63, bit: 17 },
        ];
        for s in sites {
            assert_eq!(VmFaultSite::parse_spec(&s.spec_string()), Some(s), "{s:?}");
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "vm",
            "vm:reg",
            "vm:reg:5",
            "vm:reg:x:1",
            "vm:pc:1:2",
            "transient:reg:1:2",
            "vm:mem:1:2:3",
            "vm:what:1:2",
        ] {
            assert_eq!(VmFaultSite::parse_spec(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..500 {
            let sa = sample_vm_site(&mut a, 64, 20);
            let sb = sample_vm_site(&mut b, 64, 20);
            assert_eq!(sa, sb);
            match sa {
                VmFaultSite::Reg { index, bit } => assert!(index < 64 && bit < 32),
                VmFaultSite::Pc { bit } => assert!(bit < 10),
                VmFaultSite::Lit { index, bit } => assert!(index < 20 && bit < 32),
                VmFaultSite::Mem { addr, bit } => assert!(addr < 64 && bit < 32),
            }
        }
    }

    #[test]
    fn sampling_covers_every_site_class() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (mut reg, mut pc, mut lit, mut mem) = (0, 0, 0, 0);
        for _ in 0..2000 {
            match sample_vm_site(&mut rng, 64, 20) {
                VmFaultSite::Reg { .. } => reg += 1,
                VmFaultSite::Pc { .. } => pc += 1,
                VmFaultSite::Lit { .. } => lit += 1,
                VmFaultSite::Mem { .. } => mem += 1,
            }
        }
        assert!(
            reg > 0 && pc > 0 && lit > 0 && mem > 0,
            "{reg}/{pc}/{lit}/{mem}"
        );
    }
}
