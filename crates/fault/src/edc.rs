//! Error-detecting/correcting codes for memory words.
//!
//! The paper's system model covers cross-address-space corruption "by
//! applying error detecting codes for data in the memory". Three codes of
//! increasing strength:
//!
//! * [`parity`] — one parity bit per 32-bit word: detects any odd number
//!   of flipped bits.
//! * [`hamming`] — Hamming(38,32) + overall parity (SEC-DED): corrects
//!   any single-bit error and detects any double-bit error.
//! * [`crc32`] — CRC-32 (IEEE polynomial, bitwise implementation) over
//!   word blocks: detects all burst errors up to 32 bits.

/// Word parity (even): returns the parity bit for `w`.
pub fn parity(w: u32) -> u8 {
    (w.count_ones() & 1) as u8
}

/// Check a `(word, parity)` pair.
pub fn parity_check(w: u32, p: u8) -> bool {
    parity(w) == p
}

/// Hamming SEC-DED codec over 32-bit words.
pub mod hamming {
    /// Codeword: 32 data bits + 6 Hamming check bits + 1 overall parity.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Codeword {
        /// The data word.
        pub data: u32,
        /// Six Hamming check bits (positions 1,2,4,8,16,32 in the
        /// codeword numbering).
        pub check: u8,
        /// Overall parity over data+check.
        pub parity: u8,
    }

    /// Decode outcome.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Decoded {
        /// No error.
        Clean(u32),
        /// A single-bit error was corrected; corrected data returned.
        Corrected(u32),
        /// An uncorrectable (double-bit) error was detected.
        DoubleError,
    }

    // Codeword bit positions 1..=38: positions that are powers of two
    // hold check bits; the rest hold data bits in ascending order.
    fn data_positions() -> impl Iterator<Item = u32> {
        (1u32..=38).filter(|p| !p.is_power_of_two())
    }

    fn spread(data: u32) -> u64 {
        // place data bits into their codeword positions
        let mut cw: u64 = 0;
        for (i, pos) in data_positions().enumerate() {
            if (data >> i) & 1 == 1 {
                cw |= 1 << pos;
            }
        }
        cw
    }

    fn collect(cw: u64) -> u32 {
        let mut data = 0u32;
        for (i, pos) in data_positions().enumerate() {
            if (cw >> pos) & 1 == 1 {
                data |= 1 << i;
            }
        }
        data
    }

    fn syndrome_of(cw: u64) -> u32 {
        let mut syn = 0u32;
        for check in 0..6 {
            let mask_bit = 1u32 << check;
            let mut acc = 0u64;
            for pos in 1u32..=38 {
                if pos & mask_bit != 0 {
                    acc ^= (cw >> pos) & 1;
                }
            }
            if acc == 1 {
                syn |= mask_bit;
            }
        }
        syn
    }

    /// Encode a data word.
    pub fn encode(data: u32) -> Codeword {
        let mut cw = spread(data);
        // choose check bits so every parity group is even
        let syn = syndrome_of(cw);
        let mut check = 0u8;
        for c in 0..6 {
            if (syn >> c) & 1 == 1 {
                let pos = 1u64 << c; // codeword position 2^c
                cw |= 1 << pos;
                check |= 1 << c;
            }
        }
        debug_assert_eq!(syndrome_of(cw), 0);
        let parity = (cw.count_ones() & 1) as u8;
        Codeword {
            data,
            check,
            parity,
        }
    }

    fn assemble(c: &Codeword) -> u64 {
        let mut cw = spread(c.data);
        for b in 0..6 {
            if (c.check >> b) & 1 == 1 {
                cw |= 1 << (1u64 << b);
            }
        }
        cw
    }

    /// Decode, correcting single-bit and detecting double-bit errors.
    pub fn decode(c: &Codeword) -> Decoded {
        let cw = assemble(c);
        let syn = syndrome_of(cw);
        let overall = ((cw.count_ones() & 1) as u8) ^ c.parity;
        match (syn, overall) {
            (0, 0) => Decoded::Clean(c.data),
            (0, 1) => {
                // the overall parity bit itself flipped
                Decoded::Corrected(c.data)
            }
            (s, 1) if (1..=38).contains(&s) => {
                // single-bit error at codeword position s
                let fixed = cw ^ (1 << s);
                Decoded::Corrected(collect(fixed))
            }
            _ => Decoded::DoubleError,
        }
    }

    /// Flip one bit of a codeword (for testing/injection): positions
    /// 0..32 hit data, 32..38 hit check bits, 38 hits overall parity.
    pub fn flip_bit(c: &Codeword, bit: u8) -> Codeword {
        let mut out = *c;
        match bit {
            0..=31 => out.data ^= 1 << bit,
            32..=37 => out.check ^= 1 << (bit - 32),
            _ => out.parity ^= 1,
        }
        out
    }
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), bitwise.
pub fn crc32(words: &[u32]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &w in words {
        for b in w.to_le_bytes() {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_detects_odd_flips() {
        for w in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF] {
            let p = parity(w);
            assert!(parity_check(w, p));
            assert!(!parity_check(w ^ 1, p), "single flip detected");
            assert!(!parity_check(w ^ 0b111, p), "triple flip detected");
            assert!(
                parity_check(w ^ 0b11, p),
                "double flip escapes parity (known weakness)"
            );
        }
    }

    #[test]
    fn hamming_roundtrip_clean() {
        for w in [0u32, 1, 42, 0xFFFF_FFFF, 0x8000_0001, 0xA5A5_5A5A] {
            let c = hamming::encode(w);
            assert_eq!(hamming::decode(&c), hamming::Decoded::Clean(w));
        }
    }

    #[test]
    fn hamming_corrects_every_single_bit_error() {
        for w in [0u32, 0xDEAD_BEEF, 0x0F0F_0F0F] {
            let c = hamming::encode(w);
            for bit in 0..39u8 {
                let bad = hamming::flip_bit(&c, bit);
                match hamming::decode(&bad) {
                    hamming::Decoded::Corrected(got) => {
                        assert_eq!(got, w, "bit {bit} correction");
                    }
                    other => panic!("bit {bit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn hamming_detects_every_double_bit_error() {
        let w = 0xCAFE_F00D;
        let c = hamming::encode(w);
        for b1 in 0..39u8 {
            for b2 in (b1 + 1)..39 {
                let bad = hamming::flip_bit(&hamming::flip_bit(&c, b1), b2);
                assert_eq!(
                    hamming::decode(&bad),
                    hamming::Decoded::DoubleError,
                    "bits {b1},{b2}"
                );
            }
        }
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" as bytes → 0xCBF43926 (the classic check value).
        // Our API takes words; build them little-endian from the bytes.
        let bytes = b"123456789";
        // byte-exact reference implementation for the classic vector
        fn crc32_bytes(bytes: &[u8]) -> u32 {
            let mut crc: u32 = 0xFFFF_FFFF;
            for &b in bytes {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
                }
            }
            !crc
        }
        assert_eq!(crc32_bytes(bytes), 0xCBF4_3926);
        // and word-API consistency with the byte reference on aligned data
        let data = [0x1234_5678u32, 0x9ABC_DEF0];
        let mut as_bytes = Vec::new();
        for w in data {
            as_bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(crc32(&data), crc32_bytes(&as_bytes));
    }

    #[test]
    fn crc32_detects_burst_errors() {
        let data = vec![7u32; 64];
        let base = crc32(&data);
        for start in [0usize, 13, 63] {
            for burst in [0x1u32, 0xFF, 0xFFFF_FFFF] {
                let mut bad = data.clone();
                bad[start] ^= burst;
                assert_ne!(crc32(&bad), base, "start={start} burst={burst:#x}");
            }
        }
    }
}
