//! Applying faults to a running machine.

use crate::model::{FaultKind, FaultSite};
use vds_sched::{Machine, ProcId};

/// What the injector actually did (for logging/classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionEffect {
    /// A state bit was flipped.
    BitFlipped,
    /// The flip targeted register r0 or an out-of-range site and was
    /// architecturally masked (no state change).
    Masked,
    /// A permanent fault was armed on a functional unit.
    PermanentArmed,
    /// The version was crashed.
    Crashed,
    /// The processor was stopped (all versions lose volatile state).
    ProcessorStopped,
}

/// Inject a fault into process `pid` on `machine`.
///
/// `CrashVersion` is modelled by corrupting the process's PC so that its
/// next fetch leaves the text section — the hardware then reports it as a
/// trap, which is how crash faults are *detected* in the system model.
/// `ProcessorStop` is left to the caller (the VDS engine must lose all
/// volatile state and resort to rollback); this function only reports it.
pub fn inject(machine: &mut Machine, pid: ProcId, fault: &FaultKind) -> InjectionEffect {
    match fault {
        FaultKind::Transient(site) => inject_transient(machine, pid, site),
        FaultKind::PermanentFu(f) => {
            machine.core_mut().inject_fu_fault(*f);
            InjectionEffect::PermanentArmed
        }
        FaultKind::CrashVersion => {
            machine.with_state_mut(pid, |_regs, pc, _dmem, text| {
                *pc = text.len() as u32 + 0x1000;
            });
            InjectionEffect::Crashed
        }
        FaultKind::ProcessorStop => InjectionEffect::ProcessorStopped,
    }
}

fn inject_transient(machine: &mut Machine, pid: ProcId, site: &FaultSite) -> InjectionEffect {
    machine.with_state_mut(pid, |regs, _pc, dmem, text| match *site {
        FaultSite::Register { reg, bit } => {
            if reg == 0 || reg >= 16 || bit >= 32 {
                return InjectionEffect::Masked;
            }
            regs[reg as usize] ^= 1 << bit;
            InjectionEffect::BitFlipped
        }
        FaultSite::Memory { addr, bit } => {
            let Some(w) = dmem.get_mut(addr as usize) else {
                return InjectionEffect::Masked;
            };
            if bit >= 32 {
                return InjectionEffect::Masked;
            }
            *w ^= 1 << bit;
            InjectionEffect::BitFlipped
        }
        FaultSite::Text { index, bit } => {
            let Some(w) = text.get_mut(index as usize) else {
                return InjectionEffect::Masked;
            };
            if bit >= 32 {
                return InjectionEffect::Masked;
            }
            *w ^= 1 << bit;
            InjectionEffect::BitFlipped
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_sched::ProcOutcome;
    use vds_smtsim::asm::assemble;
    use vds_smtsim::core::{CoreConfig, FuFault, ThreadId, Trap};
    use vds_smtsim::isa::FuClass;

    fn machine_with_proc() -> (Machine, ProcId) {
        let prog = assemble(
            r#"
                ld   r1, 0(r0)
                addi r1, r1, 1
                st   r1, 0(r0)
                yield
                halt
            "#,
        )
        .unwrap();
        let mut m = Machine::new(CoreConfig::default(), 5);
        let p = m.spawn("v", &prog, 8);
        (m, p)
    }

    #[test]
    fn register_flip_changes_state() {
        let (mut m, p) = machine_with_proc();
        let e = inject(
            &mut m,
            p,
            &FaultKind::Transient(FaultSite::Register { reg: 3, bit: 4 }),
        );
        assert_eq!(e, InjectionEffect::BitFlipped);
        m.with_state(p, |regs, _, _| assert_eq!(regs[3], 16));
    }

    #[test]
    fn r0_flip_is_masked() {
        let (mut m, p) = machine_with_proc();
        let e = inject(
            &mut m,
            p,
            &FaultKind::Transient(FaultSite::Register { reg: 0, bit: 4 }),
        );
        assert_eq!(e, InjectionEffect::Masked);
    }

    #[test]
    fn memory_flip_propagates_into_computation() {
        let (mut m, p) = machine_with_proc();
        inject(
            &mut m,
            p,
            &FaultKind::Transient(FaultSite::Memory { addr: 0, bit: 5 }),
        );
        m.dispatch(p, ThreadId(0));
        assert_eq!(
            m.run_hw_until_block(ThreadId(0), 100_000),
            ProcOutcome::Yielded
        );
        // dmem[0] was 0, flipped to 32, program adds 1 → 33
        m.with_state(p, |_, _, d| assert_eq!(d[0], 33));
    }

    #[test]
    fn out_of_range_memory_flip_masked() {
        let (mut m, p) = machine_with_proc();
        let e = inject(
            &mut m,
            p,
            &FaultKind::Transient(FaultSite::Memory { addr: 9999, bit: 0 }),
        );
        assert_eq!(e, InjectionEffect::Masked);
    }

    #[test]
    fn text_flip_usually_detected_as_illegal_or_changes_behaviour() {
        let (mut m, p) = machine_with_proc();
        // flip a high opcode bit of instruction 1 (the addi)
        inject(
            &mut m,
            p,
            &FaultKind::Transient(FaultSite::Text { index: 1, bit: 31 }),
        );
        m.dispatch(p, ThreadId(0));
        let out = m.run_hw_until_block(ThreadId(0), 100_000);
        // either an illegal-instruction trap or a different result —
        // never a silent identical run
        match out {
            ProcOutcome::Trapped(Trap::IllegalInstruction { pc }) => assert_eq!(pc, 1),
            ProcOutcome::Yielded => {
                m.with_state(p, |_, _, d| assert_ne!(d[0], 1, "flip must not be silent"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn crash_fault_traps_on_next_run() {
        let (mut m, p) = machine_with_proc();
        let e = inject(&mut m, p, &FaultKind::CrashVersion);
        assert_eq!(e, InjectionEffect::Crashed);
        m.dispatch(p, ThreadId(0));
        match m.run_hw_until_block(ThreadId(0), 100_000) {
            ProcOutcome::Trapped(Trap::PcOutOfRange { .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn permanent_fault_armed_on_core() {
        let (mut m, p) = machine_with_proc();
        let e = inject(
            &mut m,
            p,
            &FaultKind::PermanentFu(FuFault {
                class: FuClass::Alu,
                unit: 0,
                bit: 7,
                value: true,
            }),
        );
        assert_eq!(e, InjectionEffect::PermanentArmed);
        m.dispatch(p, ThreadId(0));
        m.run_hw_until_block(ThreadId(0), 100_000);
        // addi computed on the faulty ALU: result has bit 7 forced
        m.with_state(p, |_, _, d| assert_eq!(d[0] & 0x80, 0x80));
    }

    #[test]
    fn injection_into_switched_out_process_sticks() {
        let (mut m, p) = machine_with_proc();
        // not dispatched yet: context is saved — flip must still apply
        inject(
            &mut m,
            p,
            &FaultKind::Transient(FaultSite::Memory { addr: 0, bit: 2 }),
        );
        m.dispatch(p, ThreadId(0));
        m.run_hw_until_block(ThreadId(0), 100_000);
        m.with_state(p, |_, _, d| assert_eq!(d[0], 5)); // 4 + 1
    }
}
