//! Parallel fault-injection campaigns.
//!
//! A campaign runs `n` independent trials, each with its own
//! deterministically derived seed, across worker threads. Trials return a
//! label (outcome class) and optionally a numeric observation (e.g.
//! detection latency); the campaign merges everything into label counts
//! and per-label streaming statistics ([`vds_obs::Summary`]: Welford
//! mean/variance, min/max, bucketed percentiles — numerically stable for
//! arbitrarily large campaigns, unlike a naive `(sum, count)` pair).
//!
//! **Determinism.** Results are *bit-identical* regardless of the worker
//! count: trials are partitioned into a fixed number of logical shards by
//! trial index (independent of `workers`), each shard accumulates its
//! trials in index order, and shards merge in shard order. Worker threads
//! only decide *who* computes a shard, never what it contains or when it
//! is merged.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vds_obs::{JournalHeader, Recorder, Registry, Summary, TelemetryHub};

/// Number of logical shards a campaign is split into (capped by the
/// trial count). Fixed so that the shard partition — and therefore the
/// merged floating-point results — do not depend on the worker count.
pub const LOGICAL_SHARDS: u64 = 64;

/// Result of one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// Outcome class, e.g. `"detected-round"`, `"masked"`.
    pub label: String,
    /// Optional numeric observation (latency, rounds to detection, …).
    pub value: Option<f64>,
}

impl TrialResult {
    /// A labelled outcome without an observation.
    pub fn labelled(label: impl Into<String>) -> Self {
        TrialResult {
            label: label.into(),
            value: None,
        }
    }

    /// A labelled outcome with a numeric observation.
    pub fn with_value(label: impl Into<String>, value: f64) -> Self {
        TrialResult {
            label: label.into(),
            value: Some(value),
        }
    }
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignReport {
    /// Trials per label.
    pub counts: BTreeMap<String, u64>,
    /// Streaming statistics of numeric observations per label.
    pub observations: BTreeMap<String, Summary>,
    /// Total trials.
    pub trials: u64,
}

impl CampaignReport {
    /// Count for a label (0 if absent).
    pub fn count(&self, label: &str) -> u64 {
        self.counts.get(label).copied().unwrap_or(0)
    }

    /// Fraction of trials with this label.
    pub fn fraction(&self, label: &str) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.count(label) as f64 / self.trials as f64
        }
    }

    /// Mean numeric observation for a label, if any were recorded.
    pub fn mean_value(&self, label: &str) -> Option<f64> {
        let s = self.observations.get(label)?;
        if s.count() == 0 {
            None
        } else {
            Some(s.mean())
        }
    }

    /// Full streaming statistics for a label's observations.
    pub fn stats(&self, label: &str) -> Option<&Summary> {
        self.observations.get(label)
    }

    fn absorb(&mut self, r: TrialResult) {
        *self.counts.entry(r.label.clone()).or_insert(0) += 1;
        if let Some(v) = r.value {
            self.observations.entry(r.label).or_default().observe(v);
        }
        self.trials += 1;
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: &CampaignReport) {
        for (l, c) in &other.counts {
            *self.counts.entry(l.clone()).or_insert(0) += c;
        }
        for (l, s) in &other.observations {
            self.observations.entry(l.clone()).or_default().merge(s);
        }
        self.trials += other.trials;
    }

    /// Mirror this report into a metrics registry: `campaign.trials`,
    /// per-label `campaign.count.<label>` counters and
    /// `campaign.value.<label>` summaries.
    pub fn export_metrics(&self, rec: &mut Recorder) {
        rec.count("campaign.trials", self.trials);
        for (l, c) in &self.counts {
            rec.count(&format!("campaign.count.{l}"), *c);
        }
        for (l, s) in &self.observations {
            rec.merge_summary(&format!("campaign.value.{l}"), s);
        }
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "trials: {}", self.trials)?;
        for (label, count) in &self.counts {
            write!(
                f,
                "  {:<28} {:>8}  ({:6.2}%)",
                label,
                count,
                100.0 * self.fraction(label)
            )?;
            if let Some(s) = self.observations.get(label) {
                if s.count() > 0 {
                    write!(
                        f,
                        "  mean={:.3} sd={:.3} min={:.3} max={:.3}",
                        s.mean(),
                        s.std_dev(),
                        s.min(),
                        s.max()
                    )?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Observer of a running campaign, called from worker threads.
///
/// Monitors are *read-only taps*: a campaign hands them progress events
/// and per-shard registry copies, and nothing flows back. Trial and
/// shard callbacks arrive in completion order (which varies with the
/// worker count), so a monitor must only do order-insensitive things
/// with them — counting, and merging commutative aggregates. The
/// canonical campaign result is accumulated separately, in shard order,
/// and is bit-identical with or without a monitor attached.
pub trait CampaignMonitor: Sync {
    /// One trial finished (called after every trial, any worker).
    fn trial_done(&self) {}

    /// One logical shard finished; `registry` is that shard's metric
    /// content (already including the shard's trial recordings).
    fn shard_done(&self, registry: &Registry) {
        let _ = registry;
    }
}

/// The standard monitor: forwards campaign progress into a live
/// [`TelemetryHub`] so an attached [`vds_obs::TelemetryServer`] can
/// stream it (`/progress`, `/metrics`). Counters and gauges merge
/// commutatively, so the hub's live view converges to the canonical
/// result regardless of shard completion order.
pub struct HubMonitor {
    hub: Arc<TelemetryHub>,
}

impl HubMonitor {
    /// Monitor publishing into `hub`.
    pub fn new(hub: Arc<TelemetryHub>) -> Self {
        HubMonitor { hub }
    }
}

impl CampaignMonitor for HubMonitor {
    fn trial_done(&self) {
        self.hub.trial_done();
    }

    fn shard_done(&self, registry: &Registry) {
        self.hub.merge_registry(registry);
        self.hub.shard_done();
    }
}

/// `[lo, hi)` trial range of logical shard `s` out of `shards`.
fn shard_bounds(n: u64, shards: u64, s: u64) -> (u64, u64) {
    (s * n / shards, (s + 1) * n / shards)
}

fn run_campaign_impl<F>(
    component: &'static str,
    n: u64,
    workers: usize,
    record: bool,
    monitor: Option<&dyn CampaignMonitor>,
    journal: Option<&JournalHeader>,
    trial: F,
) -> (CampaignReport, Recorder)
where
    F: Fn(u64, &mut Recorder) -> TrialResult + Sync,
{
    let workers = workers.max(1);
    let shards = n.clamp(1, LOGICAL_SHARDS);
    let slots: Vec<Mutex<Option<(CampaignReport, Recorder)>>> =
        (0..shards).map(|_| Mutex::new(None)).collect();
    let next = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(shards as usize) {
            scope.spawn(|| loop {
                let s = next.fetch_add(1, Ordering::Relaxed);
                if s >= shards {
                    break;
                }
                let (lo, hi) = shard_bounds(n, shards, s);
                let mut local = CampaignReport::default();
                let mut rec = if record {
                    // metrics + spans only: per-shard traces would
                    // interleave by completion order; the shard_done
                    // event below is emitted with the shard index as its
                    // time instead. Span merging is shard-ordered, so a
                    // shard keeps exactly its own spans (one per shard
                    // plus one per trial) on the trial-index time axis.
                    Recorder::with_capacities(0, (hi - lo) as usize + 1)
                } else {
                    Recorder::disabled()
                };
                if let Some(h) = journal {
                    // trials record journal entries into the shard
                    // recorder; shard journals concatenate in shard (=
                    // trial) order below, so the merged journal is
                    // worker-count invariant like everything else.
                    rec.enable_journal(h.clone());
                }
                let shard_g = rec.span(component, "shard", lo as f64);
                for i in lo..hi {
                    let trial_g = rec.span(component, "trial", i as f64);
                    local.absorb(trial(i, &mut rec));
                    rec.end_span(trial_g, (i + 1) as f64);
                    if let Some(m) = monitor {
                        m.trial_done();
                    }
                }
                rec.end_span_with(shard_g, hi as f64, vec![("shard", s.into())]);
                if let Some(m) = monitor {
                    m.shard_done(rec.registry());
                }
                *slots[s as usize].lock().unwrap() = Some((local, rec));
            });
        }
    });
    let mut report = CampaignReport::default();
    let mut rec = if record {
        Recorder::new()
    } else {
        Recorder::disabled()
    };
    if let Some(h) = journal {
        rec.enable_journal(h.clone());
    }
    for (s, slot) in slots.into_iter().enumerate() {
        let (shard_report, shard_rec) = slot
            .into_inner()
            .unwrap()
            .expect("every logical shard completes");
        if record {
            rec.event(
                s as f64,
                "campaign",
                "shard_done",
                vec![
                    ("shard", (s as u64).into()),
                    ("trials", shard_report.trials.into()),
                ],
            );
        }
        report.merge(&shard_report);
        rec.merge(&shard_rec);
    }
    if record {
        report.export_metrics(&mut rec);
        rec.gauge("campaign.shards", shards as f64);
        if journal.is_some() {
            // only here, after the shard merge — never inside the per-run
            // engines — so the counters are not double counted
            rec.export_journal_metrics();
            // model-conformance residuals priced from the merged journal.
            // Gauges and a histogram only — never counters — so bench
            // work-unit accounting (a sum over counters) is untouched.
            if let Ok(tracker) = vds_obs::ConformanceTracker::for_journal(
                rec.journal(),
                vds_obs::conformance::DEFAULT_WINDOW,
                vds_obs::conformance::DEFAULT_TOLERANCE,
            ) {
                let mut reg = Registry::new();
                tracker.export_metrics(&mut reg);
                rec.merge_registry(&reg);
            }
            // per-fault lifecycle forensics from the same merged journal:
            // faults.* counters are exported only here (journaled paths),
            // never by the per-run engines, so bench work units on the
            // unjournaled paths stay untouched
            if let Ok(tracker) = vds_obs::ForensicsTracker::for_journal(rec.journal()) {
                let mut reg = Registry::new();
                tracker.export_metrics(&mut reg);
                rec.merge_registry(&reg);
            }
        }
        rec.rollup_spans();
    }
    (report, rec)
}

/// Run `n` trials of `trial` (given the trial index as a seed component)
/// on `workers` threads. Deterministic: the result is bit-identical for
/// any worker count.
pub fn run_campaign<F>(n: u64, workers: usize, trial: F) -> CampaignReport
where
    F: Fn(u64) -> TrialResult + Sync,
{
    run_campaign_impl("campaign", n, workers, false, None, None, |i, _| trial(i)).0
}

/// [`run_campaign`] with metrics: each trial may record into a shard
/// recorder; shard registries merge in shard order (bit-deterministic),
/// and the campaign's own counters/summaries are added under
/// `campaign.*`. Shard and trial spans (on the trial-index time axis)
/// land under the `"campaign"` component.
pub fn run_campaign_recorded<F>(n: u64, workers: usize, trial: F) -> (CampaignReport, Recorder)
where
    F: Fn(u64, &mut Recorder) -> TrialResult + Sync,
{
    run_campaign_impl("campaign", n, workers, true, None, None, trial)
}

/// [`run_campaign_recorded`] with an explicit span component, so callers
/// running several campaigns into one recorder (e.g. experiment E10's
/// diverse vs identical arms) keep their span lanes apart.
pub fn run_campaign_recorded_as<F>(
    component: &'static str,
    n: u64,
    workers: usize,
    trial: F,
) -> (CampaignReport, Recorder)
where
    F: Fn(u64, &mut Recorder) -> TrialResult + Sync,
{
    run_campaign_impl(component, n, workers, true, None, None, trial)
}

/// [`run_campaign_recorded`] with a [`CampaignMonitor`] tap attached:
/// trial/shard completions and shard registry snapshots stream to the
/// monitor as they happen, while the returned report and recorder stay
/// byte-identical to an unmonitored run (the monitor only ever receives
/// copies and reference taps; it cannot write back).
pub fn run_campaign_recorded_monitored<F>(
    component: &'static str,
    n: u64,
    workers: usize,
    monitor: &dyn CampaignMonitor,
    trial: F,
) -> (CampaignReport, Recorder)
where
    F: Fn(u64, &mut Recorder) -> TrialResult + Sync,
{
    run_campaign_impl(component, n, workers, true, Some(monitor), None, trial)
}

/// [`run_campaign_recorded_monitored`] with the flight-recorder journal
/// enabled: every shard recorder handed to `trial` has a journal carrying
/// a clone of `header`, so trials can journal their rounds (typically by
/// running a journaled engine and adopting its journal under the trial
/// index as lane). Shard journals concatenate in shard order into the
/// returned recorder — like every other campaign output, the merged
/// journal is **byte-identical for any worker count** — and
/// `journal.rounds` / `journal.bytes` / `journal.divergences` are
/// exported into the merged registry after the merge.
pub fn run_campaign_journaled<F>(
    component: &'static str,
    n: u64,
    workers: usize,
    monitor: Option<&dyn CampaignMonitor>,
    header: &JournalHeader,
    trial: F,
) -> (CampaignReport, Recorder)
where
    F: Fn(u64, &mut Recorder) -> TrialResult + Sync,
{
    run_campaign_impl(component, n, workers, true, monitor, Some(header), trial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_trials_counted() {
        let r = run_campaign(1000, 4, |i| {
            TrialResult::labelled(if i % 3 == 0 { "a" } else { "b" })
        });
        assert_eq!(r.trials, 1000);
        assert_eq!(r.count("a"), 334);
        assert_eq!(r.count("b"), 666);
        assert!((r.fraction("a") - 0.334).abs() < 1e-12);
    }

    #[test]
    fn observations_aggregate() {
        let r = run_campaign(100, 3, |i| TrialResult::with_value("lat", i as f64));
        assert_eq!(r.count("lat"), 100);
        assert!((r.mean_value("lat").unwrap() - 49.5).abs() < 1e-9);
        assert_eq!(r.mean_value("nope"), None);
        let s = r.stats("lat").unwrap();
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 99.0);
        assert!(s.variance() > 0.0);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let f = |i: u64| {
            TrialResult::with_value(
                if i.wrapping_mul(0x9E3779B9).is_multiple_of(7) {
                    "x"
                } else {
                    "y"
                },
                (i % 13) as f64,
            )
        };
        let a = run_campaign(500, 1, f);
        let b = run_campaign(500, 8, f);
        // logical shards make the whole report bit-identical, not merely
        // equal within tolerance
        assert_eq!(a, b);
        for l in ["x", "y"] {
            assert!((a.mean_value(l).unwrap() - b.mean_value(l).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn recorded_campaign_metrics_are_worker_invariant() {
        let f = |i: u64, rec: &mut Recorder| {
            rec.bump("trial.custom");
            rec.observe("trial.latency", (i % 10) as f64);
            TrialResult::with_value("lat", i as f64)
        };
        let (ra, reca) = run_campaign_recorded(300, 1, f);
        let (rb, recb) = run_campaign_recorded(300, 7, f);
        assert_eq!(ra, rb);
        assert_eq!(reca.registry(), recb.registry());
        assert_eq!(
            reca.registry().to_csv(),
            recb.registry().to_csv(),
            "CSV export must be byte-identical across worker counts"
        );
        assert_eq!(reca.registry().counter("campaign.trials"), 300);
        assert_eq!(reca.registry().counter("campaign.count.lat"), 300);
        assert_eq!(reca.registry().counter("trial.custom"), 300);
        assert_eq!(
            reca.registry()
                .summary("campaign.value.lat")
                .unwrap()
                .count(),
            300
        );
        assert_eq!(reca.trace().len(), LOGICAL_SHARDS as usize);
    }

    #[test]
    fn campaign_spans_are_worker_invariant() {
        let f = |i: u64, _: &mut Recorder| TrialResult::with_value("lat", i as f64);
        let (_, reca) = run_campaign_recorded(150, 1, f);
        let (_, recb) = run_campaign_recorded(150, 4, f);
        // one span per shard plus one per trial, merged in shard order
        assert_eq!(reca.spans().len(), 150 + LOGICAL_SHARDS as usize);
        assert_eq!(
            reca.spans().to_chrome_json(),
            recb.spans().to_chrome_json(),
            "span export must be byte-identical across worker counts"
        );
        assert!(reca
            .registry()
            .summary("span.campaign.trial.total")
            .is_some());
        let (_, recc) = run_campaign_recorded_as("custom", 10, 2, f);
        assert!(recc.spans().records().all(|s| s.component == "custom"));
    }

    #[test]
    fn monitor_sees_everything_and_changes_nothing() {
        let f = |i: u64, rec: &mut Recorder| {
            rec.bump("trial.custom");
            TrialResult::with_value("lat", (i % 11) as f64)
        };
        let (plain_report, plain_rec) = run_campaign_recorded_as("mon", 200, 3, f);
        let hub = TelemetryHub::new();
        let monitor = HubMonitor::new(Arc::clone(&hub));
        hub.begin_campaign("mon", 200, 200u64.clamp(1, LOGICAL_SHARDS));
        let (report, rec) = run_campaign_recorded_monitored("mon", 200, 3, &monitor, f);
        // canonical outputs are byte-identical with the monitor attached
        assert_eq!(plain_report, report);
        assert_eq!(plain_rec.registry().to_csv(), rec.registry().to_csv());
        assert_eq!(
            plain_rec.spans().to_chrome_json(),
            rec.spans().to_chrome_json()
        );
        // and the hub saw every trial and shard, with converged counters
        let progress = hub.progress_json();
        assert!(progress.contains("\"trials_done\":200"), "{progress}");
        assert!(progress.contains("\"shards_done\":64"), "{progress}");
        assert_eq!(hub.registry_snapshot().counter("trial.custom"), 200);
    }

    #[test]
    fn journaled_campaign_is_worker_invariant() {
        use vds_obs::journal::{Action, RoundEntry, Verdict};
        let trial = |i: u64, rec: &mut Recorder| {
            assert!(rec.journal_enabled());
            rec.journal_push(RoundEntry {
                seq: 0,
                lane: i,
                round: 1,
                committed: 1,
                sim_time: i as f64,
                d1: vds_obs::digest_words128(&[i as u32]),
                d2: vds_obs::digest_words128(&[i as u32]),
                verdict: if i.is_multiple_of(5) {
                    Verdict::Mismatch
                } else {
                    Verdict::Match
                },
                sched: "coschedule[v1,v2]".to_string(),
                action: Action::Commit,
                rollforward: 0,
                fault: None,
                fault_id: None,
                fault_outcome: None,
            });
            TrialResult::labelled("done")
        };
        let header = JournalHeader::new("campaign", "test", 1, 10, 1);
        let (ra, reca) = run_campaign_journaled("jc", 100, 1, None, &header, trial);
        let (rb, recb) = run_campaign_journaled("jc", 100, 4, None, &header, trial);
        assert_eq!(ra, rb);
        let j = reca.journal();
        assert_eq!(j.len(), 100);
        // entries land in trial order with gap-free seq, any worker count
        for (k, e) in j.entries().iter().enumerate() {
            assert_eq!(e.seq, k as u64);
            assert_eq!(e.lane, k as u64);
        }
        assert_eq!(j.to_jsonl(), recb.journal().to_jsonl());
        assert!(j.first_divergence(recb.journal()).is_none());
        // journal metrics exported once, after the shard merge
        assert_eq!(reca.registry().counter("journal.rounds"), 100);
        assert_eq!(reca.registry().counter("journal.divergences"), 20);
        assert!(reca.registry().counter("journal.bytes") > 0);
        // unjournaled campaigns export no journal metrics
        let (_, plain) = run_campaign_recorded(10, 2, |_, _| TrialResult::labelled("x"));
        assert_eq!(plain.registry().counter("journal.rounds"), 0);
        assert!(plain.journal().is_empty());
    }

    #[test]
    fn zero_trials() {
        let r = run_campaign(0, 4, |_| TrialResult::labelled("never"));
        assert_eq!(r.trials, 0);
        assert_eq!(r.fraction("never"), 0.0);
    }

    #[test]
    fn display_renders() {
        let r = run_campaign(10, 2, |i| TrialResult::with_value("d", i as f64));
        let s = format!("{r}");
        assert!(s.contains("trials: 10"));
        assert!(s.contains("mean="));
    }

    #[test]
    fn shard_bounds_cover_exactly() {
        for n in [0u64, 1, 7, 63, 64, 65, 500, 1000] {
            let shards = n.clamp(1, LOGICAL_SHARDS);
            let mut covered = 0;
            for s in 0..shards {
                let (lo, hi) = shard_bounds(n, shards, s);
                assert!(lo <= hi);
                covered += hi - lo;
                if s > 0 {
                    assert_eq!(lo, shard_bounds(n, shards, s - 1).1);
                }
            }
            assert_eq!(covered, n);
        }
    }
}
