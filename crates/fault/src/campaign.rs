//! Parallel fault-injection campaigns.
//!
//! A campaign runs `n` independent trials, each with its own
//! deterministically derived seed, across worker threads. Trials return a
//! label (outcome class) and optionally a numeric observation (e.g.
//! detection latency); the campaign merges everything into label counts
//! and per-label statistics. Results are independent of the worker count —
//! per-trial seeds come from the trial index, not from thread scheduling.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Result of one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// Outcome class, e.g. `"detected-round"`, `"masked"`.
    pub label: String,
    /// Optional numeric observation (latency, rounds to detection, …).
    pub value: Option<f64>,
}

impl TrialResult {
    /// A labelled outcome without an observation.
    pub fn labelled(label: impl Into<String>) -> Self {
        TrialResult {
            label: label.into(),
            value: None,
        }
    }

    /// A labelled outcome with a numeric observation.
    pub fn with_value(label: impl Into<String>, value: f64) -> Self {
        TrialResult {
            label: label.into(),
            value: Some(value),
        }
    }
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Trials per label.
    pub counts: BTreeMap<String, u64>,
    /// Sum and count of numeric observations per label.
    pub observations: BTreeMap<String, (f64, u64)>,
    /// Total trials.
    pub trials: u64,
}

impl CampaignReport {
    /// Count for a label (0 if absent).
    pub fn count(&self, label: &str) -> u64 {
        self.counts.get(label).copied().unwrap_or(0)
    }

    /// Fraction of trials with this label.
    pub fn fraction(&self, label: &str) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.count(label) as f64 / self.trials as f64
        }
    }

    /// Mean numeric observation for a label, if any were recorded.
    pub fn mean_value(&self, label: &str) -> Option<f64> {
        let (sum, n) = self.observations.get(label)?;
        if *n == 0 {
            None
        } else {
            Some(sum / *n as f64)
        }
    }

    fn absorb(&mut self, r: TrialResult) {
        *self.counts.entry(r.label.clone()).or_insert(0) += 1;
        if let Some(v) = r.value {
            let e = self.observations.entry(r.label).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }
        self.trials += 1;
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: &CampaignReport) {
        for (l, c) in &other.counts {
            *self.counts.entry(l.clone()).or_insert(0) += c;
        }
        for (l, (s, n)) in &other.observations {
            let e = self.observations.entry(l.clone()).or_insert((0.0, 0));
            e.0 += s;
            e.1 += n;
        }
        self.trials += other.trials;
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "trials: {}", self.trials)?;
        for (label, count) in &self.counts {
            write!(
                f,
                "  {:<28} {:>8}  ({:6.2}%)",
                label,
                count,
                100.0 * self.fraction(label)
            )?;
            if let Some(m) = self.mean_value(label) {
                write!(f, "  mean={m:.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Run `n` trials of `trial` (given the trial index as a seed component)
/// on `workers` threads. Deterministic: the set of results depends only on
/// `n` and the trial function.
pub fn run_campaign<F>(n: u64, workers: usize, trial: F) -> CampaignReport
where
    F: Fn(u64) -> TrialResult + Sync,
{
    let workers = workers.max(1);
    let report = Mutex::new(CampaignReport::default());
    let next = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = CampaignReport::default();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.absorb(trial(i));
                }
                report.lock().merge(&local);
            });
        }
    });
    report.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_trials_counted() {
        let r = run_campaign(1000, 4, |i| {
            TrialResult::labelled(if i % 3 == 0 { "a" } else { "b" })
        });
        assert_eq!(r.trials, 1000);
        assert_eq!(r.count("a"), 334);
        assert_eq!(r.count("b"), 666);
        assert!((r.fraction("a") - 0.334).abs() < 1e-12);
    }

    #[test]
    fn observations_aggregate() {
        let r = run_campaign(100, 3, |i| TrialResult::with_value("lat", i as f64));
        assert_eq!(r.count("lat"), 100);
        assert!((r.mean_value("lat").unwrap() - 49.5).abs() < 1e-9);
        assert_eq!(r.mean_value("nope"), None);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let f = |i: u64| {
            TrialResult::with_value(
                if i.wrapping_mul(0x9E3779B9) % 7 == 0 {
                    "x"
                } else {
                    "y"
                },
                (i % 13) as f64,
            )
        };
        let a = run_campaign(500, 1, f);
        let b = run_campaign(500, 8, f);
        assert_eq!(a.counts, b.counts);
        for l in ["x", "y"] {
            assert!((a.mean_value(l).unwrap() - b.mean_value(l).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_trials() {
        let r = run_campaign(0, 4, |_| TrialResult::labelled("never"));
        assert_eq!(r.trials, 0);
        assert_eq!(r.fraction("never"), 0.0);
    }

    #[test]
    fn display_renders() {
        let r = run_campaign(10, 2, |i| TrialResult::with_value("d", i as f64));
        let s = format!("{r}");
        assert!(s.contains("trials: 10"));
        assert!(s.contains("mean="));
    }
}
