//! The fault taxonomy.

use rand::rngs::SmallRng;
use rand::Rng as _;
use vds_smtsim::core::FuFault;
use vds_smtsim::isa::FuClass;

/// Where a transient bit flip lands inside one version's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Bit `bit` of architectural register `reg`.
    Register {
        /// Register index 1..=15 (flipping r0 has no architectural
        /// effect and is excluded by the sampler).
        reg: u8,
        /// Bit 0..=31.
        bit: u8,
    },
    /// Bit `bit` of data-memory word `addr`.
    Memory {
        /// Word address.
        addr: u32,
        /// Bit 0..=31.
        bit: u8,
    },
    /// Bit `bit` of instruction-memory word `index`.
    Text {
        /// Instruction index.
        index: u32,
        /// Bit 0..=31.
        bit: u8,
    },
}

/// A fault to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A transient single-bit flip in one version's state.
    Transient(FaultSite),
    /// A permanent stuck-at bit on a functional unit (shared hardware —
    /// affects every version that executes on that unit).
    PermanentFu(FuFault),
    /// The version crashes outright (models e.g. a flip that wedges
    /// control flow; detected as a trap rather than a state mismatch).
    CrashVersion,
    /// The whole processor stops; only rollback from stable storage
    /// survives this.
    ProcessorStop,
}

impl FaultKind {
    /// `true` for transient faults (one-shot state corruption).
    pub fn is_transient(&self) -> bool {
        matches!(self, FaultKind::Transient(_) | FaultKind::CrashVersion)
    }

    /// Canonical spec string, used in flight-recorder journal entries and
    /// understood by [`FaultKind::parse_spec`] (and therefore by
    /// `vds replay`): `transient:mem:<addr>:<bit>`,
    /// `transient:reg:<reg>:<bit>`, `transient:text:<index>:<bit>`,
    /// `permfu:<alu|mul|mem|branch>:<unit>:<bit>:<0|1>`, `crash`, `stop`.
    pub fn spec_string(&self) -> String {
        match self {
            FaultKind::Transient(FaultSite::Register { reg, bit }) => {
                format!("transient:reg:{reg}:{bit}")
            }
            FaultKind::Transient(FaultSite::Memory { addr, bit }) => {
                format!("transient:mem:{addr}:{bit}")
            }
            FaultKind::Transient(FaultSite::Text { index, bit }) => {
                format!("transient:text:{index}:{bit}")
            }
            FaultKind::PermanentFu(f) => {
                let class = match f.class {
                    FuClass::Alu => "alu",
                    FuClass::MulDiv => "mul",
                    FuClass::Mem => "mem",
                    FuClass::Branch => "branch",
                    FuClass::None => "none",
                };
                format!("permfu:{class}:{}:{}:{}", f.unit, f.bit, u8::from(f.value))
            }
            FaultKind::CrashVersion => "crash".to_string(),
            FaultKind::ProcessorStop => "stop".to_string(),
        }
    }

    /// Inverse of [`FaultKind::spec_string`].
    pub fn parse_spec(spec: &str) -> Option<FaultKind> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["crash"] => Some(FaultKind::CrashVersion),
            ["stop"] => Some(FaultKind::ProcessorStop),
            ["transient", site, a, b] => {
                let site = match *site {
                    "reg" => FaultSite::Register {
                        reg: a.parse().ok()?,
                        bit: b.parse().ok()?,
                    },
                    "mem" => FaultSite::Memory {
                        addr: a.parse().ok()?,
                        bit: b.parse().ok()?,
                    },
                    "text" => FaultSite::Text {
                        index: a.parse().ok()?,
                        bit: b.parse().ok()?,
                    },
                    _ => return None,
                };
                Some(FaultKind::Transient(site))
            }
            ["permfu", class, unit, bit, value] => {
                let class = match *class {
                    "alu" => FuClass::Alu,
                    "mul" => FuClass::MulDiv,
                    "mem" => FuClass::Mem,
                    "branch" => FuClass::Branch,
                    "none" => FuClass::None,
                    _ => return None,
                };
                Some(FaultKind::PermanentFu(FuFault {
                    class,
                    unit: unit.parse().ok()?,
                    bit: bit.parse().ok()?,
                    value: match *value {
                        "0" => false,
                        "1" => true,
                        _ => return None,
                    },
                }))
            }
            _ => None,
        }
    }
}

/// Sample a random transient site within a version whose address space
/// has `dmem_words` words and whose program has `text_len` instructions.
/// Weighted toward memory (most state lives there), mirroring soft-error
/// cross-sections being proportional to bit count.
pub fn sample_transient_site(rng: &mut SmallRng, dmem_words: u32, text_len: u32) -> FaultSite {
    // 16 registers vs dmem_words memory words vs text_len text words:
    // weight by word counts (registers get a floor so they stay hittable).
    let reg_w = 16u64.max(u64::from(dmem_words) / 16);
    let mem_w = u64::from(dmem_words);
    let txt_w = u64::from(text_len);
    let total = reg_w + mem_w + txt_w;
    let x = rng.gen_range(0..total);
    if x < reg_w {
        FaultSite::Register {
            reg: rng.gen_range(1..16),
            bit: rng.gen_range(0..32),
        }
    } else if x < reg_w + mem_w {
        FaultSite::Memory {
            addr: rng.gen_range(0..dmem_words),
            bit: rng.gen_range(0..32),
        }
    } else {
        FaultSite::Text {
            index: rng.gen_range(0..text_len),
            bit: rng.gen_range(0..32),
        }
    }
}

/// Sample a random permanent functional-unit fault for a core with the
/// given unit counts.
pub fn sample_fu_fault(rng: &mut SmallRng, num_alu: usize, num_mul: usize) -> FuFault {
    let (class, unit) = match rng.gen_range(0..4) {
        0 | 1 => (FuClass::Alu, rng.gen_range(0..num_alu)),
        2 => (FuClass::MulDiv, rng.gen_range(0..num_mul)),
        _ => (FuClass::Mem, 0),
    };
    FuFault {
        class,
        unit,
        bit: rng.gen_range(0..32),
        value: rng.gen(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(404)
    }

    #[test]
    fn transient_sites_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            match sample_transient_site(&mut r, 128, 40) {
                FaultSite::Register { reg, bit } => {
                    assert!((1..16).contains(&reg));
                    assert!(bit < 32);
                }
                FaultSite::Memory { addr, bit } => {
                    assert!(addr < 128);
                    assert!(bit < 32);
                }
                FaultSite::Text { index, bit } => {
                    assert!(index < 40);
                    assert!(bit < 32);
                }
            }
        }
    }

    #[test]
    fn transient_sampling_covers_all_site_kinds() {
        let mut r = rng();
        let (mut regs, mut mems, mut txts) = (0, 0, 0);
        for _ in 0..3000 {
            match sample_transient_site(&mut r, 256, 64) {
                FaultSite::Register { .. } => regs += 1,
                FaultSite::Memory { .. } => mems += 1,
                FaultSite::Text { .. } => txts += 1,
            }
        }
        assert!(regs > 0 && mems > 0 && txts > 0, "{regs}/{mems}/{txts}");
        assert!(mems > regs, "memory dominates the cross-section");
    }

    #[test]
    fn fu_faults_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let f = sample_fu_fault(&mut r, 2, 1);
            match f.class {
                FuClass::Alu => assert!(f.unit < 2),
                FuClass::MulDiv => assert_eq!(f.unit, 0),
                FuClass::Mem => assert_eq!(f.unit, 0),
                other => panic!("unexpected class {other:?}"),
            }
            assert!(f.bit < 32);
        }
    }

    #[test]
    fn fault_spec_round_trips() {
        let kinds = [
            FaultKind::Transient(FaultSite::Register { reg: 5, bit: 3 }),
            FaultKind::Transient(FaultSite::Memory { addr: 4, bit: 9 }),
            FaultKind::Transient(FaultSite::Text { index: 12, bit: 27 }),
            FaultKind::PermanentFu(FuFault {
                class: FuClass::MulDiv,
                unit: 0,
                bit: 7,
                value: true,
            }),
            FaultKind::CrashVersion,
            FaultKind::ProcessorStop,
        ];
        for k in kinds {
            let spec = k.spec_string();
            assert_eq!(FaultKind::parse_spec(&spec), Some(k), "{spec}");
        }
        assert_eq!(FaultKind::parse_spec("transient:mem:4:9@v2"), None);
        assert_eq!(FaultKind::parse_spec("bogus"), None);
    }

    #[test]
    fn kind_classification() {
        assert!(FaultKind::CrashVersion.is_transient());
        assert!(FaultKind::Transient(FaultSite::Register { reg: 1, bit: 0 }).is_transient());
        assert!(!FaultKind::ProcessorStop.is_transient());
        assert!(!FaultKind::PermanentFu(FuFault {
            class: FuClass::Alu,
            unit: 0,
            bit: 0,
            value: true
        })
        .is_transient());
    }
}
