#![warn(missing_docs)]

//! # vds-fault — fault models, injection and error-detecting codes
//!
//! The paper's fault model (§2.1): transient faults ("bit flips in
//! registers … only directly affect one version") and permanent faults
//! (made survivable by diversity); a fault may stop one version or the
//! whole processor; cross-address-space corruption is excluded by
//! hardware protection and error-detecting codes in memory. This crate
//! supplies all of it:
//!
//! * [`model`] — the fault taxonomy: transient register/memory/text bit
//!   flips, permanent stuck-at faults in functional units, version-crash
//!   and processor-stop faults.
//! * [`arrival`] — stochastic fault arrival: Poisson (memoryless, the
//!   classic radiation model) and bursty/clustered (Markov-modulated —
//!   the §5 scenario where "several [transients] may occur" close
//!   together and fault *history* becomes predictive).
//! * [`inject`] — applying faults to a running [`vds_sched::Machine`].
//! * [`edc`] — error-detecting/correcting codes: word parity, a
//!   Hamming SEC-DED code over 32-bit words, and CRC-32 over blocks —
//!   the paper's "error detecting codes for data in the memory".
//! * [`memory`] — an EDC-protected, scrubbable memory array built on the
//!   Hamming code (the concrete form of the paper's assumption).
//! * [`campaign`] — a deterministic, parallel fault-injection campaign
//!   driver (independent per-trial seeds, merged counters).
//! * [`vm`] — architectural-state fault sites for the `vds-vm` bytecode
//!   workload: registers, pc, literal pool and data memory, with
//!   journal-round-trippable `vm:…` spec strings.

//! ```
//! use vds_fault::memory::{ProtectedMemory, ReadOutcome};
//!
//! let mut mem = ProtectedMemory::from_image(&[0xDEAD_BEEF]);
//! mem.inject_flip(0, 13); // a radiation upset
//! assert_eq!(mem.read(0), ReadOutcome::Corrected(0xDEAD_BEEF));
//! assert_eq!(mem.read(0), ReadOutcome::Clean(0xDEAD_BEEF)); // healed
//! ```

pub mod arrival;
pub mod campaign;
pub mod edc;
pub mod inject;
pub mod memory;
pub mod model;
pub mod vm;

pub use arrival::{ArrivalProcess, BurstyProcess, PoissonProcess};
pub use model::{FaultKind, FaultSite};
pub use vm::VmFaultSite;
