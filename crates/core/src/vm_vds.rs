//! The bytecode-VM duplex engine: real programs under duplex.
//!
//! Where [`crate::micro_vds`] executes a synthetic workload on the
//! cycle-level SMT core, this backend runs *real programs* — seed
//! programs of the `vds-vm` register-based bytecode VM (checksum, sort,
//! matrix multiply, string hash) — as a virtual duplex: two diversified
//! variants (`vds_diversity::vm`) execute every round, their
//! architectural state is digested and compared at the round boundary,
//! and detections recover by stop-and-retry from the last data-memory
//! checkpoint. Time is measured in interpreted instructions (the VM's
//! natural clock); under the SMT schemes a round costs
//! `max(steps₁, steps₂)` because the variants are co-scheduled, while
//! the conventional scheme runs them serially at `steps₁ + steps₂`.
//!
//! Faults are [`VmFaultSite`] bit flips in the victim variant's
//! architectural state — register file, pc, literal pool, data memory —
//! applied *mid-execution* at a seed-derived step so they land on live
//! state (a flip before round entry would always be erased by the
//! canonical register reset). The expected outcome differs by site
//! class, which is what the forensics layer gets to observe: live
//! registers detect same-round, dead state masks, persistent
//! data-memory words can stay latent for rounds (latency > 0) or — in
//! padding no program reads — escape to the end of the run.
//!
//! Journal, forensics and conformance conventions are identical to the
//! micro backend, so `vds replay`, `vds faults` and `vds conformance`
//! consume VM journals unchanged.

use crate::config::{Scheme, Victim};
use crate::report::RunReport;
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use vds_fault::vm::VmFaultSite;
use vds_obs::journal::{Action as JournalAction, RoundEntry, Verdict as JournalVerdict};
use vds_obs::{obs_end_span, obs_event, obs_span};
use vds_obs::{Digest128, Digester128, NoopRecorder, Record, Recorder};
use vds_vm::{run_round, FaultPlan, Outcome, Program, SeedProgram, StateFlip, Vm};

/// Configuration of a VM duplex run.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Seed-program name (see [`vds_vm::SEED_PROGRAMS`]).
    pub program: String,
    /// Scheme of the duplex. [`Scheme::Conventional`] executes the two
    /// versions serially (round cost = steps₁ + steps₂); every SMT
    /// scheme co-schedules them (cost = max). Recovery is stop-and-retry
    /// in every scheme; the scheme otherwise only labels the journal
    /// header (conformance keys residual models by scheme name).
    pub scheme: Scheme,
    /// Checkpoint interval in rounds.
    pub s: u32,
    /// State-comparison cost in VM steps.
    pub cmp_cycles: u64,
    /// Checkpoint-write cost in VM steps.
    pub ckpt_cycles: u64,
    /// Seed for diversification, initial data memory and fault timing.
    pub seed: u64,
    /// Run *diverse* variants (the VDS design). Disable to run two
    /// identical copies — the ablation in which a register flip at a
    /// given physical index corrupts the same variable in both copies
    /// whenever both are hit, and single-copy flips land identically
    /// placed in the instruction stream.
    pub diversity: bool,
}

impl VmConfig {
    /// Sensible defaults for a seed program.
    pub fn new(program: &str) -> Self {
        VmConfig {
            program: program.to_string(),
            scheme: Scheme::SmtDeterministic,
            s: 8,
            cmp_cycles: 30,
            ckpt_cycles: 120,
            seed: 2024,
            diversity: true,
        }
    }
}

/// A one-shot fault to inject during the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmFault {
    /// Inject during round `at_round` (1-based, within the first
    /// checkpoint interval).
    pub at_round: u32,
    /// Which variant is hit.
    pub victim: Victim,
    /// Which architectural state bit is flipped.
    pub site: VmFaultSite,
}

/// The injected fault's lifecycle bookkeeping between injection and
/// detection (or end of run).
#[derive(Debug, Clone, Copy)]
struct OutstandingFault {
    /// [`VmDuplex::rounds_executed`] at injection time.
    injected_at_exec: u64,
    /// Simulated time (VM steps) at injection.
    injected_time: f64,
    /// The flip never fired (the victim halted before the scheduled
    /// step) or hit state the program had already retired: no live
    /// state changed, so the fault can never be detected.
    masked_on_arrival: bool,
}

/// What [`VmDuplex::maybe_inject`] hands back for one round: an
/// in-flight flip as (victim slot, plan), and/or a literal-pool flip
/// as (victim slot, lit index, bit) that the caller applies to text
/// and reverts after the round.
type PendingInjection = (Option<(usize, FaultPlan)>, Option<(usize, usize, u8)>);

struct VmDuplex<R> {
    cfg: VmConfig,
    sp: &'static SeedProgram,
    progs: [Program; 2],
    vms: [Vm; 2],
    ckpt_img: Vec<u32>,
    /// Global round number at the checkpoint (re-execution re-derives
    /// rounds `ckpt_round + 1 ..= ckpt_round + i`).
    ckpt_round: u64,
    rounds_since: u32,
    sim_time: f64,
    rng: SmallRng,
    fault: Option<VmFault>,
    fault_pending: bool,
    /// Trap/hang evidence observed in the current round, by slot.
    trap_evidence: Option<usize>,
    report: RunReport,
    rec: R,
    /// Flight-recorder entry for the round in flight (see
    /// [`crate::micro_vds`] — identical conventions).
    pending: Option<RoundEntry>,
    /// Canonical spec of the fault injected this round, if any.
    injected_spec: Option<String>,
    outstanding: Option<OutstandingFault>,
    /// Monotonic count of executed normal rounds; the round-denominated
    /// clock detection latency is measured on.
    rounds_executed: u64,
}

impl<R: Record> VmDuplex<R> {
    fn with_recorder(cfg: VmConfig, fault: Option<VmFault>, rec: R) -> Self {
        let sp = vds_vm::seed_program(&cfg.program)
            .unwrap_or_else(|| panic!("unknown seed program {:?}", cfg.program));
        let base = sp.assembled();
        let progs = if cfg.diversity {
            [
                vds_diversity::vm::diversify_vm(&base, 1, cfg.seed),
                vds_diversity::vm::diversify_vm(&base, 2, cfg.seed),
            ]
        } else {
            [base.clone(), base]
        };
        let dmem = sp.initial_dmem(cfg.seed);
        let vms = [Vm::with_mem(dmem.clone()), Vm::with_mem(dmem.clone())];
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0xD1CE);
        VmDuplex {
            cfg,
            sp,
            progs,
            vms,
            ckpt_img: dmem,
            ckpt_round: 0,
            rounds_since: 0,
            sim_time: 0.0,
            rng,
            fault,
            fault_pending: fault.is_some(),
            trap_evidence: None,
            report: RunReport::default(),
            rec,
            pending: None,
            injected_spec: None,
            outstanding: None,
            rounds_executed: 0,
        }
    }

    /// Digest of one variant's comparison window: the output registers
    /// plus the persistent state window of data memory.
    fn digest_of(&self, slot: usize) -> Digest128 {
        let vm = &self.vms[slot];
        let mut d = Digester128::new();
        d.push_words(&vm.output_regs());
        let w = vds_vm::STATE_WINDOW;
        d.push_words(&vm.mem[w.start..w.end]);
        d.finish()
    }

    /// Execute global round `g` on both variants; the victim slot (if
    /// any) gets the fault plan. Returns per-slot outcomes and the
    /// round's co-scheduled cost in steps.
    fn exec_round(
        &mut self,
        g: u64,
        plan: Option<(usize, FaultPlan)>,
    ) -> ([Outcome; 2], u64, bool) {
        let mut outcomes = [Outcome::Halted, Outcome::Halted];
        let mut fired = false;
        let mut steps = [0u64; 2];
        for slot in [0usize, 1] {
            let f = match &plan {
                Some((victim, p)) if *victim == slot => Some(*p),
                _ => None,
            };
            let r = run_round(&mut self.vms[slot], &self.progs[slot], g as u32, f.as_ref());
            outcomes[slot] = r.outcome;
            steps[slot] = r.steps;
            if f.is_some() {
                fired = r.fault_applied;
            }
        }
        // Conventional duplex runs the two versions serially on one
        // hardware thread (cost = sum); every SMT scheme co-schedules
        // them (cost = max). This is what gives the VM backend a
        // measured per-round gain against the conventional baseline.
        let cost = if self.cfg.scheme == Scheme::Conventional {
            steps[0] + steps[1]
        } else {
            steps[0].max(steps[1])
        };
        (outcomes, cost, fired)
    }

    /// Inject the pending one-shot fault if this is its round. Returns
    /// the victim slot and plan for [`VmDuplex::exec_round`]; literal
    /// flips mutate the victim's program text directly (the caller
    /// reverts after the round — the pool is text, protected by EDC in
    /// a real system, so the flip does not persist).
    fn maybe_inject(&mut self, i: u32) -> PendingInjection {
        if !self.fault_pending {
            return (None, None);
        }
        let Some(f) = self.fault else {
            return (None, None);
        };
        if f.at_round != i {
            return (None, None);
        }
        self.fault_pending = false;
        self.report.faults_injected += 1;
        let slot = f.victim.index();
        if self.rec.journal_enabled() {
            self.injected_spec = Some(format!("{}@v{}", f.site.spec_string(), slot + 1));
        }
        let t = self.sim_time;
        obs_event!(
            self.rec, t, "vm", "fault_injected",
            "round" => i, "version" => slot,
        );
        // Mid-execution step: early enough to land inside every seed
        // program's main loop, late enough to hit post-reset live state.
        let at_step = self.rng.gen_range(1..150u64);
        match f.site {
            VmFaultSite::Reg { index, bit } => (
                Some((
                    slot,
                    FaultPlan {
                        at_step,
                        flip: StateFlip::Reg { index, bit },
                    },
                )),
                None,
            ),
            VmFaultSite::Pc { bit } => (
                Some((
                    slot,
                    FaultPlan {
                        at_step,
                        flip: StateFlip::Pc { bit },
                    },
                )),
                None,
            ),
            VmFaultSite::Mem { addr, bit } => (
                Some((
                    slot,
                    FaultPlan {
                        at_step,
                        flip: StateFlip::Mem { addr, bit },
                    },
                )),
                None,
            ),
            VmFaultSite::Lit { index, bit } => {
                let pool = &mut self.progs[slot].lits;
                if pool.is_empty() {
                    self.outstanding = Some(OutstandingFault {
                        injected_at_exec: self.rounds_executed,
                        injected_time: t,
                        masked_on_arrival: true,
                    });
                    (None, None)
                } else {
                    let idx = usize::from(index) % pool.len();
                    pool[idx] ^= 1u32 << (bit % 32);
                    (None, Some((slot, idx, bit % 32)))
                }
            }
        }
    }

    /// Stash the flight-recorder entry for round `i` (same conventions
    /// as the micro engine: action defaults to `commit`, upgraded by the
    /// engine loop before [`VmDuplex::journal_finish`]).
    fn journal_stash(&mut self, i: u32, verdict: JournalVerdict, d1: Digest128, d2: Digest128) {
        if !self.rec.journal_enabled() {
            return;
        }
        let fault = self.injected_spec.take();
        // the VM duplex injects at most one fault, so its lane-local
        // fault id is always 0
        let fault_id = fault.as_ref().map(|_| 0);
        self.pending = Some(RoundEntry {
            seq: 0,
            lane: 0,
            round: u64::from(i),
            committed: 0,
            sim_time: self.sim_time,
            d1,
            d2,
            verdict,
            sched: "coschedule[v1,v2]".to_string(),
            action: JournalAction::Commit,
            rollforward: 0,
            fault,
            fault_id,
            fault_outcome: None,
        });
    }

    /// Credit a detection at time `t` to the outstanding injected fault.
    fn note_detection(&mut self, t: f64) {
        if let Some(o) = self.outstanding.take() {
            self.report.faults_detected += 1;
            self.report.detect_latency_rounds_sum += self.rounds_executed - o.injected_at_exec;
            self.report.detect_latency_time_sum += t - o.injected_time;
        }
    }

    fn journal_action(&mut self, action: JournalAction, rollforward: u32) {
        if let Some(p) = self.pending.as_mut() {
            p.action = action;
            p.rollforward = rollforward;
        }
    }

    fn journal_finish(&mut self) {
        if let Some(mut p) = self.pending.take() {
            p.committed = self.report.committed_rounds;
            self.rec.journal_push(p);
        }
    }

    /// Run one normal round of the duplex. Returns `Some(i)` on a
    /// detection (trap, hang or state mismatch) at interval round `i`.
    fn normal_round(&mut self) -> Option<u32> {
        let i = self.rounds_since + 1;
        let g = self.ckpt_round + u64::from(i);
        self.rounds_executed += 1;
        self.trap_evidence = None;
        let round_g = obs_span!(self.rec, "vm", "round", self.sim_time);

        let (plan, lit_flip) = self.maybe_inject(i);
        let fault_scheduled = plan.is_some();
        let (outcomes, cost, fired) = self.exec_round(g, plan);
        // a literal flip is program text for exactly one round; revert
        if let Some((slot, idx, bit)) = lit_flip {
            self.progs[slot].lits[idx] ^= 1u32 << bit;
        }
        if fault_scheduled || lit_flip.is_some() {
            self.outstanding = Some(OutstandingFault {
                injected_at_exec: self.rounds_executed,
                injected_time: self.sim_time,
                masked_on_arrival: fault_scheduled && !fired,
            });
        }
        self.sim_time += cost as f64 + self.cfg.cmp_cycles as f64;
        self.report.time_normal += cost as f64 + self.cfg.cmp_cycles as f64;

        for slot in [0usize, 1] {
            match outcomes[slot] {
                Outcome::Halted => {}
                Outcome::Trapped { .. } | Outcome::Hung => {
                    self.trap_evidence = Some(slot);
                }
            }
        }
        let t = self.sim_time;
        let d1 = self.digest_of(0);
        let d2 = self.digest_of(1);
        if let Some(slot) = self.trap_evidence {
            self.report.detections += 1;
            let verdict = if matches!(outcomes[slot], Outcome::Hung) {
                JournalVerdict::Hang
            } else {
                JournalVerdict::Trap
            };
            self.note_detection(t);
            self.journal_stash(i, verdict, d1, d2);
            obs_event!(self.rec, t, "vm", "detect", "round" => i, "evidence" => "trap");
            obs_end_span!(self.rec, round_g, t, "round" => i, "outcome" => "detect");
            return Some(i);
        }
        if d1 != d2 {
            self.report.detections += 1;
            self.note_detection(t);
            self.journal_stash(i, JournalVerdict::Mismatch, d1, d2);
            obs_event!(self.rec, t, "vm", "detect", "round" => i, "evidence" => "mismatch");
            obs_end_span!(self.rec, round_g, t, "round" => i, "outcome" => "detect");
            Some(i)
        } else {
            self.rounds_since = i;
            self.report.committed_rounds += 1;
            self.journal_stash(i, JournalVerdict::Match, d1, d2);
            obs_end_span!(self.rec, round_g, t, "round" => i, "outcome" => "commit");
            None
        }
    }

    fn take_checkpoint(&mut self) {
        self.sim_time += self.cfg.ckpt_cycles as f64;
        self.report.time_checkpoint += self.cfg.ckpt_cycles as f64;
        self.ckpt_img = self.vms[0].mem.clone();
        self.ckpt_round += u64::from(self.rounds_since);
        self.rounds_since = 0;
        self.report.checkpoints += 1;
        let t = self.sim_time;
        obs_event!(self.rec, t, "vm", "checkpoint", "number" => self.report.checkpoints);
    }

    /// Recovery for a detection at interval round `i`: stop-and-retry.
    /// Both variants restart from the checkpoint image and re-derive
    /// rounds `1..=i` cleanly; the re-derived states must agree (the
    /// one-shot fault is gone), which commits round `i`. A disagreement
    /// after a clean retry means the checkpoint itself was corrupted —
    /// the duplex cannot make progress and rolls back, surrendering the
    /// interval.
    fn recover(&mut self, i: u32) {
        let start = self.sim_time;
        let recovery_g = obs_span!(self.rec, "vm", "recovery", start);
        for slot in [0usize, 1] {
            self.vms[slot].mem.copy_from_slice(&self.ckpt_img);
        }
        let mut cost = 0u64;
        for r in 1..=i {
            let g = self.ckpt_round + u64::from(r);
            let (outcomes, c, _) = self.exec_round(g, None);
            cost += c;
            if outcomes.iter().any(|o| !matches!(o, Outcome::Halted)) {
                // cannot happen with a one-shot fault (the retry is
                // clean), but guard like the micro engine does
                self.sim_time += cost as f64 + self.cfg.cmp_cycles as f64;
                self.rollback(i);
                self.report.time_recovery += self.sim_time - start;
                obs_end_span!(self.rec, recovery_g, self.sim_time, "round" => i);
                return;
            }
        }
        self.sim_time += cost as f64 + self.cfg.cmp_cycles as f64;
        let (d1, d2) = (self.digest_of(0), self.digest_of(1));
        if d1 == d2 {
            self.report.recoveries_ok += 1;
            self.rounds_since = i;
            self.report.committed_rounds += 1;
            self.journal_action(JournalAction::Recover, 0);
            let t = self.sim_time;
            obs_event!(
                self.rec, t, "vm", "recovery",
                "round" => i, "scheme" => self.cfg.scheme.name(),
            );
            if self.rounds_since >= self.cfg.s {
                self.take_checkpoint();
            }
        } else {
            self.rollback(i);
        }
        self.trap_evidence = None;
        self.report.time_recovery += self.sim_time - start;
        obs_end_span!(self.rec, recovery_g, self.sim_time, "round" => i);
    }

    /// Surrender the interval: restore the checkpoint image and uncommit
    /// its rounds.
    fn rollback(&mut self, i: u32) {
        self.journal_action(JournalAction::Rollback, 0);
        self.report.rollbacks += 1;
        match self.report.committed_rounds.checked_sub(u64::from(i - 1)) {
            Some(v) => self.report.committed_rounds = v,
            None => {
                debug_assert!(
                    false,
                    "committed_rounds underflow: {} - {} during rollback",
                    self.report.committed_rounds,
                    i - 1
                );
                vds_obs::log_error!(
                    "core.vm",
                    "committed_rounds underflow: {} - {} during rollback",
                    self.report.committed_rounds,
                    i - 1
                );
                self.report.committed_rounds = 0;
            }
        }
        self.rounds_since = 0;
        for slot in [0usize, 1] {
            self.vms[slot].mem.copy_from_slice(&self.ckpt_img);
        }
        let t = self.sim_time;
        obs_event!(self.rec, t, "vm", "rollback", "round" => i, "rounds_lost" => i - 1);
    }
}

/// Run a VM duplex until `target_rounds` rounds are committed.
pub fn run_vm_duplex(cfg: &VmConfig, fault: Option<VmFault>, target_rounds: u64) -> RunReport {
    run_vm_duplex_with_state(cfg, fault, target_rounds).0
}

/// [`run_vm_duplex`], additionally returning variant 1's final
/// data-memory image (for output-correctness audits against
/// [`vds_vm::SeedProgram::oracle`]).
pub fn run_vm_duplex_with_state(
    cfg: &VmConfig,
    fault: Option<VmFault>,
    target_rounds: u64,
) -> (RunReport, Vec<u32>) {
    let (report, img, _) = run_vm_engine(cfg, fault, target_rounds, NoopRecorder);
    (report, img)
}

/// [`run_vm_duplex`], recording metrics and a bounded event trace.
pub fn run_vm_duplex_recorded(
    cfg: &VmConfig,
    fault: Option<VmFault>,
    target_rounds: u64,
) -> (RunReport, Recorder) {
    let (report, _, rec) = run_vm_engine(cfg, fault, target_rounds, Recorder::new());
    (report, rec)
}

/// [`run_vm_duplex_recorded`] plus the final data-memory image.
pub fn run_vm_duplex_recorded_with_state(
    cfg: &VmConfig,
    fault: Option<VmFault>,
    target_rounds: u64,
) -> (RunReport, Vec<u32>, Recorder) {
    run_vm_engine(cfg, fault, target_rounds, Recorder::new())
}

/// [`run_vm_duplex_recorded_with_state`] with a caller-supplied
/// recorder, so the CLI can honour ring-size overrides and journals.
pub fn run_vm_duplex_with_recorder<R: Record>(
    cfg: &VmConfig,
    fault: Option<VmFault>,
    target_rounds: u64,
    rec: R,
) -> (RunReport, Vec<u32>, R) {
    run_vm_engine(cfg, fault, target_rounds, rec)
}

fn run_vm_engine<R: Record>(
    cfg: &VmConfig,
    fault: Option<VmFault>,
    target_rounds: u64,
    rec: R,
) -> (RunReport, Vec<u32>, R) {
    let mut e = VmDuplex::with_recorder(cfg.clone(), fault, rec);
    // Fail-safe watchdog, exactly as the micro engine: no forward
    // progress for 64 engine iterations → fail-safe shutdown.
    let mut last_committed = 0u64;
    let mut stalled_iterations = 0u32;
    while e.report.committed_rounds < target_rounds {
        match e.normal_round() {
            None => {
                if e.rounds_since >= e.cfg.s {
                    e.take_checkpoint();
                    e.journal_action(JournalAction::Checkpoint, 0);
                }
            }
            Some(i) => e.recover(i),
        }
        if e.report.committed_rounds > last_committed {
            last_committed = e.report.committed_rounds;
            stalled_iterations = 0;
        } else {
            stalled_iterations += 1;
            if stalled_iterations > 64 {
                e.report.shutdown = true;
                let t = e.sim_time;
                obs_event!(e.rec, t, "vm", "shutdown");
                e.journal_action(JournalAction::Shutdown, 0);
                e.journal_finish();
                break;
            }
        }
        e.journal_finish();
    }
    e.report.total_time = e.sim_time;
    let img = e.vms[0].mem.clone();
    // classify a fault no comparison ever caught: variant 1's output
    // state still matches the pure-Rust oracle (corruption overwritten,
    // confined to the other variant, or architecturally masked) →
    // masked; wrong and undetected → escaped (silent data corruption)
    if let Some(o) = e.outstanding.take() {
        let oracle = e.sp.oracle(e.cfg.seed, e.report.committed_rounds as u32);
        let correct = img == oracle;
        let outcome = if o.masked_on_arrival || correct {
            e.report.faults_masked += 1;
            "masked"
        } else {
            e.report.faults_escaped += 1;
            "escaped"
        };
        e.rec.journal_resolve_fault(0, outcome);
    }
    let mut rec = e.rec;
    e.report.export_metrics(&mut rec, "vds");
    rec.rollup_spans();
    (e.report, img, rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(program: &str) -> VmConfig {
        VmConfig::new(program)
    }

    #[test]
    fn fault_free_run_commits_and_checkpoints() {
        for sp in vds_vm::SEED_PROGRAMS {
            let r = run_vm_duplex(&cfg(sp.name), None, 20);
            assert_eq!(r.committed_rounds, 20, "{}", sp.name);
            assert_eq!(r.detections, 0, "{}", sp.name);
            assert_eq!(r.checkpoints, 2, "{}", sp.name); // after rounds 8 and 16
            assert!(r.total_time > 0.0, "{}", sp.name);
        }
    }

    #[test]
    fn final_state_matches_oracle_fault_free() {
        for sp in vds_vm::SEED_PROGRAMS {
            let c = cfg(sp.name);
            let (r, img) = run_vm_duplex_with_state(&c, None, 13);
            assert_eq!(r.committed_rounds, 13);
            assert_eq!(img, sp.oracle(c.seed, 13), "{}", sp.name);
        }
    }

    #[test]
    fn identical_copies_match_oracle_too() {
        let mut c = cfg("checksum");
        c.diversity = false;
        let (r, img) = run_vm_duplex_with_state(&c, None, 9);
        assert_eq!(r.committed_rounds, 9);
        assert_eq!(
            img,
            vds_vm::seed_program("checksum").unwrap().oracle(c.seed, 9)
        );
    }

    #[test]
    fn live_register_fault_detected_and_recovered() {
        // r1 is an output register: a mid-round flip diverges the
        // digests the same round
        let f = VmFault {
            at_round: 3,
            victim: Victim::V2,
            site: VmFaultSite::Reg { index: 1, bit: 5 },
        };
        for sp in vds_vm::SEED_PROGRAMS {
            let c = cfg(sp.name);
            let (r, img) = run_vm_duplex_with_state(&c, Some(f), 20);
            assert_eq!(r.committed_rounds, 20, "{}", sp.name);
            assert_eq!(r.faults_injected, 1, "{}", sp.name);
            assert_eq!(
                r.faults_detected + r.faults_masked,
                1,
                "{}: fault neither detected nor masked: {r}",
                sp.name
            );
            assert_eq!(r.faults_escaped, 0, "{}", sp.name);
            assert_eq!(img, sp.oracle(c.seed, 20), "{}: output corrupted", sp.name);
        }
    }

    #[test]
    fn register_fault_on_victim_one_recovers_to_oracle_state() {
        let f = VmFault {
            at_round: 2,
            victim: Victim::V1,
            site: VmFaultSite::Reg { index: 0, bit: 17 },
        };
        let c = cfg("sort");
        let (r, img) = run_vm_duplex_with_state(&c, Some(f), 16);
        assert_eq!(r.committed_rounds, 16);
        assert_eq!(r.faults_escaped, 0, "{r}");
        assert_eq!(
            img,
            vds_vm::seed_program("sort").unwrap().oracle(c.seed, 16)
        );
    }

    #[test]
    fn dead_padding_memory_fault_escapes() {
        // padding words are never read and never compared: the flip
        // survives to the end of the run as silent data corruption —
        // unless a detection-triggered recovery happens to restore the
        // checkpoint, which a clean run never does
        let f = VmFault {
            at_round: 2,
            victim: Victim::V1,
            site: VmFaultSite::Mem {
                addr: (vds_vm::DMEM_WORDS - 2) as u8,
                bit: 3,
            },
        };
        let c = cfg("checksum");
        let (r, img) = run_vm_duplex_with_state(&c, Some(f), 12);
        assert_eq!(r.committed_rounds, 12);
        assert_eq!(r.faults_injected, 1);
        assert_eq!(
            r.detections, 0,
            "padding is outside every comparison window"
        );
        assert_eq!(r.faults_escaped, 1, "{r}");
        assert_ne!(
            img,
            vds_vm::seed_program("checksum").unwrap().oracle(c.seed, 12)
        );
    }

    #[test]
    fn pc_fault_detected() {
        let f = VmFault {
            at_round: 4,
            victim: Victim::V2,
            site: VmFaultSite::Pc { bit: 9 },
        };
        let c = cfg("matmul");
        let r = run_vm_duplex(&c, Some(f), 15);
        assert_eq!(r.committed_rounds, 15);
        assert_eq!(r.faults_injected, 1);
        assert_eq!(r.faults_escaped, 0, "{r}");
    }

    #[test]
    fn lit_fault_detected_or_masked_and_output_correct() {
        let f = VmFault {
            at_round: 5,
            victim: Victim::V1,
            site: VmFaultSite::Lit { index: 2, bit: 11 },
        };
        for sp in vds_vm::SEED_PROGRAMS {
            let c = cfg(sp.name);
            let (r, img) = run_vm_duplex_with_state(&c, Some(f), 14);
            assert_eq!(r.committed_rounds, 14, "{}", sp.name);
            assert_eq!(r.faults_escaped, 0, "{}: {r}", sp.name);
            assert_eq!(img, sp.oracle(c.seed, 14), "{}", sp.name);
        }
    }

    #[test]
    fn conservation_holds_across_a_seeded_site_sample() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(0xF00D);
        let mut detected = 0u64;
        for trial in 0..24u64 {
            let sp = &vds_vm::SEED_PROGRAMS[(trial % 4) as usize];
            let base = vds_vm::seed_program(sp.name).unwrap().assembled();
            let site = vds_fault::vm::sample_vm_site(
                &mut rng,
                vds_vm::DMEM_WORDS as u32,
                base.lits.len() as u32,
            );
            let f = VmFault {
                at_round: 1 + (trial % 6) as u32,
                victim: if trial % 2 == 0 {
                    Victim::V1
                } else {
                    Victim::V2
                },
                site,
            };
            let mut c = cfg(sp.name);
            c.seed = 2024 ^ trial;
            let r = run_vm_duplex(&c, Some(f), 12);
            assert_eq!(r.faults_injected, 1, "trial {trial}");
            assert_eq!(
                r.faults_detected + r.faults_masked + r.faults_escaped,
                r.faults_injected,
                "trial {trial}: lifecycle leak: {r}"
            );
            detected += r.faults_detected;
        }
        assert!(detected > 0, "no sampled site was ever detected");
    }

    #[test]
    fn diversified_variants_diverge_where_identical_copies_mask() {
        // Hit BOTH runs with the same physical-register flip. With
        // diversity the variants place different variables at a given
        // physical index, so at least one scratch-register flip that an
        // identical-copy duplex masks (same corruption in comparison or
        // none at all) is caught by the diversified duplex.
        let mut diverged_only_with_diversity = 0u32;
        'scan: for sp in vds_vm::SEED_PROGRAMS {
            for index in 4u16..8 {
                for bit in [0u8, 3, 7, 13, 21, 30] {
                    let f = VmFault {
                        at_round: 2,
                        victim: Victim::V2,
                        site: VmFaultSite::Reg { index, bit },
                    };
                    let c_div = cfg(sp.name);
                    let mut c_same = cfg(sp.name);
                    c_same.diversity = false;
                    let rd = run_vm_duplex(&c_div, Some(f), 10);
                    let rs = run_vm_duplex(&c_same, Some(f), 10);
                    if rd.detections > 0 && rs.detections == 0 && rs.faults_escaped == 0 {
                        diverged_only_with_diversity += 1;
                        break 'scan;
                    }
                }
            }
        }
        assert!(
            diverged_only_with_diversity > 0,
            "no flip separated the diversified duplex from the identical-copy ablation"
        );
    }

    #[test]
    fn conventional_scheme_is_serial_and_slower_but_equivalent() {
        for sp in vds_vm::SEED_PROGRAMS {
            let smt = cfg(sp.name);
            let mut conv = cfg(sp.name);
            conv.scheme = Scheme::Conventional;
            let (rs, is) = run_vm_duplex_with_state(&smt, None, 15);
            let (rc, ic) = run_vm_duplex_with_state(&conv, None, 15);
            assert_eq!(rs.committed_rounds, rc.committed_rounds, "{}", sp.name);
            assert_eq!(is, ic, "{}: final image differs by scheme", sp.name);
            assert!(
                rc.total_time > rs.total_time,
                "{}: serial duplex not slower: {} vs {}",
                sp.name,
                rc.total_time,
                rs.total_time
            );
        }
    }

    #[test]
    fn journal_has_expected_shape() {
        let f = VmFault {
            at_round: 3,
            victim: Victim::V2,
            site: VmFaultSite::Reg { index: 1, bit: 5 },
        };
        let mut rec = Recorder::new();
        rec.enable_journal(vds_obs::JournalHeader::new("vm", "smt-det", 2024, 8, 10));
        let (r, _, rec) = run_vm_duplex_with_recorder(&cfg("strhash"), Some(f), 10, rec);
        assert_eq!(r.committed_rounds, 10);
        let j = rec.journal();
        assert!(!j.entries().is_empty());
        // every executed round journals exactly one entry
        let faulted: Vec<_> = j.entries().iter().filter(|e| e.fault.is_some()).collect();
        assert_eq!(faulted.len(), 1);
        assert!(faulted[0]
            .fault
            .as_ref()
            .unwrap()
            .starts_with("vm:reg:1:5@v2"));
        assert_eq!(faulted[0].fault_id, Some(0));
        // the lifecycle resolved: some entry carries the outcome
        assert!(
            j.entries().iter().any(|e| e.fault_outcome.is_some()),
            "fault outcome never resolved"
        );
        // sim_time is monotone and sequenced gap-free
        for (k, e) in j.entries().iter().enumerate() {
            assert_eq!(e.seq, k as u64);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let f = VmFault {
            at_round: 2,
            victim: Victim::V1,
            site: VmFaultSite::Mem { addr: 20, bit: 9 },
        };
        let c = cfg("matmul");
        let (r1, i1) = run_vm_duplex_with_state(&c, Some(f), 18);
        let (r2, i2) = run_vm_duplex_with_state(&c, Some(f), 18);
        assert_eq!(r1.committed_rounds, r2.committed_rounds);
        assert_eq!(r1.total_time, r2.total_time);
        assert_eq!(r1.faults_detected, r2.faults_detected);
        assert_eq!(i1, i2);
    }

    #[test]
    #[should_panic(expected = "unknown seed program")]
    fn unknown_program_panics_with_name() {
        let _ = run_vm_duplex(&cfg("nope"), None, 1);
    }
}
