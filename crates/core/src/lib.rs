#![warn(missing_docs)]

//! # vds-core — virtual duplex systems on SMT processors
//!
//! The paper's contribution, as an executable system. A **virtual duplex
//! system (VDS)** runs two diverse versions of a program in rounds,
//! compares their states after every round, checkpoints every `s` rounds,
//! and holds a third diverse version in reserve. On a state mismatch at
//! round `i` the spare replays rounds 1..i from the checkpoint and a
//! 2-out-of-3 vote identifies the faulty version (*stop-and-retry*). On a
//! simultaneous multithreaded processor the two versions run in parallel
//! hardware threads, and during recovery the second thread performs a
//! **roll-forward** (deterministic, probabilistic, or prediction-guided)
//! while the first replays — the paper's §3–§4 schemes, all implemented
//! here, plus the §5 boosted multi-thread variants.
//!
//! Two interchangeable execution backends:
//!
//! * [`abstract_vds`] — the paper's abstract timing model (`t`, `c`, `t'`,
//!   `α`, `s`) driven by stochastic fault processes. Fast enough for 10⁶
//!   incidents; validates every closed form in `vds-analytic` and
//!   regenerates the Figure 1 timelines.
//! * [`micro_vds`] — versions are *real diversified programs* executing on
//!   the cycle-level SMT machine (`vds-smtsim` + `vds-sched`), with real
//!   state comparison digests (`vds-checkpoint`), real fault injection
//!   (`vds-fault`) and real recovery execution. Slower, but nothing is
//!   assumed: `α`, `t`, `c`, `t'` all *emerge*.
//! * [`vm_vds`] — *real programs* under duplex: seed programs of the
//!   `vds-vm` register-based bytecode VM run as two diversified variants
//!   (`vds_diversity::vm`), with architectural-state fault injection
//!   (`vds_fault::vm`) and stop-and-retry recovery from data-memory
//!   checkpoints. Time is counted in interpreted instructions.
//!
//! Support modules: [`config`] (schemes and fault plans), [`report`]
//! (accounting), [`workload`] (the memory-resident VDS application),
//! [`gain`] (measured-vs-analytic comparison helpers), [`conformance`]
//! (run-level predicted-vs-measured gain residuals) and [`flowchart`]
//! (DOT export of the Figures 2–3 recovery state machines).

pub mod abstract_vds;
pub mod config;
pub mod conformance;
pub mod flowchart;
pub mod gain;
pub mod micro_vds;
pub mod report;
pub mod vm_vds;
pub mod workload;

pub use config::{FaultModel, Scheme, Victim};
pub use report::RunReport;
