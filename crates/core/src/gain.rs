//! Measured-gain helpers: turning two run reports into the quantities
//! the paper's equations predict, and sweeping incidents to validate the
//! closed forms statistically.

use crate::abstract_vds::{simulate_incident, AbstractConfig};
use crate::config::{Scheme, Victim};
use vds_analytic::timing;
use vds_analytic::Params;

/// Ratio of throughputs (SMT over conventional) — the end-to-end gain a
/// user of the system actually sees.
pub fn throughput_gain(smt: &crate::RunReport, conv: &crate::RunReport) -> f64 {
    smt.throughput() / conv.throughput()
}

/// Measured per-incident recovery gain for a fault at round `i`:
/// `(T1_corr + progress·T1_round) / THT2_corr(measured)` — the exact
/// quantity Eqs. (6), (9)–(12) model, with the engine's *integral*
/// roll-forward progress.
pub fn incident_gain(cfg: &AbstractConfig, i: u32, pick_correct: Option<bool>) -> f64 {
    let inc = simulate_incident(cfg, i, Victim::V1, pick_correct);
    let p = &cfg.params;
    (timing::t1_corr(p, i) + f64::from(inc.progress) * timing::t1_round(p)) / inc.recovery_time
}

/// Average measured gain over all fault rounds `i = 1..=s`, with picks
/// resolved by expectation: `p·gain(hit) + (1−p)·gain(miss)`.
pub fn average_incident_gain(cfg: &AbstractConfig, p_correct: f64) -> f64 {
    let s = cfg.params.s;
    (1..=s)
        .map(|i| {
            if cfg.scheme.progress_guaranteed() || cfg.scheme == Scheme::Conventional {
                incident_gain(cfg, i, None)
            } else {
                p_correct * incident_gain(cfg, i, Some(true))
                    + (1.0 - p_correct) * incident_gain(cfg, i, Some(false))
            }
        })
        .sum::<f64>()
        / f64::from(s)
}

/// The analytic average the engine should match, evaluated with the same
/// integral roll-forward progress the engine performs (the paper's
/// real-valued `i/2`, `i/4` are replaced by their floors).
pub fn analytic_average_integral(params: &Params, scheme: Scheme, p_correct: f64) -> f64 {
    let s = params.s;
    (1..=s)
        .map(|i| {
            let x = scheme
                .rollforward_intent(i)
                .floor()
                .min(f64::from(s - i))
                .max(0.0);
            let hit = (timing::t1_corr(params, i) + x * timing::t1_round(params))
                / recovery_denominator(params, scheme, i);
            let miss = timing::t1_corr(params, i) / recovery_denominator(params, scheme, i);
            if scheme == Scheme::Conventional {
                // the reference architecture: gain over itself is 1
                1.0
            } else if scheme.progress_guaranteed() {
                hit
            } else {
                p_correct * hit + (1.0 - p_correct) * miss
            }
        })
        .sum::<f64>()
        / f64::from(s)
}

fn recovery_denominator(params: &Params, scheme: Scheme, i: u32) -> f64 {
    use vds_analytic::multithread::alpha_k;
    let i_f = f64::from(i);
    match scheme {
        Scheme::Conventional => timing::t1_corr(params, i),
        Scheme::SmtDeterministic | Scheme::SmtProbabilistic | Scheme::SmtPredictive => {
            timing::tht2_corr(params, i)
        }
        Scheme::SmtBoosted3 => i_f * 3.0 * alpha_k(params.alpha, 3) * params.t + 2.0 * params.t_cmp,
        Scheme::SmtBoosted5 => i_f * 5.0 * alpha_k(params.alpha, 5) * params.t + 2.0 * params.t_cmp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(scheme: Scheme) -> AbstractConfig {
        AbstractConfig::new(Params::paper_default(), scheme)
    }

    #[test]
    fn engine_matches_integral_analytic_exactly_per_scheme() {
        // The engine and the integral-progress analytic evaluation must
        // agree to machine precision: same clamps, same floors, same
        // denominators.
        for scheme in [
            Scheme::SmtDeterministic,
            Scheme::SmtProbabilistic,
            Scheme::SmtPredictive,
            Scheme::SmtBoosted3,
            Scheme::SmtBoosted5,
        ] {
            for &p in &[0.0, 0.5, 1.0] {
                let measured = average_incident_gain(&cfg(scheme), p);
                let analytic = analytic_average_integral(&Params::paper_default(), scheme, p);
                assert!(
                    (measured - analytic).abs() < 1e-9,
                    "{scheme:?} p={p}: {measured} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn integral_average_close_to_papers_continuous_average() {
        // The paper's Eq. (13) uses real-valued roll-forward lengths; the
        // integral version differs only by O(1/s) + rounding. At s = 20
        // they should agree within a few percent for the predictive
        // scheme (whose x = min(i, s−i) is already integral!).
        let p = Params::paper_default();
        for &pc in &[0.5, 1.0] {
            let integral = analytic_average_integral(&p, Scheme::SmtPredictive, pc);
            let continuous = vds_analytic::predictive::gbar_corr_exact(&p, pc);
            assert!(
                (integral - continuous).abs() < 1e-9,
                "predictive x is integral; forms must coincide: {integral} vs {continuous}"
            );
        }
        // deterministic: floors genuinely differ, but only slightly
        let integral = analytic_average_integral(&p, Scheme::SmtDeterministic, 0.5);
        let continuous = vds_analytic::rollforward::gbar_det_exact(&p);
        assert!(
            (integral - continuous).abs() / continuous < 0.12,
            "{integral} vs {continuous}"
        );
        assert!(integral <= continuous, "flooring can only lose progress");
    }

    #[test]
    fn ordering_of_schemes_at_p_half() {
        // At p = 0.5 the paper's ordering: predictive ≥ prob ≈ det.
        let p_half = 0.5;
        let pred = average_incident_gain(&cfg(Scheme::SmtPredictive), p_half);
        let prob = average_incident_gain(&cfg(Scheme::SmtProbabilistic), p_half);
        let det = average_incident_gain(&cfg(Scheme::SmtDeterministic), p_half);
        assert!(pred > prob, "pred={pred} prob={prob}");
        assert!((prob - det).abs() < 0.15, "prob={prob} det={det}");
    }

    #[test]
    fn headline_gain_reproduced_by_the_engine() {
        // The paper's G_max ≈ 1.38 at (p=.5, α=.65, β=.1) — the engine's
        // measured average at s=20 should land within a few percent
        // (finite s + integral rounding).
        let g = average_incident_gain(&cfg(Scheme::SmtPredictive), 0.5);
        assert!((g - 1.38).abs() < 0.06, "measured {g}");
    }

    #[test]
    fn throughput_gain_helper() {
        use crate::RunReport;
        let smt = RunReport {
            total_time: 10.0,
            committed_rounds: 100,
            ..Default::default()
        };
        let conv = RunReport {
            total_time: 20.0,
            committed_rounds: 100,
            ..Default::default()
        };
        assert!((throughput_gain(&smt, &conv) - 2.0).abs() < 1e-12);
    }
}
