//! The VDS application workload for the micro backend.
//!
//! Classical virtual duplex systems compare and transplant *defined
//! comparison states* between diverse versions; that only works if the
//! state that matters is representation-independent. This workload is
//! written in that style: **all live state resides in data memory at
//! every round boundary** — registers are dead at `yield` — so
//!
//! * two diverse versions' data memories are bit-identical after equal
//!   round counts (the comparison invariant), and
//! * any version can be (re)started *at any round boundary* from any
//!   state image via a canonical context `{regs: 0, pc: round-entry,
//!   dmem: image}` — which is exactly what the recovery schemes need for
//!   replay and cross-state roll-forward.
//!
//! The computation itself is a keyed state-mixing loop (multiplies,
//! xors, shifts, table lookups) over [`STATE_WORDS`] words — enough
//! microarchitectural variety that diversity transforms and functional-
//! unit faults have observable consequences.
//!
//! Memory layout (word addresses):
//!
//! ```text
//! 0                  round counter (completed rounds)
//! 1                  remaining rounds (counts down to 0)
//! 2 .. 2+S           mixing state S[0..S]
//! 2+S .. 2+S+T       lookup table (read-only)
//! ```

use vds_smtsim::asm::assemble;
use vds_smtsim::program::{Program, Symbol};

/// Mixing-state size in words.
pub const STATE_WORDS: u32 = 8;
/// Lookup-table size in words (power of two; the mixer masks with T−1).
pub const TABLE_WORDS: u32 = 32;

/// Address of the round counter.
pub const ADDR_ROUND: u32 = 0;
/// Address of the remaining-rounds counter.
pub const ADDR_REMAINING: u32 = 1;
/// First state word.
pub const ADDR_STATE: u32 = 2;
/// First table word.
pub const ADDR_TABLE: u32 = ADDR_STATE + STATE_WORDS;
/// Words of data memory the workload needs (plus slack for nothing —
/// the address space ends right after the table, so wild pointers trap).
pub const DMEM_WORDS: usize = (ADDR_TABLE + TABLE_WORDS) as usize;

/// The comparable state window: counters + mixing state (the table is
/// read-only and could be included, but keeping it out exercises the
/// "window" concept).
pub const STATE_WINDOW: std::ops::Range<u32> = 0..ADDR_TABLE;

/// Build the base workload program performing `rounds` rounds.
pub fn build(rounds: u32) -> Program {
    assert!(rounds >= 1);
    let s = STATE_WORDS;
    let t_mask = TABLE_WORDS - 1;
    let a_state = ADDR_STATE;
    let a_table = ADDR_TABLE;
    let src = format!(
        r#"
        ; memory-resident VDS workload: all live state in dmem at yield
        .data
        counters: .word 0, {rounds}
        state:    .word 17, 42, 99, 7, 1234, 5678, 4321, 8765
        table:    .word  3,  1,  4,  1,   5,   9,   2,   6
                  .word  5,  3,  5,  8,   9,   7,   9,   3
                  .word  2,  3,  8,  4,   6,   2,   6,   4
                  .word  3,  3,  8,  3,   2,   7,   9,   5
        .text
        round:
            ld   r1, {addr_round}(r0)   ; k = completed rounds
            addi r2, r0, 0              ; j = 0
            addi r9, r0, {s}
        mix:
            add  r3, r2, r0
            addi r3, r3, {a_state}      ; &S[j]
            ld   r4, 0(r3)              ; S[j]
            ; idx = (S[j] + k) & (T-1)
            add  r5, r4, r1
            andi r5, r5, {t_mask}
            addi r5, r5, {a_table}
            ld   r6, 0(r5)              ; table[idx]
            ; S[j] = (S[j]*31 + table[idx]) ^ (S[(j+1) mod s] >> 3)
            addi r7, r0, 31
            mul  r8, r4, r7
            add  r8, r8, r6
            addi r10, r2, 1
            blt  r10, r9, nowrap
            addi r10, r0, 0
        nowrap:
            addi r10, r10, {a_state}
            ld   r11, 0(r10)            ; S[j+1 mod s]
            srli r11, r11, 3
            xor  r8, r8, r11
            st   r8, 0(r3)
            addi r2, r2, 1
            bne  r2, r9, mix
            ; counters
            addi r1, r1, 1
            st   r1, {addr_round}(r0)
            ld   r2, {addr_remaining}(r0)
            subi r2, r2, 1
            st   r2, {addr_remaining}(r0)
            yield
            bne  r2, r0, round
            halt
        "#,
        addr_round = ADDR_ROUND,
        addr_remaining = ADDR_REMAINING,
    );
    let prog = assemble(&src).expect("workload must assemble");
    debug_assert!(matches!(prog.symbol("round"), Some(Symbol::Text(_))));
    prog
}

/// The round-entry instruction index of a (possibly diversified) workload
/// program.
///
/// # Panics
/// Panics if the program lost its `round` symbol.
pub fn round_entry(prog: &Program) -> u32 {
    match prog.symbol("round") {
        Some(Symbol::Text(t)) => t,
        other => panic!("workload without a `round` text symbol: {other:?}"),
    }
}

/// Pure-Rust oracle: the expected `(round_counter, state)` after `rounds`
/// rounds.
pub fn oracle(rounds: u32) -> (u32, Vec<u32>) {
    let mut state: Vec<u32> = vec![17, 42, 99, 7, 1234, 5678, 4321, 8765];
    let table: Vec<u32> = vec![
        3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7,
        9, 5,
    ];
    let s = STATE_WORDS as usize;
    for k in 0..rounds {
        for j in 0..s {
            let sj = state[j];
            let idx = (sj.wrapping_add(k) & (TABLE_WORDS - 1)) as usize;
            let nxt = state[(j + 1) % s] >> 3;
            state[j] = sj.wrapping_mul(31).wrapping_add(table[idx]) ^ nxt;
        }
    }
    (rounds, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_smtsim::core::{Core, CoreConfig, RunOutcome, ThreadId};

    fn run_rounds(prog: &Program, rounds: u32) -> Vec<u32> {
        let mut core = Core::new(CoreConfig::single_threaded());
        let t = core.add_thread(prog, DMEM_WORDS);
        for _ in 0..rounds {
            assert_eq!(
                core.run_until_all_blocked(10_000_000),
                RunOutcome::AllYielded
            );
            core.resume(t);
        }
        core.thread(ThreadId(0)).dmem.clone()
    }

    #[test]
    fn matches_oracle() {
        let prog = build(10);
        for check in [1u32, 5, 10] {
            let dmem = run_rounds(&prog, check);
            let (k, state) = oracle(check);
            assert_eq!(dmem[ADDR_ROUND as usize], k);
            assert_eq!(
                &dmem[ADDR_STATE as usize..(ADDR_STATE + STATE_WORDS) as usize],
                &state[..],
                "state after {check} rounds"
            );
        }
    }

    #[test]
    fn state_is_memory_resident_at_yield() {
        // Canonical re-entry: run 3 rounds natively; separately run 2
        // rounds, capture dmem, re-enter at `round` with zeroed registers
        // and run 1 more round — states must agree.
        let prog = build(10);
        let native = run_rounds(&prog, 3);

        let mut core = Core::new(CoreConfig::single_threaded());
        let t = core.add_thread(&prog, DMEM_WORDS);
        for _ in 0..2 {
            core.run_until_all_blocked(10_000_000);
            core.resume(t);
        }
        // canonical re-entry
        let th = core.thread_mut(t);
        th.regs = [0; 16];
        th.pc = round_entry(&prog);
        assert_eq!(
            core.run_until_all_blocked(10_000_000),
            RunOutcome::AllYielded
        );
        let reentered = core.thread(ThreadId(0)).dmem.clone();
        assert_eq!(native, reentered);
    }

    #[test]
    fn diversified_versions_agree_in_memory() {
        let base = build(6);
        for idx in 1..=3u32 {
            let v = vds_diversity::diversify(&base, idx, 2024);
            let a = run_rounds(&base, 4);
            let b = run_rounds(&v, 4);
            assert_eq!(a, b, "version {idx} dmem diverged");
            // and the round symbol survived diversification
            let entry = round_entry(&v);
            assert!((entry as usize) < v.text.len());
        }
    }

    #[test]
    fn cross_version_state_adoption_works() {
        // Run the base for 2 rounds, then hand its memory image to a
        // *diverse* version via a canonical context and continue — the
        // result must equal 3 native rounds.
        let base = build(10);
        let v1 = vds_diversity::diversify(&base, 1, 7);
        let native3 = run_rounds(&base, 3);

        let mut core = Core::new(CoreConfig::single_threaded());
        let t = core.add_thread(&base, DMEM_WORDS);
        for _ in 0..2 {
            core.run_until_all_blocked(10_000_000);
            core.resume(t);
        }
        let image = core.thread(ThreadId(0)).dmem.clone();

        let mut core2 = Core::new(CoreConfig::single_threaded());
        let t2 = core2.add_thread(&v1, DMEM_WORDS);
        let th = core2.thread_mut(t2);
        th.dmem = image;
        th.regs = [0; 16];
        th.pc = round_entry(&v1);
        assert_eq!(
            core2.run_until_all_blocked(10_000_000),
            RunOutcome::AllYielded
        );
        assert_eq!(core2.thread(t2).dmem, native3);
    }

    #[test]
    fn halts_after_budget() {
        let prog = build(2);
        let mut core = Core::new(CoreConfig::single_threaded());
        let t = core.add_thread(&prog, DMEM_WORDS);
        core.run_until_all_blocked(10_000_000);
        core.resume(t);
        assert_eq!(
            core.run_until_all_blocked(10_000_000),
            RunOutcome::AllYielded
        );
        core.resume(t);
        assert_eq!(
            core.run_until_all_blocked(10_000_000),
            RunOutcome::AllHalted
        );
    }
}
