//! Run accounting.

use vds_desim::trace::Timeline;

/// Everything a VDS run reports.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Total wall time (abstract units on the abstract backend, cycles
    /// converted to f64 on the micro backend).
    pub total_time: f64,
    /// Rounds of useful work committed (net of rollbacks).
    pub committed_rounds: u64,
    /// Faults injected.
    pub faults_injected: u64,
    /// Injected faults whose corruption a comparison later caught.
    /// Lifecycle counters (`faults_detected`/`masked`/`escaped` and the
    /// latency sums) are engine-maintained run accounting; they are
    /// deliberately *not* exported by [`RunReport::export_metrics`] —
    /// journaled paths export the equivalent `faults.*` counters via
    /// `vds_obs::ForensicsTracker`, keeping bench work-unit accounting
    /// (which sums every exported counter) untouched.
    pub faults_detected: u64,
    /// Injected faults whose corrupted state was overwritten before any
    /// comparison saw it (final output correct).
    pub faults_masked: u64,
    /// Injected faults still latent at end of run (silent corruption).
    pub faults_escaped: u64,
    /// Sum over detected faults of detection latency in rounds.
    pub detect_latency_rounds_sum: u64,
    /// Sum over detected faults of detection latency in sim-time.
    pub detect_latency_time_sum: f64,
    /// State-mismatch (or trap) detections.
    pub detections: u64,
    /// Recoveries where the majority vote identified the faulty version.
    pub recoveries_ok: u64,
    /// Recoveries that had to resort to rollback (vote impossible), plus
    /// processor-stop rollbacks.
    pub rollbacks: u64,
    /// Whole-processor stops (all volatile state lost; always end in a
    /// rollback from stable storage).
    pub processor_stops: u64,
    /// Roll-forwards whose progress survived (correct pick / guaranteed).
    pub rollforward_hits: u64,
    /// Roll-forwards that picked the faulty state (no progress).
    pub rollforward_misses: u64,
    /// Roll-forwards discarded because a further fault was detected
    /// during the roll-forward itself.
    pub rollforward_discards: u64,
    /// Predictive-scheme adoptions of a state corrupted *during*
    /// roll-forward — undetectable by construction (§4 trades detection
    /// for speed). Always 0 for detecting schemes.
    pub silent_corruptions: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Wall time spent in normal processing (rounds + comparisons).
    pub time_normal: f64,
    /// Wall time spent in recovery (retry + roll-forward + votes).
    pub time_recovery: f64,
    /// Wall time spent writing/reading checkpoints.
    pub time_checkpoint: f64,
    /// Whether the run ended in a fail-safe shutdown.
    pub shutdown: bool,
    /// Execution timeline (only when recording was requested).
    pub timeline: Option<Timeline>,
}

impl RunReport {
    /// Committed rounds per unit time — the throughput the gains compare.
    pub fn throughput(&self) -> f64 {
        if self.total_time <= 0.0 {
            0.0
        } else {
            self.committed_rounds as f64 / self.total_time
        }
    }

    /// Fault coverage: detected over injected (1.0 when nothing was
    /// injected — a fault-free run covers everything it saw).
    pub fn coverage(&self) -> f64 {
        if self.faults_injected == 0 {
            1.0
        } else {
            self.faults_detected as f64 / self.faults_injected as f64
        }
    }

    /// Mean detection latency in rounds over detected faults (0 when
    /// nothing was detected).
    pub fn mean_detect_latency_rounds(&self) -> f64 {
        if self.faults_detected == 0 {
            0.0
        } else {
            self.detect_latency_rounds_sum as f64 / self.faults_detected as f64
        }
    }

    /// Fraction of wall time spent on recovery.
    pub fn recovery_fraction(&self) -> f64 {
        if self.total_time <= 0.0 {
            0.0
        } else {
            self.time_recovery / self.total_time
        }
    }

    /// Mirror the report into a metrics registry under `<prefix>.*`:
    /// event counters plus per-phase simulated-time gauges. End-of-run
    /// export: generic over the facade, never feature-gated.
    pub fn export_metrics<R: vds_obs::Record>(&self, rec: &mut R, prefix: &str) {
        for (field, v) in [
            ("committed_rounds", self.committed_rounds),
            ("faults_injected", self.faults_injected),
            ("detections", self.detections),
            ("recoveries_ok", self.recoveries_ok),
            ("rollbacks", self.rollbacks),
            ("processor_stops", self.processor_stops),
            ("rollforward.hits", self.rollforward_hits),
            ("rollforward.misses", self.rollforward_misses),
            ("rollforward.discards", self.rollforward_discards),
            ("silent_corruptions", self.silent_corruptions),
            ("checkpoints", self.checkpoints),
            ("shutdown", u64::from(self.shutdown)),
        ] {
            rec.count(&format!("{prefix}.{field}"), v);
        }
        for (field, v) in [
            ("time.total", self.total_time),
            ("time.normal", self.time_normal),
            ("time.recovery", self.time_recovery),
            ("time.checkpoint", self.time_checkpoint),
            ("throughput", self.throughput()),
            ("recovery_fraction", self.recovery_fraction()),
        ] {
            rec.gauge(&format!("{prefix}.{field}"), v);
        }
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "time={:.3} committed={} throughput={:.4}",
            self.total_time,
            self.committed_rounds,
            self.throughput()
        )?;
        writeln!(
            f,
            "  faults={} detections={} recoveries={} rollbacks={} shutdown={}",
            self.faults_injected,
            self.detections,
            self.recoveries_ok,
            self.rollbacks,
            self.shutdown
        )?;
        writeln!(
            f,
            "  rollforward: hits={} misses={} discards={} silent={}",
            self.rollforward_hits,
            self.rollforward_misses,
            self.rollforward_discards,
            self.silent_corruptions
        )?;
        write!(
            f,
            "  time: normal={:.3} recovery={:.3} checkpoint={:.3} (checkpoints={})",
            self.time_normal, self.time_recovery, self.time_checkpoint, self.checkpoints
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_fractions() {
        let r = RunReport {
            total_time: 10.0,
            committed_rounds: 40,
            time_recovery: 2.5,
            ..Default::default()
        };
        assert!((r.throughput() - 4.0).abs() < 1e-12);
        assert!((r.recovery_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport::default();
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.recovery_fraction(), 0.0);
        let _ = format!("{r}");
    }
}
