//! The micro-architectural VDS engine.
//!
//! Everything the abstract backend parameterises is *executed* here:
//! versions are diversified programs (`vds-diversity`) over the workload
//! of [`crate::workload`], running as OS processes (`vds-sched`) on the
//! cycle-level SMT core (`vds-smtsim`); state comparison uses digests
//! (`vds-checkpoint`); faults are injected with `vds-fault`. Time is
//! measured in machine cycles — `t`, `c`, `t'` and `α` all emerge.
//!
//! ## Execution models
//!
//! * **Conventional** ([`Scheme::Conventional`]): one hardware context;
//!   versions 1 and 2 alternate rounds with real context switches;
//!   recovery replays version 3 alone (stop-and-retry).
//! * **SMT** (`SmtDeterministic` / `SmtProbabilistic` / `SmtPredictive`):
//!   two hardware contexts; the versions' rounds run simultaneously;
//!   during recovery, hardware thread 0 replays version 3 from the
//!   checkpoint while hardware thread 1 executes the scheme's
//!   roll-forward segments, truly in parallel on the simulated core.
//!
//! Rounds across threads proceed in lock-step (the engine compares states
//! at the common round boundary, as the paper's model does).
//!
//! ## State transplants
//!
//! All recovery choreography relies on the workload's memory-resident
//! invariant: at a round boundary, any version can be started from any
//! state image via a canonical context (zeroed registers, `pc` at the
//! version's round entry, the image as data memory). This mirrors the
//! defined comparison-and-exchange states of real virtual duplex systems.

use crate::config::{Scheme, Victim};
use crate::report::RunReport;
use crate::workload;
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use vds_checkpoint::digest::digest_words;
use vds_fault::model::FaultKind;
use vds_obs::journal::{Action as JournalAction, RoundEntry, Verdict as JournalVerdict};
use vds_obs::{obs_end_span, obs_event, obs_span, obs_span_on};
use vds_obs::{NoopRecorder, Record, Recorder};
use vds_sched::{Machine, ProcId, ProcOutcome};
use vds_smtsim::core::{CoreConfig, SavedContext, ThreadId, ThreadState};
use vds_smtsim::program::Program;

/// Configuration of a micro VDS run.
#[derive(Debug, Clone)]
pub struct MicroConfig {
    /// Recovery scheme. The 1–2-thread schemes plus the §5 3-thread
    /// boosted probabilistic variant are supported; the 5-thread boosted
    /// deterministic variant lives on the abstract backend.
    pub scheme: Scheme,
    /// Checkpoint interval in rounds.
    pub s: u32,
    /// OS context-switch cost in cycles (the paper's `c`).
    pub ctx_switch_cycles: u32,
    /// State-comparison cost in cycles (the paper's `t'`).
    pub cmp_cycles: u32,
    /// Checkpoint-write cost in cycles.
    pub ckpt_cycles: u32,
    /// Pick accuracy for the probabilistic/predictive schemes when no
    /// trap evidence exists.
    pub p_correct: f64,
    /// Seed for version diversification and pick draws.
    pub seed: u64,
    /// Core configuration (derived from the scheme by [`MicroConfig::new`]).
    pub core: CoreConfig,
    /// Round budget baked into the workload program (must comfortably
    /// exceed the target plus replays).
    pub workload_rounds: u32,
    /// Run *diverse* versions (the VDS design). Disable to run three
    /// identical copies — the ablation that shows why diversity matters
    /// for permanent faults (they then corrupt all versions alike and
    /// escape detection).
    pub diversity: bool,
}

impl MicroConfig {
    /// Sensible defaults for a scheme.
    pub fn new(scheme: Scheme, s: u32) -> Self {
        assert!(
            matches!(
                scheme,
                Scheme::Conventional
                    | Scheme::SmtDeterministic
                    | Scheme::SmtProbabilistic
                    | Scheme::SmtPredictive
                    | Scheme::SmtBoosted3
            ),
            "micro backend supports the 1–3-thread schemes, got {scheme:?}"
        );
        let core = match scheme {
            Scheme::Conventional => CoreConfig::single_threaded(),
            Scheme::SmtBoosted3 => CoreConfig::with_threads(3),
            _ => CoreConfig::default(),
        };
        MicroConfig {
            scheme,
            s,
            ctx_switch_cycles: 40,
            cmp_cycles: 30,
            ckpt_cycles: 120,
            p_correct: 0.5,
            seed: 2024,
            core,
            workload_rounds: 1_000_000,
            diversity: true,
        }
    }
}

/// A one-shot fault to inject during the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroFault {
    /// Inject during round `at_round` (1-based, within the first
    /// checkpoint interval).
    pub at_round: u32,
    /// Which active version is hit.
    pub victim: Victim,
    /// What kind of fault.
    pub kind: FaultKind,
}

/// Per-round cycle budget guard.
const ROUND_BUDGET: u64 = 5_000_000;

struct Micro<R> {
    cfg: MicroConfig,
    m: Machine,
    progs: [Program; 3],
    entries: [u32; 3],
    procs: [ProcId; 3],
    /// Version indices of the currently active pair and the spare.
    active: [usize; 2],
    spare: usize,
    ckpt_img: Vec<u32>,
    rounds_since: u32,
    rng: SmallRng,
    fault: Option<MicroFault>,
    fault_pending: bool,
    /// Trap evidence observed in the current round, by active-slot index.
    trap_evidence: Option<usize>,
    report: RunReport,
    rec: R,
    /// Flight-recorder entry for the round in flight; the action and
    /// committed count are finalised by [`Micro::journal_finish`] once the
    /// engine loop has decided what to do with the round.
    pending: Option<RoundEntry>,
    /// Canonical spec of the fault injected this round, if any.
    injected_spec: Option<String>,
    /// Lifecycle state of the injected one-shot fault while no comparison
    /// has caught it yet; cleared on detection, classified masked/escaped
    /// at end of run if still set.
    outstanding: Option<OutstandingFault>,
    /// Monotonic count of executed normal rounds (never reset by
    /// checkpoints or rollbacks) — the round-denominated clock that
    /// detection latency is measured on. Matches the journal's lane-local
    /// entry ordinals, since every executed round journals one entry.
    rounds_executed: u64,
}

/// The injected fault's lifecycle bookkeeping between injection and
/// detection (or end of run).
#[derive(Debug, Clone, Copy)]
struct OutstandingFault {
    /// [`Micro::rounds_executed`] at injection time.
    injected_at_exec: u64,
    /// Machine cycle time at injection.
    injected_time: f64,
    /// The injector reported the flip architecturally masked (r0 /
    /// out-of-range site): no state changed, so the fault can never be
    /// detected nor corrupt the output.
    masked_on_arrival: bool,
}

#[derive(Debug, Clone)]
struct Seg {
    version: usize,
    start_img: Vec<u32>,
    rounds: u32,
}

impl Micro<Recorder> {
    #[cfg(test)]
    fn new(cfg: MicroConfig, fault: Option<MicroFault>) -> Self {
        Self::with_recorder(cfg, fault, Recorder::disabled())
    }
}

impl<R: Record> Micro<R> {
    fn with_recorder(cfg: MicroConfig, fault: Option<MicroFault>, rec: R) -> Self {
        let base = workload::build(cfg.workload_rounds);
        let progs = if cfg.diversity {
            [
                vds_diversity::diversify(&base, 1, cfg.seed),
                vds_diversity::diversify(&base, 2, cfg.seed),
                vds_diversity::diversify(&base, 3, cfg.seed),
            ]
        } else {
            [base.clone(), base.clone(), base.clone()]
        };
        let entries = [
            workload::round_entry(&progs[0]),
            workload::round_entry(&progs[1]),
            workload::round_entry(&progs[2]),
        ];
        let mut m = Machine::new(cfg.core.clone(), cfg.ctx_switch_cycles);
        if R::ENABLED && rec.is_active() {
            m.core_mut().set_window_recording(true);
        }
        let procs = [
            m.spawn("v1", &progs[0], workload::DMEM_WORDS),
            m.spawn("v2", &progs[1], workload::DMEM_WORDS),
            m.spawn("v3", &progs[2], workload::DMEM_WORDS),
        ];
        let ckpt_img = progs[0].data.clone();
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0xD1CE);
        Micro {
            cfg,
            m,
            progs,
            entries,
            procs,
            active: [0, 1],
            spare: 2,
            ckpt_img,
            rounds_since: 0,
            rng,
            fault,
            fault_pending: fault.is_some(),
            trap_evidence: None,
            report: RunReport::default(),
            rec,
            pending: None,
            injected_spec: None,
            outstanding: None,
            rounds_executed: 0,
        }
    }

    fn canonical(&self, version: usize, img: &[u32]) -> SavedContext {
        let mut dmem = img.to_vec();
        dmem.resize(workload::DMEM_WORDS, 0);
        SavedContext {
            regs: [0; 16],
            pc: self.entries[version],
            prog: self.progs[version].clone(),
            dmem,
            state: ThreadState::Ready,
        }
    }

    fn dmem_of(&self, version: usize) -> Vec<u32> {
        self.m.with_state(self.procs[version], |_, _, d| d.to_vec())
    }

    fn window_digest(img: &[u32]) -> vds_checkpoint::digest::StateDigest {
        let w = workload::STATE_WINDOW;
        digest_words(&img[w.start as usize..w.end as usize])
    }

    /// [`Self::window_digest`] of a resident version, digesting the state
    /// window in place. The per-round comparison runs twice per round for
    /// the whole mission, so copying the full data memory (as
    /// [`Self::dmem_of`] does) just to hash a small window dominated the
    /// simulation profile at sweep/campaign scale.
    fn window_digest_of(&self, version: usize) -> vds_checkpoint::digest::StateDigest {
        let w = workload::STATE_WINDOW;
        self.m.with_state(self.procs[version], |_, _, d| {
            digest_words(&d[w.start as usize..w.end as usize])
        })
    }

    /// Charge flat overhead cycles (comparison, checkpoint, vote).
    fn burn(&mut self, cycles: u32) {
        for _ in 0..cycles {
            self.m.core_mut().step();
        }
    }

    /// Inject the pending one-shot fault if this is its round.
    fn maybe_inject(&mut self, i: u32) {
        if !self.fault_pending {
            return;
        }
        let Some(f) = self.fault else { return };
        if f.at_round != i {
            return;
        }
        self.fault_pending = false;
        self.report.faults_injected += 1;
        let version = self.active[f.victim.index()];
        if self.rec.journal_enabled() {
            self.injected_spec = Some(format!(
                "{}@v{}",
                f.kind.spec_string(),
                f.victim.index() + 1
            ));
        }
        let effect = vds_fault::inject::inject(&mut self.m, self.procs[version], &f.kind);
        let t = self.m.cycles() as f64;
        self.outstanding = Some(OutstandingFault {
            injected_at_exec: self.rounds_executed,
            injected_time: t,
            masked_on_arrival: effect == vds_fault::inject::InjectionEffect::Masked,
        });
        obs_event!(
            self.rec, t, "micro", "fault_injected",
            "round" => i, "version" => version,
        );
    }

    /// Stash the flight-recorder entry for round `i`: digests of both
    /// active versions at the comparison point, the comparator verdict and
    /// the scheduler decision. The action defaults to `commit`; the engine
    /// loop (or recovery) upgrades it before [`Micro::journal_finish`].
    ///
    /// `digests` lets the comparator hand over the window digests it
    /// already computed this round; `None` (trap/hang paths, where no
    /// comparison ran) digests both versions here.
    fn journal_stash(
        &mut self,
        i: u32,
        sim_time: f64,
        verdict: JournalVerdict,
        digests: Option<(vds_obs::Digest128, vds_obs::Digest128)>,
    ) {
        if !self.rec.journal_enabled() {
            return;
        }
        let (a, b) = (self.active[0], self.active[1]);
        let (d1, d2) = match digests {
            Some(pair) => pair,
            None => (self.window_digest_of(a), self.window_digest_of(b)),
        };
        let sched = if self.cfg.scheme == Scheme::Conventional {
            format!("alternate[v{},v{}]", a + 1, b + 1)
        } else {
            format!("coschedule[v{},v{}]", a + 1, b + 1)
        };
        let fault = self.injected_spec.take();
        // micro runs inject at most one fault, so its lane-local fault id
        // is always 0
        let fault_id = fault.as_ref().map(|_| 0);
        self.pending = Some(RoundEntry {
            seq: 0,
            lane: 0,
            round: u64::from(i),
            committed: 0,
            sim_time,
            d1,
            d2,
            verdict,
            sched,
            action: JournalAction::Commit,
            rollforward: 0,
            fault,
            fault_id,
            fault_outcome: None,
        });
    }

    /// Credit a comparison/trap detection at time `t` to the outstanding
    /// injected fault, closing its latency window.
    fn note_detection(&mut self, t: f64) {
        if let Some(o) = self.outstanding.take() {
            self.report.faults_detected += 1;
            self.report.detect_latency_rounds_sum += self.rounds_executed - o.injected_at_exec;
            self.report.detect_latency_time_sum += t - o.injected_time;
        }
    }

    /// Upgrade the pending journal entry's action (checkpoint, recovery,
    /// rollback, shutdown).
    fn journal_action(&mut self, action: JournalAction, rollforward: u32) {
        if let Some(p) = self.pending.as_mut() {
            p.action = action;
            p.rollforward = rollforward;
        }
    }

    /// Finalise and push the pending journal entry with the post-action
    /// committed-round count.
    fn journal_finish(&mut self) {
        if let Some(mut p) = self.pending.take() {
            p.committed = self.report.committed_rounds;
            self.rec.journal_push(p);
        }
    }

    /// Run one normal round of the active pair. Returns `Some(i)` on a
    /// detection (mismatch or trap) at round `i`.
    fn normal_round(&mut self) -> Option<u32> {
        let i = self.rounds_since + 1;
        self.rounds_executed += 1;
        self.trap_evidence = None;
        let start_cycles = self.m.cycles();
        let round_g = obs_span!(self.rec, "micro", "round", start_cycles as f64);
        let (a, b) = (self.active[0], self.active[1]);

        // the injected fault lands "during" the round: before execution,
        // so crashes and text corruption manifest in this round
        self.maybe_inject(i);

        // A version that exhausts the round cycle budget has hung (e.g. a
        // program-memory fault turned its loop infinite); a real VDS
        // detects this with a watchdog timer. Treat it like a crash:
        // detection with evidence, and preempt the hung process so
        // recovery can rebuild it.
        let mut hung: Vec<usize> = Vec::new();
        if self.cfg.scheme == Scheme::Conventional {
            // both versions complete their round even if the other
            // trapped, so the vote compares states at a common round
            for (slot, v) in [(0usize, a), (1usize, b)] {
                if self.trap_evidence == Some(slot) {
                    continue;
                }
                let g = obs_span!(self.rec, "micro", "compute", self.m.cycles() as f64);
                self.m.dispatch(self.procs[v], ThreadId(0));
                match self.m.run_hw_until_block(ThreadId(0), ROUND_BUDGET) {
                    ProcOutcome::Yielded => {}
                    ProcOutcome::Trapped(_) => {
                        self.trap_evidence = Some(slot);
                    }
                    ProcOutcome::Budget => {
                        hung.push(slot);
                        self.m.preempt(self.procs[v]);
                    }
                    other => panic!("normal round: unexpected {other:?}"),
                }
                obs_end_span!(self.rec, g, self.m.cycles() as f64, "version" => v);
            }
        } else {
            let g0 = obs_span_on!(self.rec, 0, "micro", "compute", self.m.cycles() as f64);
            let g1 = obs_span_on!(self.rec, 1, "micro", "compute", self.m.cycles() as f64);
            self.m.dispatch(self.procs[a], ThreadId(0));
            self.m.dispatch(self.procs[b], ThreadId(1));
            let outs = self.m.run_all_until_block(ROUND_BUDGET);
            let t_done = self.m.cycles() as f64;
            obs_end_span!(self.rec, g0, t_done, "version" => a);
            obs_end_span!(self.rec, g1, t_done, "version" => b);
            for (slot, hw) in [(0usize, 0usize), (1, 1)] {
                match outs[hw] {
                    Some(ProcOutcome::Yielded) => {}
                    Some(ProcOutcome::Trapped(_)) => {
                        self.trap_evidence = Some(slot);
                    }
                    Some(ProcOutcome::Budget) | None => {
                        hung.push(slot);
                        self.m.preempt(self.procs[self.active[slot]]);
                    }
                    other => panic!("normal round: unexpected {other:?}"),
                }
            }
        }
        if hung.len() == 1 && self.trap_evidence.is_none() {
            self.trap_evidence = Some(hung[0]);
        }
        self.report.time_normal += (self.m.cycles() - start_cycles) as f64;

        // comparison
        let cmp_g = obs_span!(self.rec, "micro", "compare", self.m.cycles() as f64);
        self.burn(self.cfg.cmp_cycles);
        self.report.time_normal += f64::from(self.cfg.cmp_cycles);
        let t = self.m.cycles() as f64;
        obs_end_span!(self.rec, cmp_g, t);
        if self.trap_evidence.is_some() || !hung.is_empty() {
            self.report.detections += 1;
            let verdict = if hung.is_empty() {
                JournalVerdict::Trap
            } else {
                JournalVerdict::Hang
            };
            self.note_detection(t);
            self.journal_stash(i, t, verdict, None);
            obs_event!(self.rec, t, "micro", "detect", "round" => i, "evidence" => "trap");
            obs_end_span!(self.rec, round_g, t, "round" => i, "outcome" => "detect");
            return Some(i);
        }
        let da = self.window_digest_of(a);
        let db = self.window_digest_of(b);
        if da != db {
            self.report.detections += 1;
            self.note_detection(t);
            self.journal_stash(i, t, JournalVerdict::Mismatch, Some((da, db)));
            obs_event!(self.rec, t, "micro", "detect", "round" => i, "evidence" => "mismatch");
            obs_end_span!(self.rec, round_g, t, "round" => i, "outcome" => "detect");
            Some(i)
        } else {
            self.rounds_since = i;
            self.report.committed_rounds += 1;
            self.journal_stash(i, t, JournalVerdict::Match, Some((da, db)));
            obs_event!(self.rec, t, "micro", "round", "round" => i, "comparison" => "match");
            obs_end_span!(self.rec, round_g, t, "round" => i, "outcome" => "commit");
            None
        }
    }

    fn take_checkpoint(&mut self) {
        let g = obs_span!(self.rec, "micro", "checkpoint", self.m.cycles() as f64);
        self.burn(self.cfg.ckpt_cycles);
        obs_end_span!(self.rec, g, self.m.cycles() as f64);
        self.report.time_checkpoint += f64::from(self.cfg.ckpt_cycles);
        self.ckpt_img = self.dmem_of(self.active[0]);
        self.rounds_since = 0;
        self.report.checkpoints += 1;
        let t = self.m.cycles() as f64;
        obs_event!(self.rec, t, "micro", "checkpoint", "number" => self.report.checkpoints);
    }

    /// Run a list of named segments plans, one per hardware thread,
    /// collecting each segment's end image. `Err(())` on a trap. Each
    /// plan is recorded as a span (`"retry"` / `"rollforward"`) on its
    /// hardware thread's lane.
    #[allow(clippy::type_complexity)]
    fn run_segments_parallel(
        &mut self,
        plans: Vec<(ThreadId, &'static str, Vec<Seg>)>,
    ) -> Vec<Result<Vec<Vec<u32>>, ()>> {
        struct PlanState {
            hw: ThreadId,
            segs: Vec<Seg>,
            idx: usize,
            done_rounds: u32,
            images: Vec<Vec<u32>>,
            failed: bool,
            guard: Option<vds_obs::SpanGuard>,
        }
        let mut states: Vec<PlanState> = plans
            .into_iter()
            .map(|(hw, name, segs)| {
                let guard = if segs.is_empty() {
                    None
                } else {
                    Some(obs_span_on!(
                        self.rec,
                        hw.0 as u32,
                        "micro",
                        name,
                        self.m.cycles() as f64
                    ))
                };
                PlanState {
                    hw,
                    segs,
                    idx: 0,
                    done_rounds: 0,
                    images: Vec::new(),
                    failed: false,
                    guard,
                }
            })
            .collect();

        // start the first segment of every plan
        for st in &mut states {
            if let Some(seg) = st.segs.first() {
                let ctx = self.canonical(seg.version, &seg.start_img);
                self.m.preempt(self.procs[seg.version]);
                self.m.replace_context(self.procs[seg.version], ctx);
                self.m.dispatch(self.procs[seg.version], st.hw);
            }
        }

        loop {
            let live = states.iter().any(|st| !st.failed && st.idx < st.segs.len());
            if !live {
                break;
            }
            let outs = self.m.run_all_until_block(ROUND_BUDGET);
            for st in &mut states {
                if st.failed || st.idx >= st.segs.len() {
                    continue;
                }
                let seg_version = st.segs[st.idx].version;
                match outs[st.hw.0] {
                    Some(ProcOutcome::Yielded) => {
                        st.done_rounds += 1;
                        if st.done_rounds >= st.segs[st.idx].rounds {
                            // segment complete: capture image, advance
                            self.m.preempt(self.procs[seg_version]);
                            st.images.push(self.dmem_of(seg_version));
                            st.idx += 1;
                            st.done_rounds = 0;
                            if let Some(next) = st.segs.get(st.idx) {
                                let ctx = self.canonical(next.version, &next.start_img);
                                self.m.preempt(self.procs[next.version]);
                                self.m.replace_context(self.procs[next.version], ctx);
                                self.m.dispatch(self.procs[next.version], st.hw);
                            } else if let Some(g) = st.guard.take() {
                                obs_end_span!(self.rec, g, self.m.cycles() as f64);
                            }
                        } else {
                            // next round of the same segment
                            self.m.dispatch(self.procs[seg_version], st.hw);
                        }
                    }
                    Some(ProcOutcome::Trapped(_)) => {
                        st.failed = true;
                    }
                    Some(ProcOutcome::Budget) => {
                        // hung during recovery execution (watchdog): the
                        // segment's plan fails, like a trap
                        self.m.preempt(self.procs[seg_version]);
                        st.failed = true;
                    }
                    None => {} // nothing resident on this hw anymore
                    other => panic!("segment run: unexpected {other:?}"),
                }
                if st.failed {
                    if let Some(g) = st.guard.take() {
                        obs_end_span!(self.rec, g, self.m.cycles() as f64, "outcome" => "failed");
                    }
                }
            }
        }
        let end = self.m.cycles() as f64;
        for st in &mut states {
            if let Some(g) = st.guard.take() {
                obs_end_span!(self.rec, g, end);
            }
        }
        states
            .into_iter()
            .map(|st| if st.failed { Err(()) } else { Ok(st.images) })
            .collect()
    }

    /// Decide which active slot we *guess* is fault-free.
    fn guess_good_slot(&mut self) -> usize {
        if let Some(trapped_slot) = self.trap_evidence {
            return 1 - trapped_slot; // the partner of the crashed one
        }
        // Without ground truth, model pick accuracy: the engine knows the
        // injected victim (by construction of the experiment) and draws a
        // correct pick with probability p.
        let victim_slot = self
            .fault
            .map(|f| f.victim.index())
            .unwrap_or_else(|| usize::from(self.rng.gen::<bool>()));
        if self.rng.gen::<f64>() < self.cfg.p_correct {
            1 - victim_slot
        } else {
            victim_slot
        }
    }

    /// Recovery for a detection at round `i`.
    fn recover(&mut self, i: u32) {
        let start_cycles = self.m.cycles();
        let recovery_g = obs_span!(self.rec, "micro", "recovery", start_cycles as f64);
        let (a, b) = (self.active[0], self.active[1]);
        self.m.preempt(self.procs[a]);
        self.m.preempt(self.procs[b]);
        let p_img = self.dmem_of(a);
        let q_img = self.dmem_of(b);
        let x = (self.cfg.scheme.rollforward_intent(i).floor() as u32).min(self.cfg.s - i);
        // Only schemes that actually gamble on a state draw a pick, and
        // only for a non-zero window: a zero-length roll-forward
        // (⌊i/4⌋ = 0 at i < 4, or i = s) is pure stop-and-retry and must
        // not consume scheme bookkeeping — not even an RNG draw, or the
        // fault-seed stream would diverge between cells that differ only
        // in checkpoint distance.
        let needs_pick = x > 0
            && matches!(
                self.cfg.scheme,
                Scheme::SmtProbabilistic | Scheme::SmtPredictive | Scheme::SmtBoosted3
            );
        let guess_slot = if needs_pick {
            self.guess_good_slot()
        } else {
            0
        };
        let guess_img = if guess_slot == 0 { &p_img } else { &q_img };

        let retry_plan = vec![Seg {
            version: self.spare,
            start_img: self.ckpt_img.clone(),
            rounds: i,
        }];

        let mut plans = vec![(ThreadId(0), "retry", retry_plan)];
        if self.cfg.scheme != Scheme::Conventional && x > 0 {
            match self.cfg.scheme {
                Scheme::SmtProbabilistic => plans.push((
                    ThreadId(1),
                    "rollforward",
                    vec![
                        Seg {
                            version: b,
                            start_img: guess_img.clone(),
                            rounds: x,
                        },
                        Seg {
                            version: a,
                            start_img: guess_img.clone(),
                            rounds: x,
                        },
                    ],
                )),
                Scheme::SmtDeterministic => plans.push((
                    ThreadId(1),
                    "rollforward",
                    vec![
                        Seg {
                            version: b,
                            start_img: p_img.clone(),
                            rounds: x,
                        },
                        Seg {
                            version: a,
                            start_img: p_img.clone(),
                            rounds: x,
                        },
                        Seg {
                            version: a,
                            start_img: q_img.clone(),
                            rounds: x,
                        },
                        Seg {
                            version: b,
                            start_img: q_img.clone(),
                            rounds: x,
                        },
                    ],
                )),
                Scheme::SmtPredictive => plans.push((
                    ThreadId(1),
                    "rollforward",
                    vec![Seg {
                        version: self.active[guess_slot],
                        start_img: guess_img.clone(),
                        rounds: x,
                    }],
                )),
                Scheme::SmtBoosted3 => {
                    // §5: versions 1 and 2 roll forward a full i rounds
                    // each, in their own hardware threads, from the
                    // picked state — detection retained via T = U
                    plans.push((
                        ThreadId(1),
                        "rollforward",
                        vec![Seg {
                            version: a,
                            start_img: guess_img.clone(),
                            rounds: x,
                        }],
                    ));
                    plans.push((
                        ThreadId(2),
                        "rollforward",
                        vec![Seg {
                            version: b,
                            start_img: guess_img.clone(),
                            rounds: x,
                        }],
                    ));
                }
                _ => unreachable!(),
            }
        }

        let mut results = self.run_segments_parallel(plans);
        let retry_result = results.remove(0);
        let rf_results = results; // 0, 1 or 2 roll-forward plans

        // majority vote
        let vote_g = obs_span!(self.rec, "micro", "vote", self.m.cycles() as f64);
        self.burn(2 * self.cfg.cmp_cycles);
        obs_end_span!(self.rec, vote_g, self.m.cycles() as f64);

        let vote = match &retry_result {
            Err(()) => None, // fault (trap) during retry
            Ok(images) => {
                let s_img = images.last().expect("retry end image");
                let ds = Self::window_digest(s_img);
                if ds == Self::window_digest(&p_img) {
                    Some((1usize, s_img.clone())) // V2 (slot 1) faulty
                } else if ds == Self::window_digest(&q_img) {
                    Some((0usize, s_img.clone()))
                } else {
                    None
                }
            }
        };

        match vote {
            Some((faulty_slot, s_img)) => {
                self.report.recoveries_ok += 1;
                let good_slot = 1 - faulty_slot;
                let good_version = self.active[good_slot];
                let faulty_version = self.active[faulty_slot];
                let good_img = if good_slot == 0 { &p_img } else { &q_img };

                // resolve the roll-forward
                let mut progress = 0u32;
                let mut adopted: Option<Vec<u32>> = None;
                if x > 0 && self.cfg.scheme == Scheme::SmtBoosted3 {
                    // two parallel single-segment plans: T from thread 1,
                    // U from thread 2
                    match (rf_results.first(), rf_results.get(1)) {
                        (Some(Ok(ia)), Some(Ok(ib))) if ia.len() == 1 && ib.len() == 1 => {
                            let (t, u) = (&ia[0], &ib[0]);
                            let picked_good = guess_slot == good_slot;
                            if Self::window_digest(t) != Self::window_digest(u) {
                                self.report.rollforward_discards += 1;
                            } else if picked_good {
                                self.report.rollforward_hits += 1;
                                progress = x;
                                adopted = Some(t.clone());
                            } else {
                                self.report.rollforward_misses += 1;
                            }
                        }
                        _ => {
                            // a trap/hang in either roll-forward thread
                            self.report.rollforward_discards += 1;
                        }
                    }
                } else if x > 0 && self.cfg.scheme != Scheme::Conventional {
                    let rf_result = rf_results.into_iter().next();
                    match (self.cfg.scheme, rf_result) {
                        (Scheme::SmtProbabilistic, Some(Ok(images))) if images.len() == 2 => {
                            let t = &images[0];
                            let u = &images[1];
                            let picked_good = guess_slot == good_slot;
                            if Self::window_digest(t) != Self::window_digest(u) {
                                self.report.rollforward_discards += 1;
                            } else if picked_good {
                                self.report.rollforward_hits += 1;
                                progress = x;
                                adopted = Some(t.clone());
                            } else {
                                self.report.rollforward_misses += 1;
                            }
                        }
                        (Scheme::SmtDeterministic, Some(Ok(images))) if images.len() == 4 => {
                            // images: T (v2 from P), U (v1 from P),
                            //         V (v1 from Q), W (v2 from Q)
                            let (first, second) = if good_slot == 0 {
                                (&images[0], &images[1]) // pair from P
                            } else {
                                (&images[2], &images[3]) // pair from Q
                            };
                            if Self::window_digest(first) == Self::window_digest(second) {
                                self.report.rollforward_hits += 1;
                                progress = x;
                                adopted = Some(first.clone());
                            } else {
                                self.report.rollforward_discards += 1;
                            }
                        }
                        (Scheme::SmtPredictive, Some(Ok(images))) if images.len() == 1 => {
                            if guess_slot == good_slot {
                                self.report.rollforward_hits += 1;
                                progress = x;
                                adopted = Some(images[0].clone());
                            } else {
                                self.report.rollforward_misses += 1;
                            }
                        }
                        (_, Some(Err(()))) => {
                            // trap during roll-forward: discard it
                            self.report.rollforward_discards += 1;
                        }
                        _ => {}
                    }
                }

                // form the new VDS: the fault-free version plus the spare
                let resume_img = adopted.unwrap_or_else(|| {
                    if progress > 0 {
                        unreachable!()
                    }
                    // the replay state and the good state agree; use S
                    let _ = good_img;
                    s_img
                });
                let old_spare = self.spare;
                self.spare = faulty_version;
                self.active = [good_version, old_spare];
                for v in self.active {
                    let ctx = self.canonical(v, &resume_img);
                    self.m.preempt(self.procs[v]);
                    self.m.replace_context(self.procs[v], ctx);
                }
                self.rounds_since = i + progress;
                self.report.committed_rounds += 1 + u64::from(progress);
                self.journal_action(JournalAction::Recover, progress);
                let t = self.m.cycles() as f64;
                obs_event!(
                    self.rec, t, "micro", "recovery",
                    "round" => i,
                    "scheme" => self.cfg.scheme.name(),
                    "rollforward_progress" => progress,
                );
                if self.rounds_since >= self.cfg.s {
                    self.take_checkpoint();
                }
            }
            None => {
                // three differing states: resort to rollback
                self.journal_action(JournalAction::Rollback, 0);
                self.report.rollbacks += 1;
                // An underflow here would mean a double-billed rollback;
                // refuse to clamp it silently (see the abstract engine).
                match self.report.committed_rounds.checked_sub(u64::from(i - 1)) {
                    Some(v) => self.report.committed_rounds = v,
                    None => {
                        debug_assert!(
                            false,
                            "committed_rounds underflow: {} - {} during rollback",
                            self.report.committed_rounds,
                            i - 1
                        );
                        vds_obs::log_error!(
                            "core.micro",
                            "committed_rounds underflow: {} - {} during rollback",
                            self.report.committed_rounds,
                            i - 1
                        );
                        self.report.committed_rounds = 0;
                    }
                }
                self.rounds_since = 0;
                let t = self.m.cycles() as f64;
                obs_event!(
                    self.rec, t, "micro", "rollback",
                    "round" => i, "rounds_lost" => i - 1,
                );
                let img = self.ckpt_img.clone();
                for slot in [0usize, 1] {
                    let v = self.active[slot];
                    let ctx = self.canonical(v, &img);
                    self.m.preempt(self.procs[v]);
                    self.m.replace_context(self.procs[v], ctx);
                }
            }
        }
        self.trap_evidence = None;
        self.report.time_recovery += (self.m.cycles() - start_cycles) as f64;
        obs_end_span!(self.rec, recovery_g, self.m.cycles() as f64, "round" => i);
    }
}

/// Run a micro VDS until `target_rounds` rounds are committed.
pub fn run_micro(cfg: &MicroConfig, fault: Option<MicroFault>, target_rounds: u64) -> RunReport {
    run_micro_with_state(cfg, fault, target_rounds).0
}

/// [`run_micro`], additionally returning the final data-memory image of
/// the first active version (for output-correctness audits against
/// [`crate::workload::oracle`]).
pub fn run_micro_with_state(
    cfg: &MicroConfig,
    fault: Option<MicroFault>,
    target_rounds: u64,
) -> (RunReport, Vec<u32>) {
    // Monomorphized against the zero-sized sink: the uninstrumented
    // entry point pays nothing for the instrumentation below.
    let (report, img, _) = run_micro_engine(cfg, fault, target_rounds, NoopRecorder);
    (report, img)
}

/// [`run_micro`], recording metrics and a bounded event trace: round /
/// detection / checkpoint / recovery / rollback events at cycle time, the
/// report mirrored under `vds.*`, and the SMT core's cycle-level counters
/// (per-thread stalls, cache hits/misses) under `smt.*`.
pub fn run_micro_recorded(
    cfg: &MicroConfig,
    fault: Option<MicroFault>,
    target_rounds: u64,
) -> (RunReport, Recorder) {
    let (report, _, rec) = run_micro_engine(cfg, fault, target_rounds, Recorder::new());
    (report, rec)
}

/// [`run_micro_recorded`] plus the final data-memory image, for callers
/// (e.g. the CLI) that want both metrics and an oracle verdict.
pub fn run_micro_recorded_with_state(
    cfg: &MicroConfig,
    fault: Option<MicroFault>,
    target_rounds: u64,
) -> (RunReport, Vec<u32>, Recorder) {
    run_micro_engine(cfg, fault, target_rounds, Recorder::new())
}

/// [`run_micro_recorded_with_state`] with a caller-supplied recorder, so
/// the CLI can honour `--trace-capacity` and other ring-size overrides.
pub fn run_micro_with_recorder(
    cfg: &MicroConfig,
    fault: Option<MicroFault>,
    target_rounds: u64,
    rec: Recorder,
) -> (RunReport, Vec<u32>, Recorder) {
    run_micro_engine(cfg, fault, target_rounds, rec)
}

fn run_micro_engine<R: Record>(
    cfg: &MicroConfig,
    fault: Option<MicroFault>,
    target_rounds: u64,
    rec: R,
) -> (RunReport, Vec<u32>, R) {
    let mut e = Micro::with_recorder(cfg.clone(), fault, rec);
    // Fail-safe watchdog: a *permanent* fault in a shared functional unit
    // corrupts every round of every version — detectable (diversity!) but
    // not tolerable on a single processor. When the system stops making
    // forward progress it shuts down fail-safe, exactly as the paper's
    // flow charts terminate.
    let mut last_committed = 0u64;
    let mut stalled_iterations = 0u32;
    while e.report.committed_rounds < target_rounds {
        match e.normal_round() {
            None => {
                if e.rounds_since >= cfg.s {
                    e.take_checkpoint();
                    e.journal_action(JournalAction::Checkpoint, 0);
                }
            }
            Some(i) => e.recover(i),
        }
        if e.report.committed_rounds > last_committed {
            last_committed = e.report.committed_rounds;
            stalled_iterations = 0;
        } else {
            stalled_iterations += 1;
            if stalled_iterations > 64 {
                e.report.shutdown = true;
                let t = e.m.cycles() as f64;
                obs_event!(e.rec, t, "micro", "shutdown");
                e.journal_action(JournalAction::Shutdown, 0);
                e.journal_finish();
                break;
            }
        }
        e.journal_finish();
    }
    e.report.total_time = e.m.cycles() as f64;
    let img = e.dmem_of(e.active[0]);
    // classify a fault no comparison ever caught: output still correct
    // (corruption overwritten or architecturally masked) → masked;
    // output wrong and undetected → escaped (silent data corruption)
    if let Some(o) = e.outstanding.take() {
        let (k, state) = workload::oracle(e.report.committed_rounds as u32);
        let window = &img[workload::ADDR_STATE as usize
            ..(workload::ADDR_STATE + workload::STATE_WORDS) as usize];
        let correct = img[workload::ADDR_ROUND as usize] == k && window == &state[..];
        let outcome = if o.masked_on_arrival || correct {
            e.report.faults_masked += 1;
            "masked"
        } else {
            e.report.faults_escaped += 1;
            "escaped"
        };
        e.rec.journal_resolve_fault(0, outcome);
    }
    let mut rec = e.rec;
    e.report.export_metrics(&mut rec, "vds");
    e.m.core().export_metrics(&mut rec);
    e.m.core().export_spans(&mut rec);
    rec.rollup_spans();
    (e.report, img, rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_fault::model::FaultSite;

    fn fault_mem(at_round: u32, victim: Victim) -> MicroFault {
        MicroFault {
            at_round,
            victim,
            // flip a state word (address 4 is S[2]) — always detectable
            kind: FaultKind::Transient(FaultSite::Memory { addr: 4, bit: 7 }),
        }
    }

    #[test]
    fn fault_free_run_commits_and_checkpoints() {
        let cfg = MicroConfig::new(Scheme::SmtProbabilistic, 5);
        let r = run_micro(&cfg, None, 12);
        assert_eq!(r.committed_rounds, 12);
        assert_eq!(r.detections, 0);
        assert_eq!(r.checkpoints, 2); // after rounds 5 and 10
        assert!(r.total_time > 0.0);
    }

    #[test]
    fn final_state_matches_oracle_fault_free() {
        let cfg = MicroConfig::new(Scheme::SmtProbabilistic, 5);
        let mut e = Micro::new(cfg.clone(), None);
        for _ in 0..7 {
            assert_eq!(e.normal_round(), None);
            if e.rounds_since >= cfg.s {
                e.take_checkpoint();
            }
        }
        let (k, state) = workload::oracle(7);
        let img = e.dmem_of(e.active[0]);
        assert_eq!(img[workload::ADDR_ROUND as usize], k);
        assert_eq!(
            &img[workload::ADDR_STATE as usize
                ..(workload::ADDR_STATE + workload::STATE_WORDS) as usize],
            &state[..]
        );
    }

    #[test]
    fn smt_processes_rounds_faster_than_conventional() {
        let smt = run_micro(&MicroConfig::new(Scheme::SmtProbabilistic, 10), None, 30);
        let conv = run_micro(&MicroConfig::new(Scheme::Conventional, 10), None, 30);
        let gain = conv.total_time / smt.total_time;
        assert!(
            gain > 1.1 && gain < 2.1,
            "measured normal-processing gain {gain}"
        );
    }

    #[test]
    fn memory_fault_detected_and_recovered_all_schemes() {
        for scheme in [
            Scheme::Conventional,
            Scheme::SmtDeterministic,
            Scheme::SmtProbabilistic,
            Scheme::SmtPredictive,
        ] {
            let cfg = MicroConfig::new(scheme, 10);
            let r = run_micro(&cfg, Some(fault_mem(4, Victim::V2)), 25);
            assert_eq!(r.committed_rounds, 25, "{scheme:?}");
            assert_eq!(r.detections, 1, "{scheme:?}");
            assert_eq!(r.recoveries_ok, 1, "{scheme:?}: {r}");
            assert_eq!(r.rollbacks, 0, "{scheme:?}");
            // fault lifecycle: caught in the injection round itself
            assert_eq!(r.faults_detected, 1, "{scheme:?}");
            assert_eq!(r.faults_masked, 0, "{scheme:?}");
            assert_eq!(r.faults_escaped, 0, "{scheme:?}");
            assert_eq!(r.detect_latency_rounds_sum, 0, "{scheme:?}");
            assert!((r.coverage() - 1.0).abs() < 1e-12, "{scheme:?}");
        }
    }

    #[test]
    fn recovered_state_is_correct_after_fault() {
        // After recovery the computation must continue *correctly*: final
        // state equals the oracle despite the mid-run corruption.
        let cfg = MicroConfig::new(Scheme::SmtDeterministic, 8);
        let mut e = Micro::new(cfg.clone(), Some(fault_mem(3, Victim::V1)));
        let target = 14u64;
        while e.report.committed_rounds < target {
            match e.normal_round() {
                None => {
                    if e.rounds_since >= cfg.s {
                        e.take_checkpoint();
                    }
                }
                Some(i) => e.recover(i),
            }
        }
        let committed = e.report.committed_rounds as u32;
        let (_, state) = workload::oracle(committed);
        let img = e.dmem_of(e.active[0]);
        assert_eq!(img[workload::ADDR_ROUND as usize], committed);
        assert_eq!(
            &img[workload::ADDR_STATE as usize
                ..(workload::ADDR_STATE + workload::STATE_WORDS) as usize],
            &state[..],
            "post-recovery state wrong"
        );
    }

    #[test]
    fn early_round_fault_is_pure_stop_and_retry() {
        // ⌊i/4⌋ = 0 for i ∈ {1,2,3} (deterministic) and ⌊i/2⌋ = 0 for
        // i = 1 (probabilistic): zero-length roll-forward windows carry
        // no scheme bookkeeping at all — no hits, misses or discards.
        let cases: [(Scheme, &[u32]); 2] = [
            (Scheme::SmtDeterministic, &[1, 2, 3]),
            (Scheme::SmtProbabilistic, &[1]),
        ];
        for (scheme, rounds) in cases {
            for &i in rounds {
                let cfg = MicroConfig::new(scheme, 10);
                let r = run_micro(&cfg, Some(fault_mem(i, Victim::V1)), 15);
                assert_eq!(r.committed_rounds, 15, "{scheme:?} i={i}");
                assert_eq!(r.detections, 1, "{scheme:?} i={i}: {r}");
                assert_eq!(r.recoveries_ok, 1, "{scheme:?} i={i}: {r}");
                assert_eq!(r.rollforward_hits, 0, "{scheme:?} i={i}: {r}");
                assert_eq!(r.rollforward_misses, 0, "{scheme:?} i={i}: {r}");
                assert_eq!(r.rollforward_discards, 0, "{scheme:?} i={i}: {r}");
            }
        }
    }

    #[test]
    fn probabilistic_hit_rolls_forward() {
        let mut cfg = MicroConfig::new(Scheme::SmtProbabilistic, 10);
        cfg.p_correct = 1.0;
        let r = run_micro(&cfg, Some(fault_mem(6, Victim::V1)), 20);
        assert_eq!(r.rollforward_hits, 1, "{r}");
        assert_eq!(r.rollforward_misses, 0);
        let mut cfg2 = MicroConfig::new(Scheme::SmtProbabilistic, 10);
        cfg2.p_correct = 0.0;
        let r2 = run_micro(&cfg2, Some(fault_mem(6, Victim::V1)), 20);
        assert_eq!(r2.rollforward_hits, 0, "{r2}");
        assert_eq!(r2.rollforward_misses, 1);
        // a miss costs wall time relative to a hit
        assert!(r2.total_time >= r.total_time);
    }

    #[test]
    fn deterministic_progress_is_guaranteed() {
        // regardless of p_correct, the deterministic scheme progresses
        for p in [0.0, 1.0] {
            let mut cfg = MicroConfig::new(Scheme::SmtDeterministic, 12);
            cfg.p_correct = p;
            let r = run_micro(&cfg, Some(fault_mem(8, Victim::V2)), 20);
            assert_eq!(r.rollforward_hits, 1, "p={p}: {r}");
        }
    }

    #[test]
    fn boosted3_recovers_with_full_progress_on_three_hardware_threads() {
        let mut cfg = MicroConfig::new(Scheme::SmtBoosted3, 10);
        cfg.p_correct = 1.0;
        let r = run_micro(&cfg, Some(fault_mem(6, Victim::V1)), 25);
        assert_eq!(r.committed_rounds, 25);
        assert_eq!(r.recoveries_ok, 1, "{r}");
        assert_eq!(r.rollforward_hits, 1, "{r}");
        // progress is min(i, s−i) = min(6, 4) = 4, larger than the
        // 2-thread probabilistic scheme's min(i/2, s−i) = 3
        let mut cfg2 = MicroConfig::new(Scheme::SmtProbabilistic, 10);
        cfg2.p_correct = 1.0;
        let r2 = run_micro(&cfg2, Some(fault_mem(6, Victim::V1)), 25);
        assert_eq!(r2.rollforward_hits, 1);
        // The boosted variant buys more roll-forward progress but pays
        // 3-way contention on a 2-wide core during recovery (the α₃ > α₂
        // effect of the analytic model) — measurably slower here, but
        // bounded. This is the §5 trade made concrete.
        assert!(
            r.total_time <= r2.total_time * 1.6,
            "boost3 {} vs prob {}",
            r.total_time,
            r2.total_time
        );
    }

    #[test]
    fn boosted3_final_state_correct() {
        let cfg = MicroConfig::new(Scheme::SmtBoosted3, 8);
        let (r, img) = run_micro_with_state(&cfg, Some(fault_mem(4, Victim::V2)), 18);
        assert_eq!(r.committed_rounds, 18);
        let (_, want) = workload::oracle(18);
        assert_eq!(
            &img[workload::ADDR_STATE as usize
                ..(workload::ADDR_STATE + workload::STATE_WORDS) as usize],
            &want[..]
        );
    }

    #[test]
    fn crash_fault_gives_evidence_and_perfect_pick() {
        let mut cfg = MicroConfig::new(Scheme::SmtPredictive, 10);
        cfg.p_correct = 0.0; // only evidence can save the pick
        let f = MicroFault {
            at_round: 5,
            victim: Victim::V2,
            kind: FaultKind::CrashVersion,
        };
        let r = run_micro(&cfg, Some(f), 20);
        assert_eq!(r.detections, 1);
        assert_eq!(r.recoveries_ok, 1, "{r}");
        assert_eq!(r.rollforward_hits, 1, "evidence should make the pick: {r}");
    }

    #[test]
    fn text_fault_detected() {
        // corrupt an instruction word of V1: either an illegal-
        // instruction trap or a state mismatch; both must recover
        let cfg = MicroConfig::new(Scheme::SmtProbabilistic, 10);
        let f = MicroFault {
            at_round: 3,
            victim: Victim::V1,
            kind: FaultKind::Transient(FaultSite::Text { index: 5, bit: 27 }),
        };
        let r = run_micro(&cfg, Some(f), 15);
        assert_eq!(r.committed_rounds, 15);
        assert!(r.detections >= 1, "{r}");
        // text corruption is permanent for this incarnation of the
        // process; recovery replaces the program image via the canonical
        // context, so the run completes
        assert_eq!(r.rollbacks, 0, "{r}");
    }

    #[test]
    fn masked_register_fault_goes_undetected() {
        // registers are dead at round boundaries in this workload: a
        // register flip injected at the boundary must be masked
        let cfg = MicroConfig::new(Scheme::SmtProbabilistic, 10);
        let f = MicroFault {
            at_round: 4,
            victim: Victim::V1,
            kind: FaultKind::Transient(FaultSite::Register { reg: 5, bit: 3 }),
        };
        let r = run_micro(&cfg, Some(f), 15);
        assert_eq!(r.committed_rounds, 15);
        assert_eq!(r.detections, 0, "boundary register faults are dead: {r}");
        // lifecycle accounting keeps the undetected-but-harmless fault
        // out of both the detected and escaped buckets
        assert_eq!(r.faults_injected, 1);
        assert_eq!(r.faults_detected, 0);
        assert_eq!(r.faults_masked, 1, "{r}");
        assert_eq!(r.faults_escaped, 0, "{r}");
        assert_eq!(r.coverage(), 0.0);
    }

    #[test]
    fn masked_fault_outcome_is_stamped_on_the_journal_entry() {
        use vds_obs::JournalHeader;
        let cfg = MicroConfig::new(Scheme::SmtProbabilistic, 10);
        let f = MicroFault {
            at_round: 4,
            victim: Victim::V1,
            kind: FaultKind::Transient(FaultSite::Register { reg: 5, bit: 3 }),
        };
        let mut rec = Recorder::new();
        rec.enable_journal(JournalHeader::new(
            "micro",
            cfg.scheme.name(),
            cfg.seed,
            cfg.s,
            15,
        ));
        let (r, _, rec) = run_micro_with_recorder(&cfg, Some(f), 15, rec);
        assert_eq!(r.faults_masked, 1);
        let entry = rec
            .journal()
            .entries()
            .iter()
            .find(|e| e.fault.is_some())
            .expect("fault-bearing entry");
        assert_eq!(entry.fault_id, Some(0));
        assert_eq!(entry.fault_outcome.as_deref(), Some("masked"));
        // forensics over the journal agrees with the engine accounting
        let t = vds_obs::ForensicsTracker::for_journal(rec.journal()).unwrap();
        let rep = t.report();
        assert_eq!(rep.injected, 1);
        assert_eq!(rep.masked, 1);
        assert_eq!(rep.detected, 0);
        assert!(rep.escapes.is_empty());
    }

    #[test]
    fn recorded_micro_run_exports_metrics_and_trace() {
        let cfg = MicroConfig::new(Scheme::SmtDeterministic, 10);
        let (r, rec) = run_micro_recorded(&cfg, Some(fault_mem(4, Victim::V2)), 15);
        let reg = rec.registry();
        assert_eq!(reg.counter("vds.committed_rounds"), r.committed_rounds);
        assert_eq!(reg.counter("vds.detections"), 1);
        assert_eq!(reg.counter("smt.cycles"), r.total_time as u64);
        assert!(reg.counter("smt.thread0.retired") > 0);
        // byte-identical exports across two runs (fixed seed)
        let (_, rec2) = run_micro_recorded(&cfg, Some(fault_mem(4, Victim::V2)), 15);
        assert_eq!(rec.registry().to_csv(), rec2.registry().to_csv());
        assert_eq!(rec.trace().to_jsonl(), rec2.trace().to_jsonl());
        assert_eq!(rec.spans().to_chrome_json(), rec2.spans().to_chrome_json());
        assert_eq!(rec.spans().to_folded(), rec2.spans().to_folded());
        // hot-path events and spans only exist with the `obs` macros in
        if cfg!(feature = "obs") {
            let events: Vec<&str> = rec.trace().records().map(|e| e.event).collect();
            assert!(events.contains(&"fault_injected"));
            assert!(events.contains(&"detect"));
            assert!(events.contains(&"recovery"));
            assert!(events.contains(&"round"));
            // span layer: every phase shows up, exports are deterministic,
            // and the rollups landed in the registry
            let names: Vec<&str> = rec.spans().records().map(|s| s.name).collect();
            for phase in [
                "round",
                "compute",
                "compare",
                "checkpoint",
                "recovery",
                "retry",
            ] {
                assert!(names.contains(&phase), "missing span {phase}: {names:?}");
            }
            assert!(rec.spans().records().any(|s| s.component == "smt"));
            assert!(reg.summary("span.micro.round.total").is_some());
            assert!(reg.summary("span.micro.compare.self").is_some());
        } else {
            assert!(rec.trace().is_empty());
        }
    }

    #[test]
    fn journaled_micro_run_records_every_round() {
        use vds_obs::{Journal, JournalHeader};
        let cfg = MicroConfig::new(Scheme::SmtProbabilistic, 10);
        let run = || {
            let mut rec = Recorder::new();
            rec.enable_journal(
                JournalHeader::new("micro", cfg.scheme.name(), cfg.seed, cfg.s, 15)
                    .with_meta("fault", "transient:mem:4:7@v2"),
            );
            run_micro_with_recorder(&cfg, Some(fault_mem(4, Victim::V2)), 15, rec)
        };
        let (r, _, rec) = run();
        let j = rec.journal();
        assert!(j.is_enabled());
        // one entry per executed round; a successful recovery commits
        // 1 + rollforward rounds in its single entry, so with no
        // rollbacks: executed rounds = committed − salvaged progress
        let salvaged: u64 = j.entries().iter().map(|e| u64::from(e.rollforward)).sum();
        assert_eq!(r.rollbacks, 0, "{r}");
        assert_eq!(j.len() as u64 + salvaged, r.committed_rounds);
        assert_eq!(j.divergences(), r.detections);
        assert_eq!(j.entries().last().unwrap().committed, r.committed_rounds);
        assert_eq!(r.committed_rounds, 15);
        // the injected fault is stamped on exactly one entry
        let faults: Vec<_> = j.entries().iter().filter_map(|e| e.fault.clone()).collect();
        assert_eq!(faults, vec!["transient:mem:4:7@v2".to_string()]);
        // the detection round carries a non-commit action
        let detect = j
            .entries()
            .iter()
            .find(|e| e.verdict != JournalVerdict::Match)
            .expect("detection entry");
        assert_eq!(detect.round, 4);
        assert_ne!(detect.d1, detect.d2);
        assert!(matches!(
            detect.action,
            JournalAction::Recover | JournalAction::Rollback
        ));
        // checkpoints show up as actions on interval boundaries
        assert!(j
            .entries()
            .iter()
            .any(|e| e.action == JournalAction::Checkpoint));
        // byte-identical journals for a fixed seed, lossless round trip
        let (_, _, rec2) = run();
        assert_eq!(j.to_jsonl(), rec2.journal().to_jsonl());
        let back = Journal::from_jsonl(&j.to_jsonl()).expect("parse");
        assert_eq!(back.entries(), j.entries());
        // disabled journal keeps the run journal-free
        let (_, plain) = run_micro_recorded(&cfg, Some(fault_mem(4, Victim::V2)), 15);
        assert!(plain.journal().is_empty());
    }

    #[test]
    fn deterministic_runs_reproduce() {
        let cfg = MicroConfig::new(Scheme::SmtDeterministic, 10);
        let a = run_micro(&cfg, Some(fault_mem(7, Victim::V1)), 25);
        let b = run_micro(&cfg, Some(fault_mem(7, Victim::V1)), 25);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.committed_rounds, b.committed_rounds);
    }
}
