//! Run-level model conformance for the abstract engine.
//!
//! The abstract backend's [`RunReport`] already splits simulated time
//! into normal processing, recovery and checkpointing phases. Each phase
//! has a closed-form prediction of its gain over a conventional duplex:
//! normal rounds run at `G_round` (Eq. 4), recovery at the scheme's
//! steady-state `ḡ` (Eqs. 7 / 8 / 13, boosted averages), and checkpoint
//! writes proceed at conventional speed (both architectures pay them
//! alike). Blending the three by measured phase duration gives a
//! *predicted* whole-run gain; the *measured* gain is the
//! conventional-equivalent value of the committed work divided by the
//! SMT time actually spent. Their difference is the run-level residual:
//!
//! ```text
//! measured_G  = (committed · T1_round + time_checkpoint) / total_time
//! predicted_G = (time_normal · G_round
//!               + time_recovery · ḡ(scheme)
//!               + time_checkpoint · 1.0) / total_time
//! residual    = measured_G − predicted_G
//! ```
//!
//! A fault-free run has `residual = 0` by construction (the blend
//! collapses to `G_round`); with faults the residual measures how far
//! the engine's realized recovery mix drifts from the steady-state
//! uniform-`i` assumption behind `ḡ` — exactly the model error the
//! paper's estimates carry. The windowed per-round view lives in
//! `vds-obs`'s `ConformanceTracker` (fed by the journal); this module is
//! the cheap whole-run summary exported with the rest of the run
//! metrics.
//!
//! Only the abstract backend gets a run-level export: the micro engine
//! reports time in cycles, not abstract units, so its conformance is
//! assessed from its journal (where per-round deltas let the tracker
//! calibrate the unit scale).

use crate::abstract_vds::AbstractConfig;
use crate::report::RunReport;
use vds_analytic::{schemes, timing};
use vds_obs::{obs_gauge, obs_hist, Record};

/// Predicted-vs-measured whole-run gain for one completed abstract run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConformance {
    /// Phase-blended closed-form prediction of the run's gain.
    pub predicted_g: f64,
    /// Conventional-equivalent committed work over SMT time spent.
    pub measured_g: f64,
    /// `measured_g − predicted_g`.
    pub residual: f64,
}

/// Assess predicted-vs-measured gain for a completed abstract run.
/// Returns `None` for an empty run (no simulated time elapsed).
pub fn assess(cfg: &AbstractConfig, report: &RunReport) -> Option<RunConformance> {
    assess_with_alpha(cfg, report, None)
}

/// [`assess`] with an optional *measured* α override: when `Some`, the
/// closed forms (G_round, ḡ) are priced at the α-attribution ledger's
/// contention factor instead of the configuration's parametric one
/// (clamped into the model's `[0.5, 1]` domain). The measured gain is
/// untouched — it comes from the run itself — so the residual isolates
/// how much of the model error the parametric α was responsible for.
pub fn assess_with_alpha(
    cfg: &AbstractConfig,
    report: &RunReport,
    measured_alpha: Option<f64>,
) -> Option<RunConformance> {
    if report.total_time <= 0.0 {
        return None;
    }
    let priced;
    let p = match measured_alpha {
        Some(a) => {
            priced = cfg.params.with_alpha(a.clamp(0.5, 1.0));
            &priced
        }
        None => &cfg.params,
    };
    let name = cfg.scheme.name();
    let conv_equiv = report.committed_rounds as f64 * timing::t1_round(p) + report.time_checkpoint;
    let measured_g = conv_equiv / report.total_time;
    let g_round = if schemes::is_smt(name) {
        timing::g_round_exact(p)
    } else {
        1.0
    };
    let gbar = schemes::gbar(name, p, cfg.p_correct)?;
    let predicted_g =
        (report.time_normal * g_round + report.time_recovery * gbar + report.time_checkpoint)
            / report.total_time;
    Some(RunConformance {
        predicted_g,
        measured_g,
        residual: measured_g - predicted_g,
    })
}

/// Export the run-level conformance gauges and the `|residual|`
/// histogram into `rec` under `{prefix}.conformance.*`. Gauges and
/// histograms only — never counters, so benchmark work-unit totals
/// (sums of counters) are unaffected. Compiled out entirely when the
/// `obs` feature is off.
pub fn export_metrics<R: Record>(
    rec: &mut R,
    prefix: &str,
    cfg: &AbstractConfig,
    report: &RunReport,
) {
    if !cfg!(feature = "obs") || !rec.is_active() {
        return;
    }
    let Some(c) = assess(cfg, report) else {
        return;
    };
    obs_gauge!(
        rec,
        &format!("{prefix}.conformance.predicted_g"),
        c.predicted_g
    );
    obs_gauge!(
        rec,
        &format!("{prefix}.conformance.measured_g"),
        c.measured_g
    );
    obs_gauge!(rec, &format!("{prefix}.conformance.residual"), c.residual);
    obs_hist!(
        rec,
        &format!("{prefix}.conformance.residual_abs"),
        c.residual.abs()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_vds::{run, run_recorded};
    use crate::config::{FaultModel, Scheme, Victim};
    use vds_analytic::Params;

    fn cfg(scheme: Scheme) -> AbstractConfig {
        AbstractConfig::new(Params::paper_default(), scheme)
    }

    #[test]
    fn fault_free_runs_have_zero_residual_for_every_scheme() {
        for scheme in Scheme::ALL {
            let c = cfg(scheme);
            let report = run(&c, FaultModel::None, 200, 7);
            let conf = assess(&c, &report).unwrap();
            assert!(
                conf.residual.abs() < 1e-9,
                "{}: residual {}",
                scheme.name(),
                conf.residual
            );
            assert!(conf.measured_g > 0.0, "{}", scheme.name());
        }
    }

    #[test]
    fn faulty_runs_report_a_finite_bounded_residual() {
        let c = cfg(Scheme::SmtDeterministic);
        let report = run(
            &c,
            FaultModel::OneShot {
                round: 5,
                victim: Victim::V1,
            },
            200,
            11,
        );
        let conf = assess(&c, &report).unwrap();
        assert!(conf.residual.is_finite());
        assert!(conf.residual.abs() < 0.5, "residual {}", conf.residual);
        assert!(conf.predicted_g > 1.0); // SMT schemes beat the duplex
    }

    #[test]
    fn measured_alpha_repricing_moves_only_the_prediction() {
        let c = cfg(Scheme::SmtDeterministic);
        let report = run(&c, FaultModel::None, 200, 7);
        let parametric = assess(&c, &report).unwrap();
        let measured = assess_with_alpha(&c, &report, Some(0.9)).unwrap();
        assert_eq!(measured.measured_g, parametric.measured_g);
        assert!(
            (measured.predicted_g - parametric.predicted_g).abs() > 1e-6,
            "repricing at α=0.9 left predicted_g at {}",
            measured.predicted_g
        );
        // α=0.9 predicts less SMT gain than the paper's 0.65.
        assert!(measured.predicted_g < parametric.predicted_g);
        // Out-of-domain overrides clamp instead of panicking.
        let clamped = assess_with_alpha(&c, &report, Some(2.0)).unwrap();
        let at_one = assess_with_alpha(&c, &report, Some(1.0)).unwrap();
        assert_eq!(clamped, at_one);
        // None is exactly the parametric path.
        assert_eq!(assess_with_alpha(&c, &report, None).unwrap(), parametric);
    }

    #[test]
    fn empty_runs_yield_no_assessment() {
        let c = cfg(Scheme::SmtProbabilistic);
        let report = RunReport::default();
        assert!(assess(&c, &report).is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn run_recorded_exports_gauges_and_histogram_but_no_counters() {
        let c = cfg(Scheme::SmtDeterministic);
        let (_report, rec) = run_recorded(&c, FaultModel::None, 100, 3);
        let reg = rec.registry();
        assert!(reg.gauge_value("vds.conformance.predicted_g").is_some());
        assert!(reg.gauge_value("vds.conformance.measured_g").is_some());
        let resid = reg.gauge_value("vds.conformance.residual").unwrap();
        assert!(resid.abs() < 1e-9, "residual {resid}");
        let h = reg.histogram("vds.conformance.residual_abs").unwrap();
        assert_eq!(h.count(), 1);
        assert!(
            reg.counters().all(|(k, _)| !k.contains("conformance")),
            "conformance must never mint counters (bench work_units sums them)"
        );
    }
}
