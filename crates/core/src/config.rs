//! VDS scheme selection and fault plans.

/// Which recovery scheme (and hence which processor architecture and
/// execution model) the VDS uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// §3.1 — conventional processor, versions alternate with context
    /// switches; recovery is plain stop-and-retry.
    Conventional,
    /// §3.2 — 2-way SMT, deterministic roll-forward: `i/4` rounds of each
    /// version from each candidate state (guaranteed progress, fault
    /// detection retained).
    SmtDeterministic,
    /// §3.2 — 2-way SMT, probabilistic roll-forward: pick one candidate
    /// state, run both versions `i/2` rounds from it (progress with
    /// probability of a correct pick; fault detection retained).
    SmtProbabilistic,
    /// §4 — 2-way SMT, prediction-guided roll-forward: continue one
    /// version a full `i` rounds with **no comparisons** (maximal
    /// progress on a hit, nothing on a miss, and faults during the
    /// roll-forward go undetected).
    SmtPredictive,
    /// §5 — 3-thread boosted probabilistic: versions 1 and 2 each roll
    /// forward `i` rounds in their own threads (from the picked state)
    /// while version 3 retries; detection retained.
    SmtBoosted3,
    /// §5 — 5-thread boosted deterministic: both versions from both
    /// states, `i` rounds each; guaranteed progress with detection.
    SmtBoosted5,
}

impl Scheme {
    /// Hardware threads the scheme needs during recovery.
    pub fn threads_needed(self) -> u32 {
        match self {
            Scheme::Conventional => 1,
            Scheme::SmtDeterministic | Scheme::SmtProbabilistic | Scheme::SmtPredictive => 2,
            Scheme::SmtBoosted3 => 3,
            Scheme::SmtBoosted5 => 5,
        }
    }

    /// `true` if state comparisons run during roll-forward (a fault there
    /// is detected and the roll-forward discarded).
    pub fn detects_during_rollforward(self) -> bool {
        !matches!(self, Scheme::SmtPredictive | Scheme::Conventional)
    }

    /// Intended roll-forward length for a fault at round `i` (before the
    /// checkpoint-horizon clamp). Zero for the conventional scheme.
    pub fn rollforward_intent(self, i: u32) -> f64 {
        let i = f64::from(i);
        match self {
            Scheme::Conventional => 0.0,
            Scheme::SmtDeterministic => i / 4.0,
            Scheme::SmtProbabilistic => i / 2.0,
            Scheme::SmtPredictive | Scheme::SmtBoosted3 | Scheme::SmtBoosted5 => i,
        }
    }

    /// Whether the roll-forward progress is guaranteed (deterministic
    /// variants) rather than conditional on a correct pick.
    pub fn progress_guaranteed(self) -> bool {
        matches!(self, Scheme::SmtDeterministic | Scheme::SmtBoosted5)
    }

    /// All schemes, for sweep experiments.
    pub const ALL: [Scheme; 6] = [
        Scheme::Conventional,
        Scheme::SmtDeterministic,
        Scheme::SmtProbabilistic,
        Scheme::SmtPredictive,
        Scheme::SmtBoosted3,
        Scheme::SmtBoosted5,
    ];

    /// Short identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Conventional => "conventional",
            Scheme::SmtDeterministic => "smt-det",
            Scheme::SmtProbabilistic => "smt-prob",
            Scheme::SmtPredictive => "smt-pred",
            Scheme::SmtBoosted3 => "smt-boost3",
            Scheme::SmtBoosted5 => "smt-boost5",
        }
    }
}

/// Which active version a fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Victim {
    /// Version 1.
    V1,
    /// Version 2.
    V2,
}

impl Victim {
    /// Index 0/1.
    pub fn index(self) -> usize {
        match self {
            Victim::V1 => 0,
            Victim::V2 => 1,
        }
    }

    /// The other version.
    pub fn other(self) -> Victim {
        match self {
            Victim::V1 => Victim::V2,
            Victim::V2 => Victim::V1,
        }
    }
}

/// When and where faults strike (abstract backend).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// No faults: pure normal-processing timing.
    None,
    /// Exactly one silent state corruption, at round `round`
    /// (1-based within the first checkpoint interval) of version
    /// `victim`. Used for the per-incident gain experiments.
    OneShot {
        /// Round 1..=s at which the corruption lands.
        round: u32,
        /// Corrupted version.
        victim: Victim,
    },
    /// Every executed round (normal, retry or roll-forward) corrupts the
    /// executing version with probability `q`, victim chosen 50/50 in
    /// normal rounds. The long-run stochastic model.
    PerRound {
        /// Per-round corruption probability.
        q: f64,
    },
    /// Like `PerRound`, but a corruption is a *crash* with probability
    /// `crash_fraction` — crashes carry perfect evidence of the victim
    /// (the paper's §4 "e.g. in the case of a crash fault").
    PerRoundWithCrashes {
        /// Per-round corruption probability.
        q: f64,
        /// Fraction of corruptions that crash the version.
        crash_fraction: f64,
    },
    /// The full mission mix: per-round corruptions that are silent,
    /// crashes, or **processor stops** ("a fault is able to stop … the
    /// entire processor. In the latter case, recovery is only possible
    /// by rollback"). A stop loses all volatile state; the VDS restarts
    /// both versions from the last stable-storage checkpoint.
    Mission {
        /// Per-round corruption probability.
        q: f64,
        /// Fraction of corruptions that crash one version.
        crash_fraction: f64,
        /// Fraction of corruptions that stop the whole processor.
        stop_fraction: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_properties() {
        assert_eq!(Scheme::Conventional.threads_needed(), 1);
        assert_eq!(Scheme::SmtBoosted5.threads_needed(), 5);
        assert!(Scheme::SmtDeterministic.detects_during_rollforward());
        assert!(!Scheme::SmtPredictive.detects_during_rollforward());
        assert!(Scheme::SmtDeterministic.progress_guaranteed());
        assert!(!Scheme::SmtProbabilistic.progress_guaranteed());
        assert!(Scheme::SmtBoosted5.progress_guaranteed());
    }

    #[test]
    fn rollforward_intents_match_paper() {
        assert_eq!(Scheme::SmtDeterministic.rollforward_intent(8), 2.0);
        assert_eq!(Scheme::SmtProbabilistic.rollforward_intent(8), 4.0);
        assert_eq!(Scheme::SmtPredictive.rollforward_intent(8), 8.0);
        assert_eq!(Scheme::Conventional.rollforward_intent(8), 0.0);
    }

    #[test]
    fn victim_helpers() {
        assert_eq!(Victim::V1.other(), Victim::V2);
        assert_eq!(Victim::V2.index(), 1);
    }
}
