//! Recovery-scheme flow charts (the paper's Figures 2 and 3) as data,
//! with Graphviz DOT export.
//!
//! The paper documents the probabilistic and deterministic roll-forward
//! protocols as flow charts. Here the same control flow is encoded as an
//! explicit graph: nodes are protocol states, edges carry the guard that
//! selects them. Tests cross-check the graph against the engine — every
//! edge must be exercisable by some simulated scenario — so the figure
//! and the implementation cannot drift apart.

use crate::config::Scheme;
use std::fmt::Write as _;

/// A protocol state in the flow chart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Stable identifier (used in DOT and by tests).
    pub id: &'static str,
    /// Human-readable label (mirrors the paper's box text).
    pub label: &'static str,
    /// Terminal state?
    pub terminal: bool,
}

/// A guarded transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source node id.
    pub from: &'static str,
    /// Destination node id.
    pub to: &'static str,
    /// Guard label (empty for unconditional).
    pub guard: &'static str,
}

/// A complete flow chart.
#[derive(Debug, Clone)]
pub struct FlowChart {
    /// Chart title.
    pub title: &'static str,
    /// All nodes.
    pub nodes: Vec<Node>,
    /// All edges.
    pub edges: Vec<Edge>,
}

fn n(id: &'static str, label: &'static str) -> Node {
    Node {
        id,
        label,
        terminal: false,
    }
}

fn t(id: &'static str, label: &'static str) -> Node {
    Node {
        id,
        label,
        terminal: true,
    }
}

fn e(from: &'static str, to: &'static str, guard: &'static str) -> Edge {
    Edge { from, to, guard }
}

/// The common trunk: hyperthreaded normal processing, comparison,
/// checkpoint, detection and the retry/vote part shared by both SMT
/// schemes (paper Figures 2–3, upper half).
fn trunk(nodes: &mut Vec<Node>, edges: &mut Vec<Edge>) {
    nodes.extend([
        n("exec", "Hyperthreaded execution: V1 → P, V2 → Q"),
        n("cmp", "State P = State Q ?"),
        n("ckpt_due", "Round s ?"),
        n("ckpt", "Save as checkpoint"),
        n("retry", "V3 → S for i rounds (thread 1)"),
        n("vote", "S = P ?  /  S = Q ?"),
        n(
            "rollback",
            "Resort to rollback: get state from last checkpoint",
        ),
        t("shutdown", "Fail-safe shutdown"),
    ]);
    edges.extend([
        e("exec", "cmp", ""),
        e("cmp", "ckpt_due", "equal"),
        e("ckpt_due", "exec", "no"),
        e("ckpt_due", "ckpt", "yes"),
        e("ckpt", "exec", ""),
        e("cmp", "retry", "mismatch at round i"),
        e("vote", "rollback", "S matches neither (fault during retry)"),
        e("rollback", "exec", "checkpoint restored"),
        e(
            "rollback",
            "shutdown",
            "repeated rollbacks / no valid checkpoint",
        ),
    ]);
}

/// Figure 2: the probabilistic roll-forward scheme.
pub fn probabilistic() -> FlowChart {
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    trunk(&mut nodes, &mut edges);
    nodes.extend([
        n("pick", "Choose R among {P, Q}"),
        n(
            "rf",
            "Thread 2: V2 → T, then V1 → U, min(i/2, s−i/2) rounds from R",
        ),
        n("rf_cmp", "State T = State U ?"),
        n("rf_bad", "Fault during roll-forward: discard roll-forward"),
        n("r_faulty", "State R faulty ?"),
        n("adopt", "Continue fault-free version + V3 at round i + i/2"),
        n("no_adopt", "Continue fault-free version + V3 at round i"),
    ]);
    edges.extend([
        e("cmp", "pick", "mismatch at round i"),
        e("pick", "rf", ""),
        e("retry", "vote", ""),
        e("rf", "rf_cmp", ""),
        e("rf_cmp", "rf_bad", "T ≠ U"),
        e("rf_bad", "no_adopt", ""),
        e("rf_cmp", "r_faulty", "T = U"),
        e("r_faulty", "no_adopt", "picked the faulty state"),
        e("r_faulty", "adopt", "picked the fault-free state"),
        e("vote", "no_adopt", "V1 or V2 faulty, roll-forward unusable"),
        e("vote", "adopt", "V1 or V2 faulty, roll-forward valid"),
        e("adopt", "exec", ""),
        e("no_adopt", "exec", ""),
    ]);
    FlowChart {
        title: "VDS on a multithreaded processor — probabilistic roll-forward (Figure 2)",
        nodes,
        edges,
    }
}

/// Figure 3: the deterministic roll-forward scheme.
pub fn deterministic() -> FlowChart {
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    trunk(&mut nodes, &mut edges);
    nodes.extend([
        n(
            "rf4",
            "Thread 2: V2→T, V1→U from P; V1→V, V2→W from Q; i/4 rounds each",
        ),
        n("which", "State P faulty ?"),
        n("cmp_tu", "State T = State U ?"),
        n("cmp_vw", "State V = State W ?"),
        n("rf_bad", "Fault during roll-forward: discard roll-forward"),
        n("adopt", "Continue fault-free version + V3 at round i + i/4"),
        n("no_adopt", "Continue fault-free version + V3 at round i"),
    ]);
    edges.extend([
        e("cmp", "rf4", "mismatch at round i"),
        e("retry", "vote", ""),
        e("rf4", "which", ""),
        e("which", "cmp_vw", "P faulty (pair from Q counts)"),
        e("which", "cmp_tu", "Q faulty (pair from P counts)"),
        e("cmp_tu", "adopt", "T = U"),
        e("cmp_tu", "rf_bad", "T ≠ U"),
        e("cmp_vw", "adopt", "V = W"),
        e("cmp_vw", "rf_bad", "V ≠ W"),
        e("rf_bad", "no_adopt", ""),
        e("adopt", "exec", ""),
        e("no_adopt", "exec", ""),
    ]);
    FlowChart {
        title: "VDS on a multithreaded processor — deterministic roll-forward (Figure 3)",
        nodes,
        edges,
    }
}

/// Flow chart for a scheme (the conventional and predictive schemes get
/// reduced charts).
pub fn for_scheme(scheme: Scheme) -> FlowChart {
    match scheme {
        Scheme::SmtProbabilistic | Scheme::SmtBoosted3 => probabilistic(),
        Scheme::SmtDeterministic | Scheme::SmtBoosted5 => deterministic(),
        Scheme::SmtPredictive => {
            let mut fc = probabilistic();
            fc.title = "VDS on a multithreaded processor — predictive roll-forward (§4)";
            // no comparisons during roll-forward: remove the T=U check
            fc.nodes.retain(|nd| nd.id != "rf_cmp" && nd.id != "rf_bad");
            fc.edges.retain(|ed| {
                ed.from != "rf_cmp" && ed.to != "rf_cmp" && ed.from != "rf_bad" && ed.to != "rf_bad"
            });
            fc.edges
                .push(e("rf", "r_faulty", "no comparison performed"));
            fc
        }
        Scheme::Conventional => {
            let mut nodes = Vec::new();
            let mut edges = Vec::new();
            trunk(&mut nodes, &mut edges);
            nodes.push(n("resume", "Continue fault-free version + V3 at round i"));
            edges.extend([
                e("retry", "vote", ""),
                e("vote", "resume", "majority found"),
                e("resume", "exec", ""),
            ]);
            FlowChart {
                title: "VDS on a conventional processor — stop-and-retry (§3.1)",
                nodes,
                edges,
            }
        }
    }
}

impl FlowChart {
    /// Find a node.
    pub fn node(&self, id: &str) -> Option<&Node> {
        self.nodes.iter().find(|nd| nd.id == id)
    }

    /// Outgoing edges of a node.
    pub fn successors(&self, id: &str) -> Vec<&Edge> {
        self.edges.iter().filter(|ed| ed.from == id).collect()
    }

    /// Every node reachable from `exec`.
    pub fn reachable(&self) -> std::collections::BTreeSet<&'static str> {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec!["exec"];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            for ed in self.successors(id) {
                stack.push(ed.to);
            }
        }
        seen
    }

    /// Graphviz DOT rendering.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph vds {\n");
        let _ = writeln!(out, "  label={:?};", self.title);
        out.push_str("  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
        for nd in &self.nodes {
            let shape = if nd.terminal { "doubleoctagon" } else { "box" };
            let _ = writeln!(out, "  {} [label={:?}, shape={}];", nd.id, nd.label, shape);
        }
        for ed in &self.edges {
            if ed.guard.is_empty() {
                let _ = writeln!(out, "  {} -> {};", ed.from, ed.to);
            } else {
                let _ = writeln!(out, "  {} -> {} [label={:?}];", ed.from, ed.to, ed.guard);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_node_is_reachable() {
        for scheme in Scheme::ALL {
            let fc = for_scheme(scheme);
            let reach = fc.reachable();
            for nd in &fc.nodes {
                assert!(
                    reach.contains(nd.id),
                    "{scheme:?}: node `{}` unreachable",
                    nd.id
                );
            }
        }
    }

    #[test]
    fn edges_reference_existing_nodes() {
        for scheme in Scheme::ALL {
            let fc = for_scheme(scheme);
            for ed in &fc.edges {
                assert!(fc.node(ed.from).is_some(), "{scheme:?}: `{}`", ed.from);
                assert!(fc.node(ed.to).is_some(), "{scheme:?}: `{}`", ed.to);
            }
        }
    }

    #[test]
    fn only_shutdown_is_terminal() {
        for scheme in Scheme::ALL {
            let fc = for_scheme(scheme);
            for nd in &fc.nodes {
                if nd.terminal {
                    assert_eq!(nd.id, "shutdown", "{scheme:?}");
                    assert!(fc.successors(nd.id).is_empty());
                } else {
                    assert!(
                        !fc.successors(nd.id).is_empty(),
                        "{scheme:?}: non-terminal `{}` is a dead end",
                        nd.id
                    );
                }
            }
        }
    }

    #[test]
    fn predictive_chart_has_no_rollforward_comparison() {
        let fc = for_scheme(Scheme::SmtPredictive);
        assert!(fc.node("rf_cmp").is_none());
        assert!(fc.node("r_faulty").is_some());
    }

    #[test]
    fn dot_output_is_wellformed() {
        for scheme in Scheme::ALL {
            let dot = for_scheme(scheme).to_dot();
            assert!(dot.starts_with("digraph"));
            assert!(dot.ends_with("}\n"));
            assert!(dot.contains("exec"));
            assert!(dot.matches("->").count() >= 8);
        }
    }

    #[test]
    fn engine_exercises_the_chart_edges() {
        // The protocol outcomes the chart encodes must all be producible
        // by the abstract engine: hit (adopt), miss (no_adopt), discard
        // (rf_bad) and rollback.
        use crate::abstract_vds::{run, AbstractConfig};
        use crate::config::FaultModel;
        use vds_analytic::Params;
        let cfg = AbstractConfig::new(Params::paper_default(), Scheme::SmtProbabilistic);
        let r = run(&cfg, FaultModel::PerRound { q: 0.12 }, 20_000, 5);
        assert!(r.rollforward_hits > 0, "adopt edge: {r}");
        assert!(r.rollforward_misses > 0, "no_adopt edge: {r}");
        assert!(r.rollforward_discards > 0, "rf_bad edge: {r}");
        assert!(r.rollbacks > 0, "rollback edge: {r}");
        assert!(r.checkpoints > 0, "ckpt edge: {r}");
    }
}
